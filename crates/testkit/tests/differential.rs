//! The multi-seed differential runner, plus proof that the harness can
//! actually catch and shrink a bug.
//!
//! The sweep honours `FILTERWATCH_SEEDS` (comma-separated) so CI can
//! widen the battery without a code change.

use filterwatch_testkit::{
    minimize, plan_for_seed, run_campaign, seeds_from_env, ContentKind, FaultPlan, ScenarioPlan,
};

#[test]
fn differential_battery_finds_no_divergence() {
    let seeds = seeds_from_env(&[0, 1, 2, 3, 4, 5, 6, 7]);
    assert!(seeds.len() >= 8, "need at least eight seeds, got {seeds:?}");
    let divergences = filterwatch_testkit::differential::run(&seeds);
    assert!(
        divergences.is_empty(),
        "divergences found:\n{}",
        divergences
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n---\n")
    );
}

/// A deliberately injected verdict-flip bug: the "buggy pipeline"
/// rewrites every Netsweeper block verdict to look accessible, the way
/// a bad cache key or a swapped column would. The differential check
/// compares the real campaign against the mangled one; the harness must
/// (a) notice and (b) shrink the failing scenario to the minimal world
/// that still exhibits it — one Netsweeper deployment, nothing else.
fn buggy_netsweeper_flip(plan: &ScenarioPlan) -> Result<(), String> {
    let honest = run_campaign(plan).comparable_text();
    let mangled = honest.replace("\tblocked\tnetsweeper", "\taccessible\t-");
    if honest == mangled {
        Ok(())
    } else {
        Err("netsweeper verdicts flipped".into())
    }
}

#[test]
fn injected_verdict_flip_is_caught_and_minimized() {
    // Find a generated seed whose plan includes a Netsweeper deployment
    // (the bug only fires where its verdicts exist at all).
    let seed = (0u64..32)
        .find(|&s| buggy_netsweeper_flip(&plan_for_seed(s)).is_err())
        .expect("no generated seed exercises a Netsweeper deployment");
    let plan = plan_for_seed(seed);

    let (min, detail) = minimize(&plan, &buggy_netsweeper_flip);
    assert_eq!(detail, "netsweeper verdicts flipped");

    // The minimal scenario is exactly one Netsweeper deployment in an
    // otherwise bare world.
    assert_eq!(min.deployments.len(), 1, "minimal plan: {}", min.summary());
    let d = &min.deployments[0];
    assert_eq!(d.product.slug(), "netsweeper");
    assert_eq!(min.bystanders, 0);
    assert!(matches!(min.fault, FaultPlan::Clean));
    assert_eq!(min.urls_per_category, 1);
    assert!(d.flapping.is_none());
    assert_eq!((d.n_sites, d.n_submit), (2, 1));
    // The minimized plan itself can be any content kind — either still
    // reproduces, since the list sweep always covers both categories.
    assert!(matches!(d.content, ContentKind::Proxy | ContentKind::Adult));

    // And it still reproduces: 1-minimality means every further shrink
    // passes, but the minimum itself must keep failing.
    assert!(buggy_netsweeper_flip(&min).is_err());
    assert!(min
        .shrink_candidates()
        .iter()
        .all(|c| buggy_netsweeper_flip(c).is_ok()));
}
