//! The crash-recovery differential battery.
//!
//! For every seed in the battery, run a generated campaign
//! uninterrupted under the orchestrator, then kill a fresh copy at
//! EVERY checkpoint boundary, resume each corpse from its last
//! checkpoint line, and byte-compare the resumed
//! `comparable_text` against the uninterrupted run's. Any divergence —
//! a stage replayed out of order, a clock advanced twice, RNG drawn
//! during restore — fails with the boundary that exposed it.
//!
//! The sweep honours `FILTERWATCH_SEEDS` (comma-separated) so CI can
//! widen or narrow the battery without a code change.

use filterwatch_netsim::FetchPath;
use filterwatch_orchestrator::{
    CampaignCheckpoint, CampaignDescriptor, CampaignKind, CrashPlan, Orchestrator, Outcome,
    ResumeError,
};
use filterwatch_testkit::{
    plan_for_seed, resume_generated_campaign, run_campaign, run_campaign_with,
    run_generated_campaign, seeds_from_env, GeneratedDriver, RunConfig,
};

const BATTERY: &[u64] = &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9];

#[test]
fn kill_at_every_checkpoint_boundary_resumes_byte_identical() {
    for seed in seeds_from_env(BATTERY) {
        let descriptor = CampaignDescriptor::new(CampaignKind::Generated, seed);
        let (reference, checkpoints) =
            run_generated_campaign(descriptor.clone()).expect("uninterrupted run");
        let want = reference.comparable_text();

        // The orchestrated run must itself match the linear runner.
        let linear = run_campaign(&plan_for_seed(seed)).comparable_text();
        assert_eq!(want, linear, "seed {seed}: orchestrator changed verdicts");

        for step in 0..checkpoints.len() as u64 {
            let driver = GeneratedDriver::new(descriptor.clone()).expect("generated driver");
            let mut orch =
                Orchestrator::new(vec![driver]).with_crash_plan(CrashPlan::at_step(step));
            assert_eq!(
                orch.run(),
                Outcome::Crashed {
                    at_checkpoint: step
                },
                "seed {seed}: crash plan missed step {step}"
            );
            let last = orch
                .checkpoints(0)
                .last()
                .expect("crashed campaign wrote checkpoints");
            assert_eq!(last, &checkpoints[step as usize], "seed {seed} step {step}");
            let resumed = resume_generated_campaign(last)
                .unwrap_or_else(|e| panic!("seed {seed}: resume from step {step}: {e}"));
            assert_eq!(
                resumed.comparable_text(),
                want,
                "seed {seed}: tables diverged resuming from boundary {step} ({})",
                CampaignCheckpoint::parse_line(last)
                    .expect("own checkpoint parses")
                    .stage
                    .to_line()
            );
        }
    }
}

/// The battery above runs entirely on the event core (the default
/// fetch path). Close the loop against the retired machinery: the
/// orchestrated event-core run — and a resume from a `Wait` boundary,
/// whose deadline is parked on the event queue's virtual clock — must
/// be byte-identical to a direct-call oracle run that never touches
/// the queue at all.
#[test]
fn wait_parked_event_core_resumes_match_the_direct_oracle() {
    for seed in seeds_from_env(&[0, 4, 9]) {
        let descriptor = CampaignDescriptor::new(CampaignKind::Generated, seed);
        let (reference, checkpoints) =
            run_generated_campaign(descriptor).expect("uninterrupted run");

        let plan = plan_for_seed(seed);
        let mut config = RunConfig::for_plan(&plan);
        config.fetch_path = FetchPath::DirectReference;
        let oracle = run_campaign_with(&plan, &config).comparable_text();
        assert_eq!(
            reference.comparable_text(),
            oracle,
            "seed {seed}: event core diverged from the direct oracle"
        );

        let wait = checkpoints
            .iter()
            .find(|c| c.contains("wait:"))
            .expect("some checkpoint stops at a wait boundary");
        let resumed = resume_generated_campaign(wait)
            .unwrap_or_else(|e| panic!("seed {seed}: resume from wait boundary: {e}"));
        assert_eq!(
            resumed.comparable_text(),
            oracle,
            "seed {seed}: wait-parked resume diverged from the direct oracle"
        );
    }
}

/// A checkpoint that disagrees with the code replaying it must fail
/// loudly as drift, not quietly produce different tables. Fake the
/// drift by doctoring a recorded case counter and re-signing the line.
#[test]
fn drifted_checkpoints_are_rejected_on_resume() {
    let descriptor = CampaignDescriptor::new(CampaignKind::Generated, 0);
    let (_, checkpoints) = run_generated_campaign(descriptor).expect("uninterrupted run");
    let with_case = checkpoints
        .iter()
        .rev()
        .find(|c| c.contains("case:0"))
        .expect("some checkpoint records a completed case");
    let mut ckpt = CampaignCheckpoint::parse_line(with_case).expect("valid checkpoint");
    ckpt.cases[0].submitted_blocked += 1;
    match resume_generated_campaign(&ckpt.to_line()) {
        Err(ResumeError::Drift(_)) => {}
        other => panic!("doctored checkpoint resumed as {other:?}"),
    }
}
