//! The metamorphic invariant suite over generated worlds.
//!
//! Every seed below generates a different scenario (different AS
//! topology, deployments, fault profile); each must satisfy all four
//! invariants, and the whole harness must be deterministic — two
//! consecutive runs of this file produce byte-identical campaign
//! renderings.

use filterwatch_testkit::{check_seed, plan_for_seed, run_campaign};

/// The pinned seed battery: at least eight generated worlds.
const SEEDS: [u64; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 11, 19];

#[test]
fn invariant_suite_holds_across_generated_seeds() {
    for &seed in &SEEDS {
        check_seed(seed).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn generated_campaigns_are_deterministic_run_to_run() {
    for &seed in &SEEDS {
        let plan = plan_for_seed(seed);
        let first = run_campaign(&plan).stable_text();
        let second = run_campaign(&plan).stable_text();
        assert_eq!(first, second, "seed {seed}: consecutive runs diverged");
    }
}

#[test]
fn plans_regenerate_identically() {
    for &seed in &SEEDS {
        assert_eq!(plan_for_seed(seed), plan_for_seed(seed));
    }
}
