//! Golden-snapshot checks.
//!
//! The checked-in goldens pin today's behaviour byte-for-byte: the
//! generated-campaign renderings for two pinned scenario seeds, and the
//! paper world's demo-campaign tables at the documented default seed.
//! After an intentional behaviour change, regenerate with
//! `FILTERWATCH_UPDATE_GOLDENS=1 cargo test -p filterwatch-testkit --test goldens`
//! and commit the diff.

use filterwatch_core::campaign::Campaign;
use filterwatch_core::DEFAULT_SEED;
use filterwatch_testkit::{check_golden, plan_for_seed, run_campaign};

#[test]
fn generated_scenario_goldens() {
    for seed in [1u64, 6] {
        let report = run_campaign(&plan_for_seed(seed));
        check_golden(&format!("scenario-seed-{seed}"), &report.stable_text())
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn paper_demo_campaign_tables_golden() {
    let report = Campaign::demo(DEFAULT_SEED).run();
    let rendering = format!(
        "# demo campaign (seed {DEFAULT_SEED})\n\n## identify\n{}\n## confirm\n{}",
        report.identify_table(),
        report.confirm_table()
    );
    check_golden("campaign-demo-tables", &rendering).unwrap_or_else(|e| panic!("{e}"));
}
