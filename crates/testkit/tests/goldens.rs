//! Golden-snapshot checks.
//!
//! The checked-in goldens pin today's behaviour byte-for-byte: the
//! generated-campaign renderings for two pinned scenario seeds, and the
//! paper world's demo-campaign tables at the documented default seed.
//! After an intentional behaviour change, regenerate with
//! `FILTERWATCH_UPDATE_GOLDENS=1 cargo test -p filterwatch-testkit --test goldens`
//! and commit the diff.

use filterwatch_core::campaign::Campaign;
use filterwatch_core::DEFAULT_SEED;
use filterwatch_testkit::{check_golden, plan_for_seed, run_campaign};

#[test]
fn generated_scenario_goldens() {
    for seed in [1u64, 6] {
        let report = run_campaign(&plan_for_seed(seed));
        check_golden(&format!("scenario-seed-{seed}"), &report.stable_text())
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn paper_demo_campaign_tables_golden() {
    let report = Campaign::demo(DEFAULT_SEED).run();
    let rendering = format!(
        "# demo campaign (seed {DEFAULT_SEED})\n\n## identify\n{}\n## confirm\n{}",
        report.identify_table(),
        report.confirm_table()
    );
    check_golden("campaign-demo-tables", &rendering).unwrap_or_else(|e| panic!("{e}"));
}

/// Pin the `explain` surface: provenance summary, the tree profile,
/// and the full causal chain for a deterministic subset of tested URLs
/// (first, middle, last — covering different verdicts without pinning
/// thousands of lines).
#[test]
fn demo_campaign_explain_golden() {
    use filterwatch_trace::{render_profile, ProvenanceIndex, TraceMode};

    let report = Campaign::demo(DEFAULT_SEED)
        .with_trace(TraceMode::Full)
        .run();
    let index = ProvenanceIndex::build(&report.trace);
    let urls = index.urls();
    assert!(urls.len() >= 3, "demo campaign tested {} urls", urls.len());
    let picks = [urls[0], urls[urls.len() / 2], urls[urls.len() - 1]];

    let mut rendering = format!("# demo campaign explain (seed {DEFAULT_SEED})\n\n## summary\n");
    rendering.push_str(&index.render_summary());
    rendering.push_str("\n## profile\n");
    rendering.push_str(&render_profile(&report.trace));
    for url in picks {
        rendering.push_str("\n## ");
        rendering.push_str(url);
        rendering.push('\n');
        rendering.push_str(
            &index
                .explain(url)
                .unwrap_or_else(|| panic!("explain({url}) empty")),
        );
    }
    check_golden("campaign-demo-explain", &rendering).unwrap_or_else(|e| panic!("{e}"));
}
