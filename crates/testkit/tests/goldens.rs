//! Golden-snapshot checks.
//!
//! The checked-in goldens pin today's behaviour byte-for-byte: the
//! generated-campaign renderings for two pinned scenario seeds, and the
//! paper world's demo-campaign tables at the documented default seed.
//! After an intentional behaviour change, regenerate with
//! `FILTERWATCH_UPDATE_GOLDENS=1 cargo test -p filterwatch-testkit --test goldens`
//! and commit the diff.

use filterwatch_core::campaign::Campaign;
use filterwatch_core::DEFAULT_SEED;
use filterwatch_testkit::{check_golden, plan_for_seed, run_campaign};

#[test]
fn generated_scenario_goldens() {
    for seed in [1u64, 6] {
        let report = run_campaign(&plan_for_seed(seed));
        check_golden(&format!("scenario-seed-{seed}"), &report.stable_text())
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn paper_demo_campaign_tables_golden() {
    let report = Campaign::demo(DEFAULT_SEED).run();
    let rendering = format!(
        "# demo campaign (seed {DEFAULT_SEED})\n\n## identify\n{}\n## confirm\n{}",
        report.identify_table(),
        report.confirm_table()
    );
    check_golden("campaign-demo-tables", &rendering).unwrap_or_else(|e| panic!("{e}"));
}

/// Pin the `explain` surface: provenance summary, the tree profile,
/// and the full causal chain for a deterministic subset of tested URLs
/// (first, middle, last — covering different verdicts without pinning
/// thousands of lines).
#[test]
fn demo_campaign_explain_golden() {
    use filterwatch_trace::{render_profile, ProvenanceIndex, TraceMode};

    let report = Campaign::demo(DEFAULT_SEED)
        .with_trace(TraceMode::Full)
        .run();
    let index = ProvenanceIndex::build(&report.trace);
    let urls = index.urls();
    assert!(urls.len() >= 3, "demo campaign tested {} urls", urls.len());
    let picks = [urls[0], urls[urls.len() / 2], urls[urls.len() - 1]];

    let mut rendering = format!("# demo campaign explain (seed {DEFAULT_SEED})\n\n## summary\n");
    rendering.push_str(&index.render_summary());
    rendering.push_str("\n## profile\n");
    rendering.push_str(&render_profile(&report.trace));
    for url in picks {
        rendering.push_str("\n## ");
        rendering.push_str(url);
        rendering.push('\n');
        rendering.push_str(
            &index
                .explain(url)
                .unwrap_or_else(|| panic!("explain({url}) empty")),
        );
    }
    check_golden("campaign-demo-explain", &rendering).unwrap_or_else(|e| panic!("{e}"));
}

/// Pin the resumed demo campaign: crash the orchestrated run right
/// after a mid-campaign Wait checkpoint, resume from the checkpoint
/// line, and snapshot the tables plus the boundary resumed from. The
/// tables must also match the uninterrupted `campaign-demo-tables`
/// golden — resuming is invisible in every rendered artifact.
#[test]
fn resumed_demo_campaign_golden() {
    use filterwatch_orchestrator::{
        resume_paper_campaign, CampaignCheckpoint, CampaignDescriptor, CampaignKind, CrashPlan,
        Orchestrator, Outcome, PaperDriver,
    };

    let descriptor = CampaignDescriptor::new(CampaignKind::Demo, DEFAULT_SEED);
    // Boundary index 7: identify, then case 0's four checkpoints, then
    // baseline:1, submit:1 — i.e. the second case's Wait boundary.
    let step = 7;
    let driver = PaperDriver::new(descriptor).expect("demo driver");
    let mut orch = Orchestrator::new(vec![driver]).with_crash_plan(CrashPlan::at_step(step));
    assert_eq!(
        orch.run(),
        Outcome::Crashed {
            at_checkpoint: step
        }
    );
    let line = orch
        .checkpoints(0)
        .last()
        .expect("crashed campaign wrote checkpoints")
        .clone();
    let stage = CampaignCheckpoint::parse_line(&line)
        .expect("own checkpoint parses")
        .stage;
    let report = resume_paper_campaign(&line).expect("resume demo campaign");

    let rendering = format!(
        "# demo campaign resumed (seed {DEFAULT_SEED})\nresumed from: {} \
         (checkpoint {step})\n\n## identify\n{}\n## confirm\n{}",
        stage.to_line(),
        report.identify_table(),
        report.confirm_table()
    );
    check_golden("campaign-demo-resumed", &rendering).unwrap_or_else(|e| panic!("{e}"));

    // Cross-check against the uninterrupted run's tables.
    let uninterrupted = Campaign::demo(DEFAULT_SEED).run();
    assert_eq!(report.identify_table(), uninterrupted.identify_table());
    assert_eq!(report.confirm_table(), uninterrupted.confirm_table());
}
