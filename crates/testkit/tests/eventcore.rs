//! The old-vs-new differential battery for the netsim event kernel.
//!
//! The discrete-event core replaced the direct-call fetch path as the
//! machinery every flow runs through; the old path survives only as
//! [`FetchPath::DirectReference`], the oracle this battery compares
//! against. For every seed, both paths must produce **byte-identical**
//! campaign tables, flow logs, and trace forests — agreement on
//! verdicts alone would still let the kernel reorder or drop interior
//! observations.
//!
//! The sweep honours `FILTERWATCH_SEEDS` (comma-separated) so CI can
//! widen the battery without a code change.

use filterwatch_core::Campaign;
use filterwatch_netsim::FetchPath;
use filterwatch_testkit::differential::check_direct_vs_event;
use filterwatch_testkit::runner::{identify_stage, sweep_stage};
use filterwatch_testkit::{
    build_world, minimize, plan_for_seed, run_campaign_with, seeds_from_env, FaultPlan, RunConfig,
};
use filterwatch_trace::{build_forest, render_forest, TraceMode};
use filterwatch_urllists::TestList;

const BATTERY: &[u64] = &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9];

/// The ten-seed battery: generated campaigns through the event core and
/// the direct oracle, every observation surface byte-compared, failures
/// shrunk to the minimal plan still reproducing them.
#[test]
fn ten_seed_battery_is_byte_identical_across_paths() {
    for seed in seeds_from_env(BATTERY) {
        let plan = plan_for_seed(seed);
        if let Err(detail) = check_direct_vs_event(&plan) {
            let (min, min_detail) = minimize(&plan, &|p| check_direct_vs_event(p));
            panic!(
                "seed {seed}: {detail}\nminimal scenario: {}\nminimal detail: {min_detail}",
                min.summary()
            );
        }
    }
}

fn demo_surfaces(path: FetchPath) -> (String, String) {
    let mut campaign = Campaign::demo(0).with_trace(TraceMode::Full);
    campaign.options.fetch_path = path;
    let report = campaign.run();
    let forest = render_forest(&build_forest(&report.trace));
    (report.to_markdown(), forest)
}

/// The paper-scale demo campaign — identify, the Table 3 case studies,
/// Table 4 characterization, full telemetry and causal trace — through
/// both paths. `to_markdown` carries every table plus the stable
/// telemetry rendering, so this is the whole paper surface at once.
#[test]
fn paper_demo_campaign_is_fetch_path_invariant() {
    let (event_md, event_forest) = demo_surfaces(FetchPath::Event);
    let (direct_md, direct_forest) = demo_surfaces(FetchPath::DirectReference);
    assert_eq!(
        event_md, direct_md,
        "demo campaign report diverged across fetch paths"
    );
    assert_eq!(
        event_forest, direct_forest,
        "demo campaign trace forest diverged across fetch paths"
    );
}

/// Metamorphic invariant: at equal timestamps, the order flows are
/// *inserted* into the event queue must never leak into any outcome or
/// any later campaign table. Clean plans only — fault sampling and
/// flapping draw from order-sensitive RNG streams by design, so only
/// the zero-probability world makes the invariant exact.
#[test]
fn equal_timestamp_insertion_order_never_changes_campaign_tables() {
    for seed in [0u64, 2, 5] {
        let mut plan = plan_for_seed(seed);
        plan.fault = FaultPlan::Clean;
        for d in &mut plan.deployments {
            d.flapping = None;
        }
        let config = RunConfig::for_plan(&plan);
        let urls: Vec<filterwatch_http::Url> = TestList::global(plan.urls_per_category)
            .urls
            .iter()
            .map(|t| filterwatch_http::Url::parse(&t.url).expect("list URL"))
            .collect();

        // Open every flow at the same virtual instant, in `order`; then
        // run the identify and sweep stages on the world that prologue
        // just exercised.
        let run_in_order = |order: &[usize]| -> (Vec<String>, String, Vec<String>) {
            let gw = build_world(&plan);
            let mut flows = vec![None; urls.len()];
            for &i in order {
                flows[i] = Some(gw.net.start_fetch(gw.vantages[0], &urls[i]));
            }
            gw.net.run_to_quiescence();
            assert_eq!(gw.net.pending_events(), 0);
            let outcomes = flows
                .iter()
                .map(|f| format!("{:?}", gw.net.take_outcome(f.expect("flow opened"))))
                .collect();
            assert_eq!(gw.net.flows_in_flight(), 0);
            (outcomes, identify_stage(&gw), sweep_stage(&gw, &config))
        };

        let n = urls.len();
        let identity: Vec<usize> = (0..n).collect();
        let reversed: Vec<usize> = (0..n).rev().collect();
        let interleaved: Vec<usize> = (0..n).step_by(2).chain((1..n).step_by(2)).collect();
        let reference = run_in_order(&identity);
        assert_eq!(
            reference,
            run_in_order(&reversed),
            "seed {seed}: reversed insertion order changed results"
        );
        assert_eq!(
            reference,
            run_in_order(&interleaved),
            "seed {seed}: interleaved insertion order changed results"
        );
    }
}

fn scale_campaign(host_scale: usize) {
    let mut plan = plan_for_seed(1);
    plan.host_scale = host_scale;
    let report = run_campaign_with(&plan, &RunConfig::for_plan(&plan));
    assert_eq!(report.cases.len(), plan.deployments.len());
    assert!(
        !report.identify_table.is_empty() && !report.list_lines.is_empty(),
        "scaled campaign produced empty tables"
    );
    // The scaled world is a strict superset: the campaign's verdict
    // surface must be byte-identical to the unscaled world's.
    let mut base = plan.clone();
    base.host_scale = 0;
    assert_eq!(
        report.comparable_text(),
        run_campaign_with(&base, &RunConfig::for_plan(&base)).comparable_text(),
        "host_scale changed campaign verdicts"
    );
}

/// Tier-1 rung: a 10⁴-host world completes a campaign through the
/// event core without perturbing a single verdict.
#[test]
fn scale_smoke_ten_thousand_host_campaign() {
    scale_campaign(10_000);
}

/// The full 10⁵-host / multi-thousand-AS rung. Too heavy for the debug
/// tier-1 sweep; CI runs it in release alongside the bench gate
/// (`cargo test -p filterwatch-testkit --release --test eventcore -- --ignored`).
#[test]
#[ignore = "release-profile scale rung; run explicitly with -- --ignored"]
fn scale_smoke_hundred_thousand_host_campaign() {
    let mut plan = plan_for_seed(1);
    plan.host_scale = 100_000;
    let gw = build_world(&plan);
    assert!(gw.net.host_count() >= 100_000, "{}", gw.net.host_count());
    // One /24 per 32 scale hosts: a multi-thousand-AS topology.
    assert!(
        gw.net.registry().prefixes().len() >= 3_000,
        "only {} prefixes",
        gw.net.registry().prefixes().len()
    );
    drop(gw);
    scale_campaign(100_000);
}
