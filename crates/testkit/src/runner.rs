//! Running the paper's submit-and-retest loop on a generated world and
//! rendering the outcome as stable text.
//!
//! [`run_campaign`] is the single entry point everything in the testkit
//! byte-compares on: the invariant suite runs it on metamorphic
//! variants of one plan, the golden framework snapshots its
//! [`GeneratedReport::stable_text`], and the differential runner
//! diffs it across configurations that must not matter.

use filterwatch_core::identify::IdentifyPipeline;
use filterwatch_measure::ResilienceConfig;
use filterwatch_netsim::FetchPath;
use filterwatch_products::{ProductKind, SubmitterProfile};
use filterwatch_scanner::ScanEngine;
use filterwatch_telemetry::TelemetryHandle;
use filterwatch_trace::{build_forest, render_forest, TraceHandle};
use filterwatch_urllists::TestList;

use crate::plan::ScenarioPlan;
use crate::worldgen::{build_world, GeneratedSite, GeneratedWorld};

/// Days waited between submission and retest — past every vendor's
/// maximum review delay, so accepted submissions are always in effect
/// at retest.
pub const WAIT_DAYS: u64 = 6;

/// How a campaign run is configured (the knobs that must NOT change
/// verdicts).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Resilience configuration for every measurement client.
    pub resilience: ResilienceConfig,
    /// Attach an enabled telemetry collector to the world.
    pub telemetry: bool,
    /// Which netsim fetch machinery drives every flow — the event
    /// kernel (default) or the direct-call differential oracle. Must
    /// never change a byte of any report.
    pub fetch_path: FetchPath,
}

impl RunConfig {
    /// The canonical configuration for a plan: passthrough resilience on
    /// clean worlds, the chaos profile (retries + breaker + quorum) when
    /// the plan injects faults.
    pub fn for_plan(plan: &ScenarioPlan) -> RunConfig {
        RunConfig {
            resilience: if plan.fault.is_clean() {
                ResilienceConfig::default()
            } else {
                ResilienceConfig::chaos()
            },
            telemetry: false,
            fetch_path: FetchPath::default(),
        }
    }
}

/// The outcome of one deployment's case study.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Deployment index in the plan.
    pub deployment: usize,
    /// The vendor exercised.
    pub product: ProductKind,
    /// Sites minted / submitted.
    pub n_sites: usize,
    /// Of which submitted.
    pub n_submit: usize,
    /// Submissions the vendor accepted.
    pub submissions_accepted: usize,
    /// Submitted sites blocked at retest.
    pub submitted_blocked: usize,
    /// Held-out sites blocked at retest.
    pub holdout_blocked: usize,
    /// Retest verdicts the machinery declined to render.
    pub retest_inconclusive: usize,
    /// §4.2 verdict: majority of submitted sites became blocked.
    pub confirmed: bool,
    /// Stable per-site retest lines (submitted first, then held out).
    pub retest_lines: Vec<String>,
}

/// A full generated-campaign report.
#[derive(Debug, Clone)]
pub struct GeneratedReport {
    /// The plan that was run.
    pub plan: ScenarioPlan,
    /// Topology digest of the built world (before any site minting).
    pub topology_digest: u64,
    /// Stage-1 installations table (stable rendering).
    pub identify_table: String,
    /// Pre-submission verdict sweep of the global test list from every
    /// deployment vantage (`depN <url> <label> <product>` lines).
    pub list_lines: Vec<String>,
    /// Per-deployment case studies, in plan order.
    pub cases: Vec<CaseOutcome>,
}

impl GeneratedReport {
    /// The comparison surface metamorphic variants must agree on:
    /// verdict data only — no plan echo, no topology digest, no counts
    /// that scale with world size rather than filtering behaviour.
    pub fn comparable_text(&self) -> String {
        let mut out = String::new();
        out.push_str("## identify\n");
        out.push_str(&self.identify_table);
        out.push_str("\n## list sweep\n");
        for line in &self.list_lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("\n## cases\n");
        for c in &self.cases {
            out.push_str(&format!(
                "dep{} {} submitted={}/{} accepted={} blocked={} holdout_blocked={} \
                 inconclusive={} confirmed={}\n",
                c.deployment,
                c.product.slug(),
                c.n_submit,
                c.n_sites,
                c.submissions_accepted,
                c.submitted_blocked,
                c.holdout_blocked,
                c.retest_inconclusive,
                if c.confirmed { "yes" } else { "no" },
            ));
            for line in &c.retest_lines {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// The full stable rendering: plan summary and topology digest on
    /// top of [`GeneratedReport::comparable_text`]. Byte-identical for
    /// the same (plan, config) — this is what goldens snapshot.
    pub fn stable_text(&self) -> String {
        format!(
            "# generated campaign\nplan: {}\ntopology: {:016x}\n\n{}",
            self.plan.summary(),
            self.topology_digest,
            self.comparable_text()
        )
    }
}

/// One deployment's case study between baseline and retest: the minted
/// sites and the vendor's acceptance count, riding out the review
/// window. This is exactly the state a checkpoint boundary can fall
/// inside of, so the orchestrator's generated-campaign driver holds one
/// of these between stages.
#[derive(Debug, Clone)]
pub struct CaseInFlight {
    /// Deployment index in the plan.
    pub deployment: usize,
    spec: crate::plan::DeploymentPlan,
    sites: Vec<GeneratedSite>,
    submissions_accepted: usize,
}

/// Stage 1 on a generated world: scan, identify, render installations.
pub fn identify_stage(gw: &GeneratedWorld) -> String {
    let index = ScanEngine::new().scan(&gw.net);
    let identify = IdentifyPipeline::new().run_on_index(&gw.net, &index);
    identify.render_installations()
}

/// Pre-submission sweep of the (pre-categorized) global list from
/// every deployment vantage.
pub fn sweep_stage(gw: &GeneratedWorld, config: &RunConfig) -> Vec<String> {
    let list = TestList::global(gw.plan.urls_per_category);
    let mut list_lines = Vec::new();
    for dep in 0..gw.plan.deployments.len() {
        let client = gw.client(dep, &config.resilience);
        for test_url in &list.urls {
            let url = filterwatch_http::Url::parse(&test_url.url).expect("list URL");
            let v = client.test_url(&gw.net, &url);
            list_lines.push(format!("dep{dep} {}", v.to_line()));
        }
    }
    list_lines
}

/// Stage 2a for deployment `i`: mint the case's controlled sites.
pub fn baseline_stage(gw: &mut GeneratedWorld, i: usize) -> CaseInFlight {
    let spec = gw.plan.deployments[i].clone();
    let sites: Vec<GeneratedSite> = (0..spec.n_sites)
        .map(|_| gw.mint_site(spec.content))
        .collect();
    CaseInFlight {
        deployment: i,
        spec,
        sites,
        submissions_accepted: 0,
    }
}

/// Stage 2b: submit the chosen subset to the vendor channel.
pub fn submit_stage(gw: &mut GeneratedWorld, case: &mut CaseInFlight) {
    let cloud = gw.cloud(case.spec.product).clone();
    let now = gw.net.now();
    for site in &case.sites[..case.spec.n_submit] {
        if cloud
            .submit(&site.submit_url(), SubmitterProfile::COVERT, now)
            .accepted
        {
            case.submissions_accepted += 1;
        }
    }
}

/// Stage 2d, after the review window: retest every site and fold the
/// case study into its outcome.
pub fn retest_stage(gw: &GeneratedWorld, config: &RunConfig, case: CaseInFlight) -> CaseOutcome {
    let CaseInFlight {
        deployment,
        spec,
        sites,
        submissions_accepted,
    } = case;
    let client = gw.client(deployment, &config.resilience);
    let mut blocked = vec![false; sites.len()];
    let mut retest_inconclusive = 0;
    let mut retest_lines = Vec::new();
    for (s, site) in sites.iter().enumerate() {
        let v = client.test_url(&gw.net, &site.test_url());
        if v.verdict.is_blocked() {
            blocked[s] = true;
        } else if v.verdict.is_inconclusive() {
            retest_inconclusive += 1;
        }
        retest_lines.push(format!(
            "{} {}",
            if s < spec.n_submit {
                "submitted"
            } else {
                "heldout"
            },
            v.to_line()
        ));
    }
    let submitted_blocked = blocked[..spec.n_submit].iter().filter(|&&b| b).count();
    let holdout_blocked = blocked[spec.n_submit..].iter().filter(|&&b| b).count();
    CaseOutcome {
        deployment,
        product: spec.product,
        n_sites: spec.n_sites,
        n_submit: spec.n_submit,
        submissions_accepted,
        submitted_blocked,
        holdout_blocked,
        retest_inconclusive,
        confirmed: submitted_blocked * 2 > spec.n_submit,
        retest_lines,
    }
}

/// Run the full loop — identify, sweep the test list, then one
/// submit-and-retest case study per deployment — with the plan's
/// canonical [`RunConfig`].
pub fn run_campaign(plan: &ScenarioPlan) -> GeneratedReport {
    run_campaign_with(plan, &RunConfig::for_plan(plan))
}

/// Run the full loop with an explicit configuration. This is the
/// linear driver over the stage functions above; the orchestrator's
/// `GeneratedDriver` runs the same stages under checkpointed
/// scheduling, and the crash-recovery battery holds the two
/// byte-identical.
pub fn run_campaign_with(plan: &ScenarioPlan, config: &RunConfig) -> GeneratedReport {
    let mut gw = build_world(plan);
    gw.net.set_fetch_path(config.fetch_path);
    if config.telemetry {
        gw.net.set_telemetry(TelemetryHandle::enabled());
    }
    drive_campaign(&mut gw, config)
}

/// The stage driver over an already-built (and instrumented) world.
fn drive_campaign(gw: &mut GeneratedWorld, config: &RunConfig) -> GeneratedReport {
    let topology_digest = gw.net.topology_digest();

    // Stage 1: identify, then the pre-submission list sweep.
    let identify_table = identify_stage(gw);
    let list_lines = sweep_stage(gw, config);

    // Stage 2: one case study per deployment, sequentially (the virtual
    // clock advances past the vendor review window between each).
    let mut cases = Vec::new();
    for i in 0..gw.plan.deployments.len() {
        let mut case = baseline_stage(gw, i);
        submit_stage(gw, &mut case);
        gw.net.advance_days(WAIT_DAYS);
        cases.push(retest_stage(gw, config, case));
    }

    GeneratedReport {
        plan: gw.plan.clone(),
        topology_digest,
        identify_table,
        list_lines,
        cases,
    }
}

/// Everything a campaign run leaves behind when every observation
/// surface is switched on: the report plus the raw per-flow log and the
/// rendered causal trace forest. The old-vs-new differential battery
/// byte-compares all three across [`FetchPath`] values — agreement on
/// the report alone would still let the event kernel reorder or drop
/// interior observations.
#[derive(Debug, Clone)]
pub struct CampaignForensics {
    /// The campaign report (same surface as [`run_campaign_with`]).
    pub report: GeneratedReport,
    /// Every flow the world carried, as stable wire lines.
    pub flow_lines: Vec<String>,
    /// The rendered causal trace forest of the whole campaign.
    pub trace_forest: String,
}

/// Run the full loop with the flow log and tracer enabled, returning
/// the report together with both observation surfaces.
pub fn run_campaign_forensic(plan: &ScenarioPlan, config: &RunConfig) -> CampaignForensics {
    let mut gw = build_world(plan);
    gw.net.set_fetch_path(config.fetch_path);
    if config.telemetry {
        gw.net.set_telemetry(TelemetryHandle::enabled());
    }
    gw.net.set_flow_log(true);
    gw.net.set_tracer(TraceHandle::enabled(plan.seed));
    let report = drive_campaign(&mut gw, config);
    let flow_lines = gw.net.flow_log().iter().map(|r| r.to_line()).collect();
    let trace_forest = render_forest(&build_forest(&gw.net.tracer().snapshot()));
    CampaignForensics {
        report,
        flow_lines,
        trace_forest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use crate::strategies::plan_for_seed;

    #[test]
    fn campaign_runs_and_reports_every_deployment() {
        let plan = plan_for_seed(0);
        let report = run_campaign(&plan);
        assert_eq!(report.cases.len(), plan.deployments.len());
        for (c, d) in report.cases.iter().zip(&plan.deployments) {
            assert_eq!(c.n_sites, d.n_sites);
            assert_eq!(c.retest_lines.len(), d.n_sites);
        }
        assert_eq!(
            report.list_lines.len(),
            plan.deployments.len() * TestList::global(plan.urls_per_category).urls.len()
        );
    }

    #[test]
    fn accepted_majorities_confirm_on_clean_worlds() {
        // On a clean, non-flapping world the arithmetic is exact: every
        // accepted submission is blocked at retest, nothing else is.
        for seed in 0..16 {
            let mut plan = plan_for_seed(seed);
            plan.fault = FaultPlan::Clean;
            for d in &mut plan.deployments {
                d.flapping = None;
            }
            let report = run_campaign(&plan);
            for c in &report.cases {
                assert_eq!(
                    c.submitted_blocked, c.submissions_accepted,
                    "seed {seed}: {c:?}"
                );
                assert_eq!(c.holdout_blocked, 0, "seed {seed}: {c:?}");
                assert_eq!(
                    c.confirmed,
                    c.submissions_accepted * 2 > c.n_submit,
                    "seed {seed}: {c:?}"
                );
            }
        }
    }

    #[test]
    fn stable_text_is_byte_identical_across_runs() {
        let plan = plan_for_seed(5);
        let a = run_campaign(&plan).stable_text();
        let b = run_campaign(&plan).stable_text();
        assert_eq!(a, b);
    }
}
