//! Declarative, shrinkable scenario plans.
//!
//! A [`ScenarioPlan`] is the *description* of a generated world — which
//! countries host which product deployments, how flaky the paths are,
//! how many controlled sites each case study mints — small enough to
//! print in a failure report and simple enough to shrink mechanically.
//! [`crate::worldgen`] turns a plan into a live simulated Internet;
//! [`crate::differential::minimize`] walks [`ScenarioPlan::shrink_candidates`]
//! to find the smallest plan that still reproduces a divergence.

use filterwatch_netsim::FaultProfile;
use filterwatch_products::ProductKind;
use filterwatch_urllists::Category;

/// The country pool every generated world registers (whether or not a
/// deployment lands there, so keyword × ccTLD query scope is identical
/// across metamorphic variants). The multi-label ccTLDs exercise the
/// scan index's dot-suffix posting lists.
pub const COUNTRY_POOL: &[(&str, &str, &str)] = &[
    ("CA", "Canada", "ca"),
    ("US", "United States", "us"),
    ("QA", "Qatar", "qa"),
    ("AE", "United Arab Emirates", "ae"),
    ("YE", "Yemen", "ye"),
    ("PK", "Pakistan", "pk"),
    ("TR", "Turkey", "com.tr"),
    ("UK", "United Kingdom", "co.uk"),
    ("IN", "India", "in"),
    ("TH", "Thailand", "th"),
];

/// Pool indices deployments and bystanders may be placed in (the first
/// two slots are reserved for the lab and hosting infrastructure).
pub const DEPLOYABLE: std::ops::Range<usize> = 2..COUNTRY_POOL.len();

/// Number of deployable country slots.
pub fn deployable_count() -> usize {
    DEPLOYABLE.end - DEPLOYABLE.start
}

/// Content hosted on a deployment's controlled sites (§4.3 of the
/// paper: proxy front pages and adult-image indexes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentKind {
    /// Glype-style proxy front page.
    Proxy,
    /// Adult image index (testers fetch the benign object).
    Adult,
}

impl ContentKind {
    /// The ONI category a vendor reviewer assigns to this content.
    pub fn category(&self) -> Category {
        match self {
            ContentKind::Proxy => Category::AnonymizersProxies,
            ContentKind::Adult => Category::Pornography,
        }
    }
}

/// One filtering deployment: a product placed in a country, with its
/// policy, console visibility, optional flapping, and the shape of the
/// submit-and-retest case study run against it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlan {
    /// Index into [`DEPLOYABLE`] country slots.
    pub country: usize,
    /// The product installed on this network's egress.
    pub product: ProductKind,
    /// Content kind of the controlled sites minted for this deployment
    /// (the policy blocks this kind's vendor category).
    pub content: ContentKind,
    /// Whether the product's console/gateway answers external probes
    /// (§6.1's tactic 1, inverted). Websense deployments are always
    /// visible: their block-page host *is* the identifiable surface.
    pub console_visible: bool,
    /// Wrap the middlebox in [`filterwatch_netsim::Flapping`] with this
    /// fail-open probability.
    pub flapping: Option<f64>,
    /// Controlled sites minted for the case study (≥ 2).
    pub n_sites: usize,
    /// Sites submitted to the vendor (1 ≤ n_submit < n_sites, so a
    /// held-out half always exists).
    pub n_submit: usize,
}

impl DeploymentPlan {
    /// The pool row for this deployment's country.
    pub fn country_row(&self) -> (&'static str, &'static str, &'static str) {
        COUNTRY_POOL[DEPLOYABLE.start + self.country]
    }
}

/// Network fault injection applied to every deployment network.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlan {
    /// No faults.
    Clean,
    /// Packet loss only (no latency — virtual time advances identically
    /// to a clean run at equal fetch counts).
    Lossy {
        /// Per-fetch drop probability.
        drop_prob: f64,
    },
    /// The full chaotic mix (drops, resets, DNS failures, truncation,
    /// plus latency).
    Chaotic {
        /// Overall fault rate, split across fault kinds.
        rate: f64,
    },
}

impl FaultPlan {
    /// Materialize the fault profile.
    pub fn profile(&self) -> FaultProfile {
        match self {
            FaultPlan::Clean => FaultProfile::default(),
            FaultPlan::Lossy { drop_prob } => FaultProfile::lossy(*drop_prob),
            FaultPlan::Chaotic { rate } => {
                FaultProfile::chaotic(*rate).expect("plan validated rate")
            }
        }
    }

    /// Whether this plan injects any faults at all.
    pub fn is_clean(&self) -> bool {
        match self {
            FaultPlan::Clean => true,
            FaultPlan::Lossy { drop_prob } => *drop_prob <= 0.0,
            FaultPlan::Chaotic { rate } => *rate <= 0.0,
        }
    }
}

/// A full generated-world scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPlan {
    /// World seed; every stochastic draw in the built world derives
    /// from it.
    pub seed: u64,
    /// URLs per category on the global test list whose origin sites the
    /// world hosts (pre-categorized at every vendor).
    pub urls_per_category: usize,
    /// Filtering deployments.
    pub deployments: Vec<DeploymentPlan>,
    /// Non-filtering bystander ASes (registered after everything else,
    /// so adding one perturbs no existing allocation).
    pub bystanders: usize,
    /// Fault injection on deployment networks.
    pub fault: FaultPlan,
    /// Synthetic scan-corpus size riding along with the world: the
    /// number of Shodan-scale banner records
    /// [`crate::corpus::synth_corpus`] mints for this plan (0 = none —
    /// the default for every generated world, so the worldgen RNG
    /// stream is untouched). Capped at 10⁶.
    pub corpus_scale: usize,
    /// Extra *live* hosts populating the simulated Internet itself:
    /// [`crate::worldgen`] appends this many bystander hosts, spread
    /// over fresh ASes (one per 32 hosts), after everything else — so a
    /// scaled world is a strict superset of the unscaled one. 0 (the
    /// default) adds nothing and leaves every allocation untouched.
    /// This is the event-core scale knob: 10⁵ hosts / multi-thousand
    /// ASes is the intended top rung. Capped at 10⁶.
    pub host_scale: usize,
}

impl ScenarioPlan {
    /// Check structural validity; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.urls_per_category == 0 {
            return Err("urls_per_category must be >= 1".into());
        }
        if self.corpus_scale > 1_000_000 {
            return Err(format!(
                "corpus_scale {} exceeds the 10^6 cap",
                self.corpus_scale
            ));
        }
        if self.host_scale > 1_000_000 {
            return Err(format!(
                "host_scale {} exceeds the 10^6 cap",
                self.host_scale
            ));
        }
        for (i, d) in self.deployments.iter().enumerate() {
            if d.country >= deployable_count() {
                return Err(format!("deployment {i}: country index out of pool"));
            }
            if d.n_sites < 2 {
                return Err(format!("deployment {i}: n_sites must be >= 2"));
            }
            if d.n_submit == 0 || d.n_submit >= d.n_sites {
                return Err(format!(
                    "deployment {i}: need 1 <= n_submit < n_sites for a held-out half"
                ));
            }
            if let Some(p) = d.flapping {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(format!("deployment {i}: flapping prob {p} out of range"));
                }
            }
            if d.product == ProductKind::Websense && !d.console_visible {
                return Err(format!(
                    "deployment {i}: Websense block-page host cannot be hidden"
                ));
            }
        }
        match &self.fault {
            FaultPlan::Clean => {}
            FaultPlan::Lossy { drop_prob } => {
                if !drop_prob.is_finite() || !(0.0..=1.0).contains(drop_prob) {
                    return Err(format!("lossy drop_prob {drop_prob} out of range"));
                }
            }
            FaultPlan::Chaotic { rate } => {
                if !rate.is_finite() || !(0.0..=1.0).contains(rate) {
                    return Err(format!("chaotic rate {rate} out of range"));
                }
            }
        }
        Ok(())
    }

    /// A well-founded size measure: every shrink candidate is strictly
    /// smaller, so greedy minimization terminates.
    pub fn complexity(&self) -> u64 {
        let mut c = 0u64;
        for d in &self.deployments {
            c += 100;
            c += d.n_sites as u64 + d.n_submit as u64;
            if d.flapping.is_some() {
                c += 5;
            }
        }
        c += self.bystanders as u64 * 10;
        if !matches!(self.fault, FaultPlan::Clean) {
            c += 20;
        }
        c += (self.urls_per_category as u64 - 1) * 3;
        c += (self.corpus_scale as u64).div_ceil(1024);
        c += (self.host_scale as u64).div_ceil(1024);
        c
    }

    /// One-step-simpler variants, most aggressive first. Each candidate
    /// is valid and has strictly lower [`ScenarioPlan::complexity`].
    pub fn shrink_candidates(&self) -> Vec<ScenarioPlan> {
        let mut out = Vec::new();
        // Drop a whole deployment.
        for i in 0..self.deployments.len() {
            let mut p = self.clone();
            p.deployments.remove(i);
            out.push(p);
        }
        // Shed a bystander.
        if self.bystanders > 0 {
            let mut p = self.clone();
            p.bystanders -= 1;
            out.push(p);
        }
        // Calm the network down.
        if !matches!(self.fault, FaultPlan::Clean) {
            let mut p = self.clone();
            p.fault = FaultPlan::Clean;
            out.push(p);
        }
        // Thin the test lists.
        if self.urls_per_category > 1 {
            let mut p = self.clone();
            p.urls_per_category = 1;
            out.push(p);
        }
        // Drop the synthetic scan corpus entirely.
        if self.corpus_scale > 0 {
            let mut p = self.clone();
            p.corpus_scale = 0;
            out.push(p);
        }
        // Drop the appended scale hosts entirely.
        if self.host_scale > 0 {
            let mut p = self.clone();
            p.host_scale = 0;
            out.push(p);
        }
        // Per-deployment simplifications.
        for i in 0..self.deployments.len() {
            if self.deployments[i].flapping.is_some() {
                let mut p = self.clone();
                p.deployments[i].flapping = None;
                out.push(p);
            }
            if self.deployments[i].n_sites > 2 {
                let mut p = self.clone();
                let d = &mut p.deployments[i];
                d.n_sites -= 1;
                d.n_submit = d.n_submit.min(d.n_sites - 1);
                out.push(p);
            }
            if self.deployments[i].n_submit > 1 {
                let mut p = self.clone();
                p.deployments[i].n_submit -= 1;
                out.push(p);
            }
        }
        debug_assert!(out.iter().all(|p| p.complexity() < self.complexity()));
        out
    }

    /// One-line summary for failure reports.
    pub fn summary(&self) -> String {
        let deps: Vec<String> = self
            .deployments
            .iter()
            .map(|d| {
                let (cc, _, _) = d.country_row();
                format!(
                    "{}@{cc}{}{} sites={}/{}",
                    d.product.slug(),
                    if d.console_visible { "" } else { " hidden" },
                    d.flapping
                        .map(|p| format!(" flap={p:.2}"))
                        .unwrap_or_default(),
                    d.n_submit,
                    d.n_sites,
                )
            })
            .collect();
        // The corpus knob only prints when set, so reports for the
        // (default) corpus-free plans keep their historical shape.
        let corpus = if self.corpus_scale > 0 {
            format!(" corpus={}", self.corpus_scale)
        } else {
            String::new()
        };
        let hosts = if self.host_scale > 0 {
            format!(" hosts={}", self.host_scale)
        } else {
            String::new()
        };
        format!(
            "seed={} urls/cat={} fault={:?} bystanders={}{corpus}{hosts} deployments=[{}]",
            self.seed,
            self.urls_per_category,
            self.fault,
            self.bystanders,
            deps.join("; ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioPlan {
        ScenarioPlan {
            seed: 7,
            urls_per_category: 2,
            deployments: vec![DeploymentPlan {
                country: 0,
                product: ProductKind::Netsweeper,
                content: ContentKind::Proxy,
                console_visible: true,
                flapping: Some(0.1),
                n_sites: 4,
                n_submit: 2,
            }],
            bystanders: 1,
            fault: FaultPlan::Lossy { drop_prob: 0.05 },
            corpus_scale: 2048,
            host_scale: 96,
        }
    }

    #[test]
    fn sample_is_valid() {
        sample().validate().unwrap();
    }

    #[test]
    fn validation_rejects_missing_holdout() {
        let mut p = sample();
        p.deployments[0].n_submit = p.deployments[0].n_sites;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_hidden_websense() {
        let mut p = sample();
        p.deployments[0].product = ProductKind::Websense;
        p.deployments[0].console_visible = false;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_oversized_corpus() {
        let mut p = sample();
        p.corpus_scale = 1_000_000;
        p.validate().unwrap();
        p.corpus_scale = 1_000_001;
        assert!(p.validate().is_err());
    }

    #[test]
    fn summary_mentions_corpus_only_when_set() {
        let mut p = sample();
        assert!(p.summary().contains("corpus=2048"), "{}", p.summary());
        p.corpus_scale = 0;
        assert!(!p.summary().contains("corpus="), "{}", p.summary());
    }

    #[test]
    fn validation_rejects_oversized_host_scale() {
        let mut p = sample();
        p.host_scale = 1_000_000;
        p.validate().unwrap();
        p.host_scale = 1_000_001;
        assert!(p.validate().is_err());
    }

    #[test]
    fn summary_mentions_hosts_only_when_set() {
        let mut p = sample();
        assert!(p.summary().contains("hosts=96"), "{}", p.summary());
        p.host_scale = 0;
        assert!(!p.summary().contains("hosts="), "{}", p.summary());
    }

    #[test]
    fn shrinks_are_valid_and_strictly_smaller() {
        let p = sample();
        let shrinks = p.shrink_candidates();
        assert!(!shrinks.is_empty());
        for s in &shrinks {
            s.validate().unwrap();
            assert!(s.complexity() < p.complexity(), "{}", s.summary());
        }
    }

    #[test]
    fn repeated_shrinking_terminates_at_the_empty_plan() {
        let mut p = sample();
        let mut steps = 0;
        while let Some(next) = p.shrink_candidates().into_iter().next() {
            p = next;
            steps += 1;
            assert!(steps < 1000, "shrinking did not terminate");
        }
        assert!(p.deployments.is_empty());
    }
}
