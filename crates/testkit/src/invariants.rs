//! The metamorphic invariant suite.
//!
//! Each invariant states a relation between campaign outcomes on
//! *variants* of one scenario that must hold for any valid plan — no
//! oracle for the "right" verdicts needed:
//!
//! 1. **Permutation invariance** — shuffling scan-record order leaves
//!    the identify installations table byte-identical.
//! 2. **Bystander indifference** — adding a non-filtering AS never
//!    changes a verdict or an identification.
//! 3. **Fault degradation** — raising the fault rate (under the chaos
//!    resilience profile) may degrade a verdict to inconclusive or
//!    inaccessible, but never flips accessible ↔ blocked, and may only
//!    move a case's confirmation through an inconclusive retest.
//! 4. **Holdout integrity** — a case is confirmed iff the majority of
//!    its *submitted* half blocked, and the held-out half never blocks
//!    (its domains are structurally unknown to every vendor).
//! 5. **Shard invariance** — repartitioning the scan index across any
//!    shard count leaves the identify installations table
//!    byte-identical (sharding is a layout choice, never a semantic
//!    one).

use filterwatch_core::identify::IdentifyPipeline;
use filterwatch_scanner::{ScanEngine, ScanIndex, ShardConfig};

use crate::plan::{FaultPlan, ScenarioPlan};
use crate::runner::{run_campaign, run_campaign_with, RunConfig};
use crate::strategies::plan_for_seed;
use crate::worldgen::build_world;

/// A failed invariant, with enough context to reproduce.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// The plan it failed on.
    pub plan: ScenarioPlan,
    /// What differed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant {} violated on {}\n{}",
            self.invariant,
            self.plan.summary(),
            self.detail
        )
    }
}

fn violation(invariant: &'static str, plan: &ScenarioPlan, detail: String) -> Violation {
    Violation {
        invariant,
        plan: plan.clone(),
        detail,
    }
}

/// First line where two renderings differ, for readable failures.
pub fn first_diff(a: &str, b: &str) -> String {
    for (n, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: {la:?} != {lb:?}", n + 1);
        }
    }
    format!(
        "lengths differ: {} vs {} lines",
        a.lines().count(),
        b.lines().count()
    )
}

/// Invariant 1: identify tables are independent of scan-record order.
pub fn check_permutation_invariance(plan: &ScenarioPlan) -> Result<(), Violation> {
    let gw = build_world(plan);
    let index = ScanEngine::new().scan(&gw.net);
    let pipeline = IdentifyPipeline::new();
    let base = pipeline
        .run_on_index(&gw.net, &index)
        .render_installations();
    for shuffle_seed in [1u64, 0xfeed] {
        let shuffled = index.shuffled(shuffle_seed);
        let permuted = pipeline
            .run_on_index(&gw.net, &shuffled)
            .render_installations();
        if permuted != base {
            return Err(violation(
                "permutation-invariance",
                plan,
                format!(
                    "shuffle seed {shuffle_seed}: {}",
                    first_diff(&base, &permuted)
                ),
            ));
        }
    }
    Ok(())
}

/// Invariant 5: identify tables are independent of how the scan index
/// is sharded — a single flat shard and a wide partitioning must
/// render the same installations, byte for byte.
pub fn check_shard_invariance(plan: &ScenarioPlan) -> Result<(), Violation> {
    let gw = build_world(plan);
    let index = ScanEngine::new().scan(&gw.net);
    let pipeline = IdentifyPipeline::new();
    let base = pipeline
        .run_on_index(&gw.net, &index)
        .render_installations();
    for shards in [1usize, 3, 16] {
        let repartitioned = ScanIndex::build_with(index.records().to_vec(), ShardConfig { shards });
        let rendered = pipeline
            .run_on_index(&gw.net, &repartitioned)
            .render_installations();
        if rendered != base {
            return Err(violation(
                "shard-invariance",
                plan,
                format!("{shards} shard(s): {}", first_diff(&base, &rendered)),
            ));
        }
    }
    Ok(())
}

/// Invariant 2: a non-filtering AS is invisible to every verdict.
pub fn check_bystander_indifference(plan: &ScenarioPlan) -> Result<(), Violation> {
    let base = run_campaign(plan).comparable_text();
    let mut grown = plan.clone();
    grown.bystanders += 1;
    let with_bystander = run_campaign(&grown).comparable_text();
    if base != with_bystander {
        return Err(violation(
            "bystander-indifference",
            plan,
            first_diff(&base, &with_bystander),
        ));
    }
    Ok(())
}

/// The verdict label of a stable line (`...\t<label>\t<product>`).
fn line_label(line: &str) -> &str {
    line.rsplit('\t').nth(1).unwrap_or("")
}

fn is_cross_flip(clean: &str, faulted: &str) -> bool {
    (clean == "accessible" && faulted == "blocked")
        || (clean == "blocked" && faulted == "accessible")
}

/// Invariant 3: faults only degrade, never flip.
///
/// Flapping is stripped from both variants: a flapping box re-rolls per
/// virtual instant, and fault-induced retries shift the clock, so
/// verdict churn under flapping is legitimate world behaviour, not a
/// pipeline bug.
pub fn check_fault_degradation(plan: &ScenarioPlan) -> Result<(), Violation> {
    let mut clean = plan.clone();
    clean.fault = FaultPlan::Clean;
    for d in &mut clean.deployments {
        d.flapping = None;
    }
    let mut faulted = clean.clone();
    faulted.fault = match &plan.fault {
        FaultPlan::Clean => FaultPlan::Lossy { drop_prob: 0.08 },
        other => other.clone(),
    };

    // Both runs use the chaos resilience profile so the only difference
    // is the fault injection itself.
    let config = RunConfig {
        resilience: filterwatch_measure::ResilienceConfig::chaos(),
        telemetry: false,
        fetch_path: filterwatch_netsim::FetchPath::default(),
    };
    let clean_report = run_campaign_with(&clean, &config);
    let faulted_report = run_campaign_with(&faulted, &config);

    let clean_lines: Vec<&String> = clean_report
        .list_lines
        .iter()
        .chain(clean_report.cases.iter().flat_map(|c| &c.retest_lines))
        .collect();
    let faulted_lines: Vec<&String> = faulted_report
        .list_lines
        .iter()
        .chain(faulted_report.cases.iter().flat_map(|c| &c.retest_lines))
        .collect();
    if clean_lines.len() != faulted_lines.len() {
        return Err(violation(
            "fault-degradation",
            plan,
            format!(
                "sweep sizes differ: {} vs {}",
                clean_lines.len(),
                faulted_lines.len()
            ),
        ));
    }
    for (a, b) in clean_lines.iter().zip(&faulted_lines) {
        let (la, lb) = (line_label(a), line_label(b));
        if is_cross_flip(la, lb) {
            return Err(violation(
                "fault-degradation",
                plan,
                format!("verdict cross-flip: {a:?} became {b:?}"),
            ));
        }
    }

    // Case-level: a confirmation may only change via an inconclusive
    // retest (the machinery said "don't know", never the opposite
    // answer).
    for (c, f) in clean_report.cases.iter().zip(&faulted_report.cases) {
        if c.confirmed != f.confirmed && f.retest_inconclusive == 0 {
            return Err(violation(
                "fault-degradation",
                plan,
                format!(
                    "dep{}: confirmation flipped ({} -> {}) with zero inconclusive retests",
                    c.deployment, c.confirmed, f.confirmed
                ),
            ));
        }
    }
    Ok(())
}

/// Invariant 4: confirmation is exactly the submitted-majority rule,
/// and held-out domains stay unblocked (reachable, on clean worlds).
pub fn check_holdout_integrity(plan: &ScenarioPlan) -> Result<(), Violation> {
    let report = run_campaign(plan);
    for c in &report.cases {
        if c.confirmed != (c.submitted_blocked * 2 > c.n_submit) {
            return Err(violation(
                "holdout-integrity",
                plan,
                format!(
                    "dep{}: confirmed flag disagrees with majority rule: {c:?}",
                    c.deployment
                ),
            ));
        }
        if c.holdout_blocked != 0 {
            return Err(violation(
                "holdout-integrity",
                plan,
                format!(
                    "dep{}: {} held-out site(s) blocked: {c:?}",
                    c.deployment, c.holdout_blocked
                ),
            ));
        }
        if plan.fault.is_clean() {
            for line in &c.retest_lines[c.n_submit..] {
                if line_label(line) != "accessible" {
                    return Err(violation(
                        "holdout-integrity",
                        plan,
                        format!(
                            "dep{}: held-out site not reachable on a clean world: {line:?}",
                            c.deployment
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Every invariant, on one plan.
pub fn check_plan(plan: &ScenarioPlan) -> Result<(), Violation> {
    check_permutation_invariance(plan)?;
    check_shard_invariance(plan)?;
    check_bystander_indifference(plan)?;
    check_fault_degradation(plan)?;
    check_holdout_integrity(plan)?;
    Ok(())
}

/// Every invariant, on the generated plan for a seed.
pub fn check_seed(seed: u64) -> Result<(), Violation> {
    check_plan(&plan_for_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_label_parses_stable_lines() {
        assert_eq!(line_label("http://a/\tblocked\tnetsweeper"), "blocked");
        assert_eq!(line_label("dep0 http://a/\taccessible\t-"), "accessible");
    }

    #[test]
    fn cross_flip_detector() {
        assert!(is_cross_flip("accessible", "blocked"));
        assert!(is_cross_flip("blocked", "accessible"));
        assert!(!is_cross_flip("accessible", "inaccessible"));
        assert!(!is_cross_flip("blocked", "inconclusive"));
        assert!(!is_cross_flip("blocked", "blocked"));
    }

    #[test]
    fn one_seed_passes_everything() {
        check_seed(0).unwrap_or_else(|v| panic!("{v}"));
    }
}
