//! Golden-snapshot framework.
//!
//! A golden is a checked-in stable rendering (campaign report, table,
//! generated-world summary) that pins today's behaviour byte-for-byte.
//! [`check_golden`] compares a rendering against its file under this
//! crate's `goldens/` directory; set `FILTERWATCH_UPDATE_GOLDENS=1` to
//! regenerate after an intentional behaviour change, then review the
//! diff like any other code change.

use std::fs;
use std::path::PathBuf;

/// Environment variable that switches comparison to regeneration.
pub const UPDATE_ENV: &str = "FILTERWATCH_UPDATE_GOLDENS";

/// Whether this process is in regeneration mode.
pub fn update_mode() -> bool {
    std::env::var(UPDATE_ENV).map(|v| v == "1").unwrap_or(false)
}

/// Path of a named golden file.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(format!("{name}.golden"))
}

/// Compare `actual` against the checked-in golden `name`, or rewrite it
/// in update mode. Errors carry the first differing line and the
/// regeneration instructions.
pub fn check_golden(name: &str, actual: &str) -> Result<(), String> {
    let path = golden_path(name);
    if update_mode() {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        fs::write(&path, actual).map_err(|e| format!("write {}: {e}", path.display()))?;
        return Ok(());
    }
    let expected = fs::read_to_string(&path).map_err(|e| {
        format!(
            "missing golden {name:?} ({}): {e}\nrun with {UPDATE_ENV}=1 to create it",
            path.display()
        )
    })?;
    if expected == actual {
        return Ok(());
    }
    Err(format!(
        "golden {name:?} drifted ({}):\n{}\nif the change is intentional, regenerate with \
         {UPDATE_ENV}=1 and commit the diff",
        path.display(),
        crate::invariants::first_diff(&expected, actual)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_land_in_the_crate_goldens_dir() {
        let p = golden_path("demo");
        assert!(p.ends_with("goldens/demo.golden"));
        assert!(p.starts_with(env!("CARGO_MANIFEST_DIR")));
    }

    #[test]
    fn missing_golden_mentions_the_update_env() {
        // Not in update mode in CI/test runs.
        if update_mode() {
            return;
        }
        let err = check_golden("definitely-not-checked-in", "x").unwrap_err();
        assert!(err.contains(UPDATE_ENV), "{err}");
    }
}
