//! # filterwatch-testkit
//!
//! A deterministic simulation test harness for the whole measurement
//! pipeline. Where the crate-level unit tests pin the *paper world*
//! (one hand-built scenario at pinned seeds), the testkit generates
//! *arbitrary-but-valid* worlds from a seed and checks properties that
//! must hold on every one of them:
//!
//! - [`plan`] / [`strategies`] — declarative, shrinkable scenario plans
//!   and the proptest strategies that generate them (`plan_for_seed` is
//!   the deterministic seed → plan map everything shares);
//! - [`corpus`] — Shodan-scale synthetic banner corpora minted from a
//!   plan's `corpus_scale` knob over the shared country pool;
//! - [`worldgen`] — turning a plan into a live simulated Internet:
//!   random AS topologies across a fixed country pool, per-vendor
//!   product deployments with visible or hidden consoles, flapping
//!   middleboxes, pre-categorized URL lists, fault profiles;
//! - [`runner`] — the paper's identify → submit-and-retest loop on a
//!   generated world, rendered as stable, byte-comparable text;
//! - [`orchestrate`] — the same loop as a crash-safe resumable state
//!   machine under the `filterwatch-orchestrator` scheduler, with the
//!   crash-recovery battery's driver and resume entry points;
//! - [`invariants`] — the metamorphic suite (permutation invariance,
//!   bystander indifference, fault degradation, holdout integrity);
//! - [`golden`] — checked-in snapshots with
//!   `FILTERWATCH_UPDATE_GOLDENS=1` regeneration;
//! - [`differential`] — the multi-seed differential runner with greedy
//!   failure minimization.
//!
//! Everything is a pure function of the seed: two runs of any testkit
//! entry point at the same seed produce byte-identical output.

pub mod corpus;
pub mod differential;
pub mod golden;
pub mod invariants;
pub mod orchestrate;
pub mod plan;
pub mod runner;
pub mod strategies;
pub mod worldgen;

pub use corpus::{synth_corpus, synth_corpus_index};
pub use differential::{minimize, run_seed, seeds_from_env, Divergence};
pub use golden::{check_golden, golden_path, update_mode, UPDATE_ENV};
pub use invariants::{check_plan, check_seed, Violation};
pub use orchestrate::{resume_generated_campaign, run_generated_campaign, GeneratedDriver};
pub use plan::{ContentKind, DeploymentPlan, FaultPlan, ScenarioPlan};
pub use runner::{
    run_campaign, run_campaign_forensic, run_campaign_with, CampaignForensics, CaseOutcome,
    GeneratedReport, RunConfig,
};
pub use strategies::{plan_for_seed, plan_strategy};
pub use worldgen::{build_world, GeneratedSite, GeneratedWorld};
