//! Building a live simulated Internet from a [`ScenarioPlan`].
//!
//! The construction order is load-bearing for the metamorphic suite:
//! infrastructure first (lab, hosting, vendor clouds, test-list origin
//! sites), then deployments in plan order, then bystander ASes *last* —
//! so adding a bystander to a plan perturbs no allocation made for
//! anything else, which is exactly what the bystander-indifference
//! invariant byte-compares on.

use std::collections::BTreeMap;
use std::sync::Arc;

use filterwatch_http::Url;
use filterwatch_measure::{MeasurementClient, ResilienceConfig};
use filterwatch_netsim::service::{AdultImageSite, GlypeProxySite, StaticSite};
use filterwatch_netsim::{
    Flapping, Internet, IpAddr, Middlebox, NetworkId, NetworkSpec, VantageId,
};
use filterwatch_products::bluecoat::{
    BlueCoatProxy, CfAuthPortal, ProxySgConsole, ProxySgIntercept,
};
use filterwatch_products::netsweeper::{NetsweeperBox, NetsweeperConsole};
use filterwatch_products::smartfilter::{SmartFilterBox, SmartFilterConsole};
use filterwatch_products::websense::{WebsenseBlockpage, WebsenseBox, BLOCKPAGE_PORT};
use filterwatch_products::{taxonomy, FilterPolicy, ProductKind, VendorCloud};
use filterwatch_urllists::{Category, DomainForge, TestList};

use crate::plan::{ContentKind, DeploymentPlan, ScenarioPlan, COUNTRY_POOL, DEPLOYABLE};

/// A researcher-controlled site minted on the hosting network.
#[derive(Debug, Clone)]
pub struct GeneratedSite {
    /// The registered domain.
    pub domain: String,
    /// Hosted content kind.
    pub content: ContentKind,
    /// Host address.
    pub ip: IpAddr,
}

impl GeneratedSite {
    /// The URL testers fetch (the benign object for adult sites).
    pub fn test_url(&self) -> Url {
        let path = match self.content {
            ContentKind::Proxy => "/",
            ContentKind::Adult => "/benign.png",
        };
        Url::parse(&format!("http://{}{path}", self.domain)).expect("valid")
    }

    /// The URL submitted to vendors.
    pub fn submit_url(&self) -> Url {
        Url::parse(&format!("http://{}/", self.domain)).expect("valid")
    }
}

/// The built world for a plan.
pub struct GeneratedWorld {
    /// The simulated Internet.
    pub net: Internet,
    /// The plan this world was built from.
    pub plan: ScenarioPlan,
    /// Control vantage (unfiltered lab network).
    pub lab: VantageId,
    /// Hosting network controlled sites and list origins stand on.
    pub hosting: NetworkId,
    /// One field vantage per deployment, in plan order.
    pub vantages: Vec<VantageId>,
    clouds: BTreeMap<ProductKind, Arc<VendorCloud>>,
    forge: DomainForge,
}

impl GeneratedWorld {
    /// The vendor cloud for a product.
    pub fn cloud(&self, product: ProductKind) -> &Arc<VendorCloud> {
        &self.clouds[&product]
    }

    /// A lab-controlled measurement client inside deployment `dep`.
    pub fn client(&self, dep: usize, resilience: &ResilienceConfig) -> MeasurementClient {
        MeasurementClient::new(self.vantages[dep], self.lab)
            .with_resilience(resilience.clone())
            .with_telemetry(self.net.telemetry().clone())
    }

    /// Mint a fresh controlled domain hosting `content`, resolvable
    /// worldwide, with reviewer ground truth registered at every vendor.
    pub fn mint_site(&mut self, content: ContentKind) -> GeneratedSite {
        let domain = self.forge.mint();
        let ip = self.net.alloc_ip(self.hosting).expect("hosting space");
        self.net.add_host(ip, self.hosting, &[&domain]);
        match content {
            ContentKind::Proxy => self.net.add_service(ip, 80, Box::new(GlypeProxySite)),
            ContentKind::Adult => self
                .net
                .add_service(ip, 80, Box::new(AdultImageSite::new())),
        }
        for cloud in self.clouds.values() {
            cloud.register_site_profile(&domain, content.category());
        }
        GeneratedSite {
            domain,
            content,
            ip,
        }
    }
}

/// Deployment network name (`dep0-netsweeper` style).
pub fn deployment_name(i: usize, d: &DeploymentPlan) -> String {
    format!("dep{i}-{}", d.product.slug())
}

fn deny_host_name(name: &str, tld: &str) -> String {
    format!("gw.{name}.{tld}")
}

/// The blocked vendor categories of a deployment's policy: its content
/// kind plus pornography (so pre-categorized test-list URLs produce
/// blocked verdicts even before any submission lands).
fn policy_for(d: &DeploymentPlan) -> FilterPolicy {
    let mut cats = vec![taxonomy::vendor_category(d.product, d.content.category())];
    let porn = taxonomy::vendor_category(d.product, Category::Pornography);
    if !cats.contains(&porn) {
        cats.push(porn);
    }
    FilterPolicy::blocking(cats)
}

/// Build the simulated Internet a plan describes.
///
/// # Panics
/// When the plan fails [`ScenarioPlan::validate`].
pub fn build_world(plan: &ScenarioPlan) -> GeneratedWorld {
    plan.validate().expect("plan must be valid");
    let seed = plan.seed;
    let mut net = Internet::new(seed);

    // The whole pool is registered up front so keyword × ccTLD scope is
    // identical across metamorphic variants of the same plan.
    for &(code, name, tld) in COUNTRY_POOL {
        net.registry_mut().register_country(code, name, tld);
    }

    let mut clouds = BTreeMap::new();
    for product in ProductKind::ALL {
        clouds.insert(product, Arc::new(VendorCloud::new(product, seed)));
    }

    let lab_net = {
        let asn = net.registry_mut().register_as(64500, "GEN-LAB", "CA");
        let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
        net.add_network(NetworkSpec::new("gen-lab", asn, "CA").with_cidr(p))
    };
    let lab = net.add_vantage("gen-lab", lab_net);
    let hosting = {
        let asn = net.registry_mut().register_as(64501, "GEN-HOSTING", "US");
        let p = net.registry_mut().allocate_prefix(asn, 4).expect("prefix");
        net.add_network(NetworkSpec::new("gen-hosting", asn, "US").with_cidr(p))
    };
    // Vendor-side infrastructure blocked flows depend on: Blue Coat
    // deployments redirect to the cfauth portal, so the host must
    // resolve worldwide or blocks would present as DNS failures.
    {
        let asn = net.registry_mut().register_as(64502, "GEN-VENDOR", "US");
        let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
        let vendor_net = net.add_network(NetworkSpec::new("gen-vendor", asn, "US").with_cidr(p));
        let ip = net.alloc_ip(vendor_net).expect("cfauth ip");
        net.add_host(ip, vendor_net, &["www.cfauth.com"]);
        net.add_service(ip, 80, Box::new(CfAuthPortal));
    }

    // Test-list origin sites, pre-categorized at every vendor.
    let list = TestList::global(plan.urls_per_category);
    for test_url in &list.urls {
        let url = Url::parse(&test_url.url).expect("list URL parses");
        let ip = net.alloc_ip(hosting).expect("origin ip");
        net.add_host(ip, hosting, &[url.host()]);
        net.add_service(
            ip,
            80,
            Box::new(StaticSite::new(
                test_url.category.name(),
                &format!(
                    "<p>Reference content for the {} category.</p>",
                    test_url.category.name()
                ),
            )),
        );
        let domain = url.registrable_domain();
        for (product, cloud) in &clouds {
            cloud.register_site_profile(&domain, test_url.category);
            cloud.seed_categorization(
                &domain,
                taxonomy::vendor_category(*product, test_url.category),
            );
        }
    }

    // Deployments, in plan order.
    let mut vantages = Vec::new();
    for (i, d) in plan.deployments.iter().enumerate() {
        let (code, _, tld) = d.country_row();
        let name = deployment_name(i, d);
        let asn = net
            .registry_mut()
            .register_as(64600 + i as u32, &format!("GEN-DEP{i}"), code);
        let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
        let isp = net.add_network(
            NetworkSpec::new(&name, asn, code)
                .with_cidr(p)
                .with_faults(plan.fault.profile()),
        );

        let cloud = Arc::clone(&clouds[&d.product]);
        let policy = policy_for(d);
        let deny_host = deny_host_name(&name, tld);
        let label = format!("{}@{name}", d.product.slug());
        let inner: Arc<dyn Middlebox> = match d.product {
            ProductKind::BlueCoat => Arc::new(BlueCoatProxy::new(&label, cloud, policy)),
            ProductKind::SmartFilter => Arc::new(SmartFilterBox::new(&label, cloud, policy)),
            // No `with_queueing`: generated worlds keep the held-out
            // half structurally uncategorizable, which is what the
            // holdout-integrity invariant relies on.
            ProductKind::Netsweeper => {
                Arc::new(NetsweeperBox::new(&label, cloud, policy, &deny_host))
            }
            ProductKind::Websense => Arc::new(WebsenseBox::new(&label, cloud, policy, &deny_host)),
        };
        let boxed: Arc<dyn Middlebox> = match d.flapping {
            Some(prob) => Arc::new(
                Flapping::try_new(
                    inner,
                    prob,
                    filterwatch_netsim::rng::mix(seed, &format!("testkit-flap/{i}")),
                )
                .expect("plan validated probability"),
            ),
            None => inner,
        };
        net.attach_middlebox(isp, boxed);

        add_surface(&mut net, isp, &name, tld, d);
        vantages.push(net.add_vantage(&format!("dep{i}-field"), isp));
    }

    // Bystander ASes last: purely additive, no middlebox, no vantage.
    for j in 0..plan.bystanders {
        let slot = DEPLOYABLE.start + (j % (DEPLOYABLE.end - DEPLOYABLE.start));
        let (code, _, tld) = COUNTRY_POOL[slot];
        let asn = net
            .registry_mut()
            .register_as(65100 + j as u32, &format!("GEN-BYS{j}"), code);
        let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
        let nid =
            net.add_network(NetworkSpec::new(&format!("bystander{j}"), asn, code).with_cidr(p));
        let ip = net.alloc_ip(nid).expect("bystander ip");
        let host = format!("www.quiet{j}.{tld}");
        net.add_host(ip, nid, &[&host]);
        net.add_service(
            ip,
            80,
            Box::new(StaticSite::new("Bystander", "<p>nothing to see</p>")),
        );
    }

    // Scale hosts after even the bystanders: a scaled world is a strict
    // superset of the unscaled one, so `host_scale` perturbs no
    // allocation anything else byte-compares on.
    add_scale_hosts(&mut net, plan);

    GeneratedWorld {
        net,
        plan: plan.clone(),
        lab,
        hosting,
        vantages,
        clouds,
        forge: DomainForge::new(filterwatch_netsim::rng::mix(seed, "testkit-forge")),
    }
}

/// Hosts per scale AS: 10⁵ hosts spread one /24 at a time yields the
/// multi-thousand-AS topology the event-core scale rung calls for.
const SCALE_HOSTS_PER_AS: usize = 32;

/// Every Nth scale host binds a service; the rest are bare DNS + address
/// entries, matching the real Internet's mostly-silent address space.
const SCALE_SERVICE_STRIDE: usize = 64;

/// Append [`ScenarioPlan::host_scale`] bystander hosts, one fresh AS per
/// [`SCALE_HOSTS_PER_AS`] of them, countries cycling through the
/// deployable pool. Addresses come straight off each AS's prefix —
/// [`Internet::alloc_ip`] scans the network's allocation table per call,
/// which is quadratic at 10⁵ hosts. Runs out of address space silently:
/// the world simply stops growing (plan validation caps the knob long
/// before that point).
fn add_scale_hosts(net: &mut Internet, plan: &ScenarioPlan) {
    let mut added = 0usize;
    let mut seq = 0u32;
    while added < plan.host_scale {
        let slot = DEPLOYABLE.start + (seq as usize % (DEPLOYABLE.end - DEPLOYABLE.start));
        let (code, _, tld) = COUNTRY_POOL[slot];
        let asn = net
            .registry_mut()
            .register_as(200_000 + seq, &format!("GEN-SCALE{seq}"), code);
        let Some(p) = net.registry_mut().allocate_prefix(asn, 1) else {
            return;
        };
        let nid = net.add_network(NetworkSpec::new(&format!("scale{seq}"), asn, code).with_cidr(p));
        let batch = SCALE_HOSTS_PER_AS.min(plan.host_scale - added);
        for (k, ip) in p.iter().take(batch).enumerate() {
            let n = added + k;
            let host = format!("www.scale{n}.{tld}");
            net.add_host(ip, nid, &[&host]);
            if n % SCALE_SERVICE_STRIDE == 0 {
                net.add_service(
                    ip,
                    80,
                    Box::new(StaticSite::new("Scale filler", "<p>nothing to see</p>")),
                );
            }
        }
        added += batch;
        seq += 1;
    }
}

/// The externally probeable surface of a deployment: the product's
/// console/gateway host. Hidden Netsweeper and Websense deployments
/// still need their deny/block-page host to exist (in-network clients
/// fetch it when blocked); Netsweeper hides by answering only the deny
/// path, Websense is never hidden (validated upstream).
fn add_surface(net: &mut Internet, isp: NetworkId, name: &str, tld: &str, d: &DeploymentPlan) {
    let host = match d.product {
        ProductKind::BlueCoat => format!("proxy.{name}.{tld}"),
        ProductKind::SmartFilter => format!("mwg.{name}.{tld}"),
        ProductKind::Netsweeper | ProductKind::Websense => deny_host_name(name, tld),
    };
    if !d.console_visible && matches!(d.product, ProductKind::BlueCoat | ProductKind::SmartFilter) {
        // Inline blockers: no external host at all when hidden.
        return;
    }
    let ip = net.alloc_ip(isp).expect("console ip");
    net.add_host(ip, isp, &[&host]);
    match d.product {
        ProductKind::BlueCoat => {
            net.add_service(ip, 80, Box::new(ProxySgConsole));
            net.add_service(ip, 8080, Box::new(ProxySgIntercept));
        }
        ProductKind::SmartFilter => net.add_service(ip, 80, Box::new(SmartFilterConsole)),
        ProductKind::Netsweeper => {
            if d.console_visible {
                net.add_service(ip, 8080, Box::new(NetsweeperConsole));
            } else {
                net.add_service(ip, 8080, Box::new(DenyOnly));
            }
        }
        ProductKind::Websense => net.add_service(ip, BLOCKPAGE_PORT, Box::new(WebsenseBlockpage)),
    }
}

/// A Netsweeper deny host that answers only the deny path — the
/// "properly configured" installation of §6.1: deny pages work, probes
/// learn nothing.
#[derive(Debug, Clone, Default)]
struct DenyOnly;

impl filterwatch_netsim::Service for DenyOnly {
    fn handle(
        &self,
        req: &filterwatch_http::Request,
        ctx: &filterwatch_netsim::ServiceCtx,
    ) -> filterwatch_http::Response {
        if req.url.path().starts_with("/webadmin/deny") {
            NetsweeperConsole.handle(req, ctx)
        } else {
            filterwatch_http::Response::not_found()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::plan_for_seed;
    use filterwatch_core::identify::IdentifyPipeline;

    #[test]
    fn builds_a_world_for_every_early_seed() {
        for seed in 0..8 {
            let plan = plan_for_seed(seed);
            let gw = build_world(&plan);
            assert_eq!(gw.vantages.len(), plan.deployments.len());
            assert!(gw.net.host_count() > 0);
        }
    }

    #[test]
    fn same_plan_same_topology_digest() {
        let plan = plan_for_seed(3);
        let a = build_world(&plan).net.topology_digest();
        let b = build_world(&plan).net.topology_digest();
        assert_eq!(a, b);
    }

    #[test]
    fn visible_consoles_are_identified() {
        // Find a plan with a visible console and check the identify
        // pipeline validates an installation in its country.
        for seed in 0..32 {
            let plan = plan_for_seed(seed);
            let Some(d) = plan.deployments.iter().find(|d| d.console_visible) else {
                continue;
            };
            let (cc, _, _) = d.country_row();
            let gw = build_world(&plan);
            let report = IdentifyPipeline::new().run(&gw.net);
            assert!(
                report
                    .installations
                    .iter()
                    .any(|inst| inst.product == d.product && inst.country == cc),
                "seed {seed}: {} not identified in {cc}\n{}",
                d.product,
                report.render_installations()
            );
            return;
        }
        panic!("no visible deployment in 32 seeds");
    }

    #[test]
    fn host_scale_appends_a_superset_world() {
        let mut plan = plan_for_seed(2);
        plan.host_scale = 0;
        let base = build_world(&plan);
        plan.host_scale = 100;
        let scaled = build_world(&plan);
        assert_eq!(scaled.net.host_count(), base.net.host_count() + 100);
        // seq 0 lands on the first deployable slot (QA); host 99 sits
        // in the fourth /24 (slot PK). Nothing past the knob exists.
        assert!(scaled.net.dns().resolve("www.scale0.qa").is_some());
        assert!(scaled.net.dns().resolve("www.scale99.pk").is_some());
        assert!(scaled.net.dns().resolve("www.scale100.pk").is_none());
    }

    #[test]
    fn minted_sites_resolve_and_start_accessible() {
        let mut plan = plan_for_seed(1);
        plan.fault = crate::plan::FaultPlan::Clean;
        for d in &mut plan.deployments {
            d.flapping = None;
        }
        let mut gw = build_world(&plan);
        let site = gw.mint_site(ContentKind::Proxy);
        assert!(gw.net.dns().resolve(&site.domain).is_some());
        // Freshly minted and never submitted: no vendor has categorized
        // it, so even the filtered path lets it through.
        let client = gw.client(0, &ResilienceConfig::default());
        let v = client.test_url(&gw.net, &site.test_url());
        assert!(v.verdict.is_accessible(), "{:?}", v.verdict);
    }
}
