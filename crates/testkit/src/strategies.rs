//! Proptest strategies generating arbitrary-but-valid [`ScenarioPlan`]s.
//!
//! Every plan a strategy emits passes [`ScenarioPlan::validate`]; the
//! dependent pieces (a submitted count strictly below the site count)
//! use `prop_flat_map`. [`plan_for_seed`] is the deterministic entry
//! point the invariant suite and differential runner share: the same
//! seed always yields the same plan.

use proptest::collection::vec;
use proptest::strategy::{BoxedStrategy, Just, Strategy, Union};
use proptest::test_runner::TestRng;

use filterwatch_products::ProductKind;

use crate::plan::{deployable_count, ContentKind, DeploymentPlan, FaultPlan, ScenarioPlan};

fn product_strategy() -> BoxedStrategy<ProductKind> {
    Union::new(ProductKind::ALL.iter().map(|&p| Just(p).boxed()).collect()).boxed()
}

fn content_strategy() -> BoxedStrategy<ContentKind> {
    Union::new(vec![
        Just(ContentKind::Proxy).boxed(),
        Just(ContentKind::Adult).boxed(),
    ])
    .boxed()
}

/// Three in four deployments answer probes (the paper found consoles
/// overwhelmingly visible); one in four hides its surface.
fn visibility_strategy() -> BoxedStrategy<bool> {
    (0u8..4).prop_map(|v| v != 0).boxed()
}

/// One in four deployments flaps (fails open per-flow) with a
/// probability low enough that majorities still form.
fn flapping_strategy() -> BoxedStrategy<Option<f64>> {
    (0u8..4)
        .prop_flat_map(|tag| {
            if tag == 0 {
                (0.05f64..=0.30).prop_map(Some).boxed()
            } else {
                Just(None).boxed()
            }
        })
        .boxed()
}

/// One deployment: country, product, policy content, visibility,
/// flapping, and a case-study shape with a guaranteed held-out half.
pub fn deployment_strategy() -> BoxedStrategy<DeploymentPlan> {
    (
        0usize..deployable_count(),
        product_strategy(),
        content_strategy(),
        visibility_strategy(),
        flapping_strategy(),
        (3usize..=6).prop_flat_map(|n_sites| (Just(n_sites), 1usize..n_sites)),
    )
        .prop_map(
            |(country, product, content, console_visible, flapping, (n_sites, n_submit))| {
                DeploymentPlan {
                    country,
                    product,
                    content,
                    // A hidden Websense has no way to serve its block
                    // page; normalize rather than reject.
                    console_visible: console_visible || product == ProductKind::Websense,
                    flapping,
                    n_sites,
                    n_submit,
                }
            },
        )
        .boxed()
}

/// Fault plans, biased toward clean worlds (half the draws).
pub fn fault_strategy() -> BoxedStrategy<FaultPlan> {
    Union::new(vec![
        Just(FaultPlan::Clean).boxed(),
        Just(FaultPlan::Clean).boxed(),
        (0.01f64..=0.08)
            .prop_map(|drop_prob| FaultPlan::Lossy { drop_prob })
            .boxed(),
        (0.01f64..=0.12)
            .prop_map(|rate| FaultPlan::Chaotic { rate })
            .boxed(),
    ])
    .boxed()
}

/// A whole scenario: one to four deployments, up to two bystander ASes,
/// one or two URLs per test-list category. The generated `seed` field
/// is zero — [`plan_for_seed`] stamps the real world seed.
pub fn plan_strategy() -> BoxedStrategy<ScenarioPlan> {
    (
        1usize..=2,
        vec(deployment_strategy(), 1..=4),
        0usize..=2,
        fault_strategy(),
    )
        .prop_map(
            |(urls_per_category, deployments, bystanders, fault)| ScenarioPlan {
                seed: 0,
                urls_per_category,
                deployments,
                bystanders,
                fault,
                // Assigned, never drawn: generated worlds carry no
                // synthetic corpus or scale hosts by default, and
                // keeping these out of the strategy tuple leaves the
                // RNG stream — and so every pinned-seed plan — exactly
                // as it was.
                corpus_scale: 0,
                host_scale: 0,
            },
        )
        .boxed()
}

/// The deterministic plan for a world seed: same seed, same plan,
/// always. (The generator stream is keyed on the low 32 bits; the full
/// seed still reaches the built world verbatim.)
pub fn plan_for_seed(seed: u64) -> ScenarioPlan {
    let mut rng = TestRng::for_case("filterwatch-testkit/plan", seed as u32);
    let mut plan = plan_strategy().generate(&mut rng);
    plan.seed = seed;
    plan.validate().expect("generated plans are valid");
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_are_valid_across_many_seeds() {
        for seed in 0..64 {
            let plan = plan_for_seed(seed);
            plan.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", plan.summary()));
            assert_eq!(plan.seed, seed);
            assert!(!plan.deployments.is_empty());
        }
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        for seed in [0, 1, 13, 4096] {
            assert_eq!(plan_for_seed(seed), plan_for_seed(seed));
        }
    }

    #[test]
    fn seeds_yield_distinct_plans() {
        // Not a tautology — a broken generator that ignores its RNG
        // would collapse every seed onto one plan.
        let distinct: std::collections::BTreeSet<String> =
            (0..16).map(|s| plan_for_seed(s).summary()).collect();
        assert!(distinct.len() > 8, "only {} distinct plans", distinct.len());
    }

    #[test]
    fn pool_covers_every_product_and_fault_kind() {
        let mut products = std::collections::BTreeSet::new();
        let mut flapping = false;
        let mut faulted = false;
        for seed in 0..64 {
            let plan = plan_for_seed(seed);
            for d in &plan.deployments {
                products.insert(d.product);
                flapping |= d.flapping.is_some();
            }
            faulted |= !matches!(plan.fault, FaultPlan::Clean);
        }
        assert_eq!(products.len(), 4, "{products:?}");
        assert!(flapping, "no flapping deployment in 64 seeds");
        assert!(faulted, "no faulted plan in 64 seeds");
    }
}
