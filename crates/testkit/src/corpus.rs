//! Shodan-scale synthetic scan corpora for generated worlds.
//!
//! [`ScenarioPlan::corpus_scale`] asks for a banner corpus of a given
//! size (10⁴/10⁵/10⁶ are the intended rungs) riding along with the
//! simulated world. The corpus is minted by the scanner crate's
//! deterministic synthesizer, but drawn over the testkit's own
//! [`COUNTRY_POOL`] so keyword × ccTLD query scopes line up with the
//! countries the generated world registers — including the multi-label
//! ccTLDs (`com.tr`, `co.uk`) that exercise the index's dot-suffix
//! posting lists.
//!
//! Everything here is a pure function of the plan: same seed and
//! `corpus_scale`, byte-identical records and index.

use filterwatch_scanner::{synth_records_with, ScanIndex, ScanRecord, ShardConfig};

use crate::plan::{ScenarioPlan, COUNTRY_POOL};

/// Base ip for plan corpora, disjoint from the scanner's own default
/// (0x0a…) and churn (0x0b…) ranges so mixed fixtures never collide.
const CORPUS_IP_BASE: u32 = 0x0c00_0000;

/// Mint the plan's synthetic banner corpus: `corpus_scale` records,
/// deterministic in `plan.seed`, countries drawn from [`COUNTRY_POOL`].
/// A zero scale yields the empty corpus.
pub fn synth_corpus(plan: &ScenarioPlan) -> Vec<ScanRecord> {
    let countries: Vec<(&str, &str)> = COUNTRY_POOL
        .iter()
        .map(|&(cc, _, cctld)| (cc, cctld))
        .collect();
    synth_records_with(plan.corpus_scale, plan.seed, CORPUS_IP_BASE, &countries)
}

/// Mint the corpus and build it into a sharded scan index in one step.
pub fn synth_corpus_index(plan: &ScenarioPlan, shards: usize) -> ScanIndex {
    ScanIndex::build_with(synth_corpus(plan), ShardConfig { shards })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::plan_for_seed;

    fn scaled(seed: u64, scale: usize) -> ScenarioPlan {
        let mut plan = plan_for_seed(seed);
        plan.corpus_scale = scale;
        plan.validate().unwrap();
        plan
    }

    #[test]
    fn zero_scale_is_empty() {
        assert!(synth_corpus(&plan_for_seed(3)).is_empty());
    }

    #[test]
    fn corpus_is_deterministic_in_the_plan() {
        let a = synth_corpus(&scaled(11, 500));
        let b = synth_corpus(&scaled(11, 500));
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn different_seeds_yield_different_corpora() {
        assert_ne!(synth_corpus(&scaled(1, 200)), synth_corpus(&scaled(2, 200)));
    }

    #[test]
    fn countries_come_from_the_testkit_pool() {
        let corpus = synth_corpus(&scaled(5, 400));
        let pool: std::collections::BTreeSet<&str> =
            COUNTRY_POOL.iter().map(|&(cc, _, _)| cc).collect();
        let mut multi_label = false;
        for r in &corpus {
            let cc = r.country.as_deref().expect("synth records carry a country");
            assert!(pool.contains(cc), "{cc} not in COUNTRY_POOL");
            multi_label |= r
                .hostnames
                .iter()
                .any(|h| h.ends_with(".com.tr") || h.ends_with(".co.uk"));
        }
        assert!(multi_label, "no multi-label ccTLD hostname in 400 records");
    }

    #[test]
    fn index_matches_a_by_hand_build() {
        let plan = scaled(9, 300);
        let index = synth_corpus_index(&plan, 8);
        let by_hand = ScanIndex::build(synth_corpus(&plan));
        assert_eq!(index.to_dump(), by_hand.to_dump());
        assert_eq!(index.len(), 300);
        assert_eq!(index.shard_count(), 8);
    }
}
