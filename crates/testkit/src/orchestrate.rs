//! Generated-world campaigns under the orchestrator.
//!
//! [`GeneratedDriver`] adapts the [`runner`](crate::runner) stage
//! functions to the orchestrator's
//! [`StageDriver`](filterwatch_orchestrator::StageDriver) surface, so a
//! generated campaign runs as a crash-safe resumable state machine: the
//! scheduler owns the transitions and the checkpoints, the driver owns
//! the world. A `generated:<seed>` descriptor rebuilds the plan through
//! [`plan_for_seed`], which keeps checkpoints self-contained — the
//! whole campaign identity is one short wire line.
//!
//! The crash-recovery battery (`tests/crashrecovery.rs`) kills one of
//! these at every checkpoint boundary across the seed battery and
//! byte-compares the resumed [`GeneratedReport::comparable_text`]
//! against the uninterrupted run's.

use filterwatch_measure::{MeasurementQuality, ResilienceConfig};
use filterwatch_orchestrator::{
    replay, CampaignCheckpoint, CampaignDescriptor, CampaignKind, CampaignStatus, CaseCkpt,
    Orchestrator, Outcome, ResumeError, StageDriver, StageState, StepOutcome,
};

use crate::runner::{
    baseline_stage, identify_stage, retest_stage, submit_stage, sweep_stage, CaseInFlight,
    CaseOutcome, GeneratedReport, RunConfig, WAIT_DAYS,
};
use crate::strategies::plan_for_seed;
use crate::worldgen::{build_world, GeneratedWorld};

/// [`StageDriver`] over a generated world: the testkit's counterpart
/// to the orchestrator's `PaperDriver`.
pub struct GeneratedDriver {
    descriptor: CampaignDescriptor,
    config: RunConfig,
    gw: GeneratedWorld,
    topology_digest: u64,
    identify_table: String,
    list_lines: Vec<String>,
    cases: Vec<CaseOutcome>,
    current: Option<CaseInFlight>,
}

impl GeneratedDriver {
    /// Rebuild the descriptor's generated world. Fails unless the
    /// descriptor is `generated:<seed>`.
    pub fn new(descriptor: CampaignDescriptor) -> Result<GeneratedDriver, String> {
        if descriptor.kind != CampaignKind::Generated {
            return Err(format!(
                "not a generated-campaign descriptor: {}",
                descriptor.to_line()
            ));
        }
        let plan = plan_for_seed(descriptor.seed);
        let mut config = RunConfig::for_plan(&plan);
        if descriptor.chaos {
            config.resilience = ResilienceConfig::chaos();
        }
        let gw = build_world(&plan);
        let topology_digest = gw.net.topology_digest();
        Ok(GeneratedDriver {
            descriptor,
            config,
            gw,
            topology_digest,
            identify_table: String::new(),
            list_lines: Vec::new(),
            cases: Vec::new(),
            current: None,
        })
    }

    /// Assemble the report. Call only once the orchestrator has driven
    /// the campaign to `Done`.
    pub fn into_report(self) -> GeneratedReport {
        GeneratedReport {
            plan: self.gw.plan.clone(),
            topology_digest: self.topology_digest,
            identify_table: self.identify_table,
            list_lines: self.list_lines,
            cases: self.cases,
        }
    }
}

impl StageDriver for GeneratedDriver {
    fn descriptor(&self) -> &CampaignDescriptor {
        &self.descriptor
    }

    fn case_count(&self) -> usize {
        self.gw.plan.deployments.len()
    }

    fn completed_cases(&self) -> usize {
        self.cases.len()
    }

    fn now_secs(&self) -> u64 {
        self.gw.net.now().secs()
    }

    fn execute(&mut self, stage: &StageState) -> StepOutcome {
        match *stage {
            StageState::Identify => {
                self.identify_table = identify_stage(&self.gw);
                self.list_lines = sweep_stage(&self.gw, &self.config);
            }
            StageState::Baseline { case } => {
                assert!(self.current.is_none(), "a case is already in flight");
                self.current = Some(baseline_stage(&mut self.gw, case));
            }
            StageState::Submit { .. } => {
                let mut case = self.current.take().expect("baseline stage first");
                submit_stage(&mut self.gw, &mut case);
                self.current = Some(case);
            }
            StageState::Retest { .. } => {
                let case = self.current.take().expect("submit stage first");
                self.cases.push(retest_stage(&self.gw, &self.config, case));
            }
            // Generated campaigns have no characterization stage; the
            // scheduler still visits the boundary so checkpoints share
            // one canonical sequence with paper campaigns.
            StageState::Characterize => {}
            // The scheduler never executes these.
            StageState::Wait { .. } | StageState::Done => {}
        }
        StepOutcome::Complete
    }

    fn wait_deadline_secs(&mut self, _case: usize) -> u64 {
        self.gw.net.now().plus_days(WAIT_DAYS).secs()
    }

    fn advance_to_secs(&mut self, deadline_secs: u64) {
        let now = self.gw.net.now().secs();
        if deadline_secs > now {
            self.gw.net.advance_secs(deadline_secs - now);
        }
    }

    fn case_checkpoint(&self, case: usize) -> CaseCkpt {
        let c = &self.cases[case];
        CaseCkpt {
            index: case,
            // Generated campaigns don't pre-verify; the sweep covers
            // the pre-submission picture instead.
            accessible_before: None,
            submissions_accepted: c.submissions_accepted,
            submitted_blocked: c.submitted_blocked,
            holdout_blocked: c.holdout_blocked,
            retest_inconclusive: c.retest_inconclusive,
            confirmed: c.confirmed,
            attributed: vec![c.product.slug().to_string()],
            quality: MeasurementQuality::default(),
        }
    }

    fn stage_vantage(&self, stage: &StageState) -> Option<String> {
        stage.case().map(|c| format!("dep{c}"))
    }
}

/// Run one generated campaign under the orchestrator, uninterrupted,
/// returning its report plus every checkpoint line the run wrote.
pub fn run_generated_campaign(
    descriptor: CampaignDescriptor,
) -> Result<(GeneratedReport, Vec<String>), String> {
    let driver = GeneratedDriver::new(descriptor)?;
    let mut orch = Orchestrator::new(vec![driver]);
    match orch.run() {
        Outcome::Complete => {}
        Outcome::Crashed { at_checkpoint } => {
            return Err(format!(
                "unexpected crash at checkpoint {at_checkpoint} with no crash plan"
            ))
        }
    }
    let checkpoints = orch.checkpoints(0).to_vec();
    let mut drivers = orch.into_drivers();
    match drivers.pop() {
        Some((driver, CampaignStatus::Done)) => Ok((driver.into_report(), checkpoints)),
        Some((_, status)) => Err(format!("campaign did not finish: {status:?}")),
        None => Err("no campaign scheduled".to_string()),
    }
}

/// Restore a generated campaign from a checkpoint line and run it to
/// completion. The resumed [`GeneratedReport::comparable_text`] is
/// byte-identical to the uninterrupted run's.
pub fn resume_generated_campaign(checkpoint_line: &str) -> Result<GeneratedReport, ResumeError> {
    let ckpt = CampaignCheckpoint::parse_line(checkpoint_line).map_err(ResumeError::Parse)?;
    let mut driver = GeneratedDriver::new(ckpt.descriptor.clone()).map_err(ResumeError::Parse)?;
    let stage = replay(&mut driver, &ckpt)?;
    let mut orch = Orchestrator::with_stages(vec![(driver, stage)]);
    match orch.run() {
        Outcome::Complete => {}
        Outcome::Crashed { at_checkpoint } => {
            return Err(ResumeError::Parse(format!(
                "unexpected crash at checkpoint {at_checkpoint} with no crash plan"
            )))
        }
    }
    let mut drivers = orch.into_drivers();
    match drivers.pop() {
        Some((driver, CampaignStatus::Done)) => Ok(driver.into_report()),
        Some((_, status)) => Err(ResumeError::Drift(format!(
            "resumed campaign did not finish: {status:?}"
        ))),
        None => Err(ResumeError::Drift("no campaign scheduled".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_campaign;

    #[test]
    fn generated_descriptors_only() {
        let err = GeneratedDriver::new(CampaignDescriptor::new(CampaignKind::Demo, 5));
        assert!(err.is_err());
    }

    #[test]
    fn orchestrated_run_matches_linear_runner() {
        let seed = 3;
        let descriptor = CampaignDescriptor::new(CampaignKind::Generated, seed);
        let (report, checkpoints) = run_generated_campaign(descriptor).expect("generated run");
        let linear = run_campaign(&plan_for_seed(seed));
        assert_eq!(report.stable_text(), linear.stable_text());
        // 1 initial + identify→baseline + 4 per case + characterize→done.
        let deployments = plan_for_seed(seed).deployments.len();
        assert_eq!(checkpoints.len(), 3 + 4 * deployments);
    }
}
