//! Multi-seed differential runner with automatic failure minimization.
//!
//! For every seed the runner generates a scenario and re-runs it under
//! configurations that must not change any verdict — serial vs parallel
//! keyword search, incremental delta ingest vs a from-scratch index
//! build, telemetry attached vs detached, a zero-rate fault profile vs
//! none at all — and byte-compares the stable renderings.
//! When a check fails, [`minimize`] greedily walks the plan's shrink
//! candidates to the smallest scenario still reproducing the
//! divergence, which is what gets reported.

use filterwatch_core::identify::IdentifyPipeline;
use filterwatch_scanner::{keywords, ScanEngine, ScanIndex};

use filterwatch_netsim::FetchPath;

use crate::plan::{FaultPlan, ScenarioPlan};
use crate::runner::{run_campaign_forensic, run_campaign_with, RunConfig};
use crate::strategies::plan_for_seed;
use crate::worldgen::build_world;

/// A named divergence check: `Err(detail)` when the two configurations
/// disagree on a plan.
pub type Check = (&'static str, fn(&ScenarioPlan) -> Result<(), String>);

/// One reported divergence.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The seed whose generated plan diverged.
    pub seed: u64,
    /// The check that failed.
    pub check: &'static str,
    /// What differed, on the *minimized* plan.
    pub detail: String,
    /// The smallest plan still reproducing the divergence.
    pub minimized: ScenarioPlan,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {} / {}: {}\nminimal scenario: {}",
            self.seed,
            self.check,
            self.detail,
            self.minimized.summary()
        )
    }
}

fn diff_or_ok(name: &str, a: &str, b: &str) -> Result<(), String> {
    if a == b {
        Ok(())
    } else {
        Err(format!("{name}: {}", crate::invariants::first_diff(a, b)))
    }
}

/// Serial and parallel keyword sweeps must produce identical hits.
pub fn check_serial_vs_parallel(plan: &ScenarioPlan) -> Result<(), String> {
    let gw = build_world(plan);
    let index = ScanEngine::new().scan(&gw.net);
    let pairs: Vec<(String, String)> = gw
        .net
        .registry()
        .countries()
        .map(|c| (c.code.as_str().to_string(), c.cctld.clone()))
        .collect();
    let scope = || pairs.iter().map(|(cc, tld)| (cc.as_str(), tld.as_str()));
    let serial = index.search_products_with_threads(keywords::KEYWORD_TABLE, scope(), 1);
    let parallel = index.search_products_with_threads(keywords::KEYWORD_TABLE, scope(), 8);
    diff_or_ok(
        "serial vs parallel sweep",
        &format!("{serial:?}"),
        &format!("{parallel:?}"),
    )
}

/// Attaching a telemetry collector must not change any verdict.
pub fn check_telemetry_transparency(plan: &ScenarioPlan) -> Result<(), String> {
    let mut config = RunConfig::for_plan(plan);
    config.telemetry = false;
    let silent = run_campaign_with(plan, &config).comparable_text();
    config.telemetry = true;
    let observed = run_campaign_with(plan, &config).comparable_text();
    diff_or_ok("telemetry off vs on", &silent, &observed)
}

/// An incrementally built index — a head build plus one delta carrying
/// the tail — must be indistinguishable from a from-scratch build over
/// every record: same identify installations table, same batched
/// product hits.
pub fn check_delta_vs_rebuild(plan: &ScenarioPlan) -> Result<(), String> {
    let gw = build_world(plan);
    let scratch = ScanEngine::new().scan(&gw.net);
    let records = scratch.records().to_vec();
    let split = records.len() / 2;
    let mut delta = ScanIndex::build(records[..split].to_vec());
    delta.apply_delta(records[split..].to_vec(), &[]);

    let pipeline = IdentifyPipeline::new();
    let a = pipeline
        .run_on_index(&gw.net, &scratch)
        .render_installations();
    let b = pipeline
        .run_on_index(&gw.net, &delta)
        .render_installations();
    diff_or_ok("scratch vs delta-built installations", &a, &b)?;

    let pairs: Vec<(String, String)> = gw
        .net
        .registry()
        .countries()
        .map(|c| (c.code.as_str().to_string(), c.cctld.clone()))
        .collect();
    let scope = || pairs.iter().map(|(cc, tld)| (cc.as_str(), tld.as_str()));
    let sa = scratch.search_products(keywords::KEYWORD_TABLE, scope());
    let sb = delta.search_products(keywords::KEYWORD_TABLE, scope());
    diff_or_ok(
        "scratch vs delta-built product hits",
        &format!("{sa:?}"),
        &format!("{sb:?}"),
    )
}

/// The event kernel and the direct-call oracle must agree on every
/// observation surface — report, flow log, and trace forest — byte for
/// byte.
pub fn check_direct_vs_event(plan: &ScenarioPlan) -> Result<(), String> {
    let mut config = RunConfig::for_plan(plan);
    config.fetch_path = FetchPath::Event;
    let event = run_campaign_forensic(plan, &config);
    config.fetch_path = FetchPath::DirectReference;
    let direct = run_campaign_forensic(plan, &config);
    diff_or_ok(
        "event vs direct report",
        &event.report.stable_text(),
        &direct.report.stable_text(),
    )?;
    diff_or_ok(
        "event vs direct flow log",
        &event.flow_lines.join("\n"),
        &direct.flow_lines.join("\n"),
    )?;
    diff_or_ok(
        "event vs direct trace forest",
        &event.trace_forest,
        &direct.trace_forest,
    )
}

/// A zero-rate fault profile must behave exactly like no profile.
pub fn check_zero_rate_faults(plan: &ScenarioPlan) -> Result<(), String> {
    let mut clean = plan.clone();
    clean.fault = FaultPlan::Clean;
    let mut zero = plan.clone();
    zero.fault = FaultPlan::Lossy { drop_prob: 0.0 };
    // Same resilience on both sides: the profile under test is the
    // fault injection, not the retry machinery.
    let config = RunConfig::for_plan(&clean);
    let a = run_campaign_with(&clean, &config).comparable_text();
    let b = run_campaign_with(&zero, &config).comparable_text();
    diff_or_ok("clean vs zero-rate faults", &a, &b)
}

/// The default check battery.
pub fn checks() -> Vec<Check> {
    vec![
        ("serial-vs-parallel", check_serial_vs_parallel),
        ("delta-vs-rebuild", check_delta_vs_rebuild),
        ("telemetry-transparency", check_telemetry_transparency),
        ("zero-rate-faults", check_zero_rate_faults),
        ("direct-vs-event", check_direct_vs_event),
    ]
}

/// Greedily minimize a failing plan: repeatedly adopt the first shrink
/// candidate that still fails `check`, until the plan is 1-minimal
/// (every further shrink passes). Returns the minimal plan and the
/// failure detail observed on it.
///
/// # Panics
/// When `check` passes on the input plan — there is nothing to
/// minimize.
pub fn minimize(
    plan: &ScenarioPlan,
    check: &dyn Fn(&ScenarioPlan) -> Result<(), String>,
) -> (ScenarioPlan, String) {
    let mut current = plan.clone();
    let mut detail = match check(&current) {
        Err(e) => e,
        Ok(()) => panic!("minimize called on a passing plan"),
    };
    loop {
        let mut progressed = false;
        for candidate in current.shrink_candidates() {
            if let Err(e) = check(&candidate) {
                current = candidate;
                detail = e;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return (current, detail);
        }
    }
}

/// Run the default battery on one seed's generated plan, minimizing
/// every divergence found.
pub fn run_seed(seed: u64) -> Vec<Divergence> {
    let plan = plan_for_seed(seed);
    let mut out = Vec::new();
    for (name, check) in checks() {
        if check(&plan).is_err() {
            let (minimized, detail) = minimize(&plan, &|p| check(p));
            out.push(Divergence {
                seed,
                check: name,
                detail,
                minimized,
            });
        }
    }
    out
}

/// Sweep many seeds; returns every (minimized) divergence.
pub fn run(seeds: &[u64]) -> Vec<Divergence> {
    seeds.iter().flat_map(|&s| run_seed(s)).collect()
}

/// Seeds to sweep: the `FILTERWATCH_SEEDS` environment variable as a
/// comma-separated list, or the given default.
pub fn seeds_from_env(default: &[u64]) -> Vec<u64> {
    match std::env::var("FILTERWATCH_SEEDS") {
        Ok(raw) => raw
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) => default.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_passes_on_one_seed() {
        assert!(run_seed(0).is_empty());
    }

    #[test]
    fn minimize_reaches_a_one_minimal_plan() {
        // A synthetic failure: "fails whenever any deployment exists".
        let check = |p: &ScenarioPlan| -> Result<(), String> {
            if p.deployments.is_empty() {
                Ok(())
            } else {
                Err("has a deployment".into())
            }
        };
        let plan = plan_for_seed(4);
        assert!(!plan.deployments.is_empty());
        let (min, detail) = minimize(&plan, &check);
        assert_eq!(min.deployments.len(), 1);
        assert_eq!(min.bystanders, 0);
        assert!(matches!(min.fault, FaultPlan::Clean));
        assert_eq!(min.urls_per_category, 1);
        let d = &min.deployments[0];
        assert_eq!((d.n_sites, d.n_submit), (2, 1));
        assert!(d.flapping.is_none());
        assert_eq!(detail, "has a deployment");
        // 1-minimal: every further shrink passes.
        assert!(min.shrink_candidates().iter().all(|c| check(c).is_ok()));
    }

    #[test]
    fn seeds_env_parsing() {
        // No env set in tests: default flows through.
        assert_eq!(seeds_from_env(&[1, 2]), vec![1, 2]);
    }
}
