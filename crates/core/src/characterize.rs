//! Stage 3: characterizing censored content (§5, Table 4).
//!
//! "The types of content found blocked by URL filters was determined by
//! querying lists of URLs through the measurement client. Two lists of
//! URLs were tested in each country; a 'global list' ... and a 'local
//! list' ... Manual analysis identified regular expressions
//! corresponding to the vendors' block pages and automated analysis
//! identified all URLs which matched a given block page regular
//! expression."

use std::collections::BTreeMap;

use filterwatch_http::Url;
use filterwatch_measure::MeasurementQuality;
use filterwatch_urllists::{Category, TestList};

use crate::report::TextTable;
use crate::world::World;

/// The six protected-content columns of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Table4Column {
    /// Independent media / media freedom.
    MediaFreedom,
    /// Human rights content.
    HumanRights,
    /// Political reform and opposition.
    PoliticalReform,
    /// Non-pornographic gay and lesbian content.
    Lgbt,
    /// Religious criticism.
    ReligiousCriticism,
    /// Minority groups and religions.
    MinorityGroupsAndReligions,
}

impl Table4Column {
    /// The columns in table order.
    pub const ALL: [Table4Column; 6] = [
        Table4Column::MediaFreedom,
        Table4Column::HumanRights,
        Table4Column::PoliticalReform,
        Table4Column::Lgbt,
        Table4Column::ReligiousCriticism,
        Table4Column::MinorityGroupsAndReligions,
    ];

    /// Column header.
    pub fn name(&self) -> &'static str {
        match self {
            Table4Column::MediaFreedom => "Media Freedom",
            Table4Column::HumanRights => "Human Rights",
            Table4Column::PoliticalReform => "Political Reform",
            Table4Column::Lgbt => "LGBT",
            Table4Column::ReligiousCriticism => "Religious Criticism",
            Table4Column::MinorityGroupsAndReligions => "Minority Groups and Religions",
        }
    }

    /// Which ONI categories roll up into this column.
    pub fn categories(&self) -> &'static [Category] {
        match self {
            Table4Column::MediaFreedom => &[Category::MediaFreedom],
            Table4Column::HumanRights => &[Category::HumanRights, Category::WomensRights],
            Table4Column::PoliticalReform => &[
                Category::PoliticalReform,
                Category::OppositionParties,
                Category::CriticismOfGovernment,
            ],
            Table4Column::Lgbt => &[Category::Lgbt],
            Table4Column::ReligiousCriticism => &[Category::ReligiousCriticism],
            Table4Column::MinorityGroupsAndReligions => {
                &[Category::MinorityGroups, Category::MinorityFaiths]
            }
        }
    }
}

/// The characterization of one network.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// Network name.
    pub isp: String,
    /// Country code of the network.
    pub country: String,
    /// AS number of the network.
    pub asn: u32,
    /// Blocked / tested counts per ONI category, over global+local lists.
    pub per_category: BTreeMap<Category, (usize, usize)>,
    /// Products attributed by block-page signatures (deduplicated).
    pub attributed_products: Vec<String>,
    /// Total URLs tested.
    pub urls_tested: usize,
    /// Total URLs blocked.
    pub urls_blocked: usize,
    /// URLs whose every run came back `Inconclusive` (quorum
    /// disagreement or breaker skips); zero on clean paths.
    pub urls_inconclusive: usize,
    /// Measurement-quality counters the characterization client
    /// accumulated (retries, breaker trips, quorum trials).
    pub quality: MeasurementQuality,
}

impl Characterization {
    /// Whether a Table 4 column is marked (any URL in its categories
    /// blocked).
    pub fn column_marked(&self, col: Table4Column) -> bool {
        col.categories().iter().any(|cat| {
            self.per_category
                .get(cat)
                .map(|&(blocked, _)| blocked > 0)
                .unwrap_or(false)
        })
    }

    /// The marked columns, in table order.
    pub fn marked_columns(&self) -> Vec<Table4Column> {
        Table4Column::ALL
            .into_iter()
            .filter(|&c| self.column_marked(c))
            .collect()
    }
}

/// Characterize what one ISP blocks: run the global list plus the ISP
/// country's local list through the measurement client, `runs` times.
///
/// A URL counts as blocked if any run blocks it — the paper repeats
/// tests because license-limited deployments filter intermittently
/// (§4.4 Challenge 2).
pub fn characterize(
    world: &World,
    isp: &str,
    per_category: usize,
    runs: usize,
) -> Characterization {
    let network = world
        .net
        .network_by_name(isp)
        .unwrap_or_else(|| panic!("unknown ISP {isp:?}"));
    let country = network.country.as_str().to_string();
    let asn = network.asn.0;
    let telemetry = world.net.telemetry().clone();
    let span = telemetry.span_start(
        filterwatch_telemetry::stage::CHARACTERIZE,
        isp,
        world.net.now().secs(),
    );

    let client = world.client(isp);
    let mut urls: Vec<(Url, Category)> = Vec::new();
    for list in [
        TestList::global(per_category),
        TestList::local(&country, per_category),
    ] {
        for u in &list.urls {
            urls.push((Url::parse(&u.url).expect("list URL"), u.category));
        }
    }

    let mut per_category_counts: BTreeMap<Category, (usize, usize)> = BTreeMap::new();
    let mut attributed: Vec<String> = Vec::new();
    let mut urls_blocked = 0;
    let mut urls_inconclusive = 0;
    let urls_tested = urls.len();
    for (url, cat) in &urls {
        let mut blocked = false;
        let mut conclusive_runs = 0;
        for _ in 0..runs.max(1) {
            let v = client.test_url(&world.net, url);
            if !v.verdict.is_inconclusive() {
                conclusive_runs += 1;
            }
            if v.verdict.is_blocked() {
                blocked = true;
                if let Some(p) = v.verdict.blocked_by() {
                    if !attributed.contains(&p.to_string()) {
                        attributed.push(p.to_string());
                    }
                }
            }
        }
        let entry = per_category_counts.entry(*cat).or_insert((0, 0));
        entry.1 += 1;
        if blocked {
            entry.0 += 1;
            urls_blocked += 1;
        } else if conclusive_runs == 0 {
            urls_inconclusive += 1;
        }
    }

    if telemetry.is_enabled() {
        telemetry.counter_add("characterize.urls_tested", isp, urls_tested as u64);
        telemetry.counter_add("characterize.urls_blocked", isp, urls_blocked as u64);
        telemetry.event(
            world.net.now().secs(),
            "characterize.done",
            &[
                ("isp", isp),
                ("tested", &urls_tested.to_string()),
                ("blocked", &urls_blocked.to_string()),
            ],
        );
    }
    telemetry.span_end(span, world.net.now().secs());

    Characterization {
        isp: isp.to_string(),
        country,
        asn,
        per_category: per_category_counts,
        attributed_products: attributed,
        urls_tested,
        urls_blocked,
        urls_inconclusive,
        quality: client.quality(),
    }
}

/// The four confirmed networks of Table 4, with their attributed product.
pub fn table4_networks() -> Vec<(&'static str, &'static str)> {
    vec![
        ("etisalat", "McAfee SmartFilter"),
        ("yemennet", "Netsweeper"),
        ("du", "Netsweeper"),
        ("ooredoo", "Netsweeper"),
    ]
}

/// Run the Table 4 characterization over the confirmed networks.
pub fn run_table4(world: &World, per_category: usize) -> Vec<(String, Characterization)> {
    table4_networks()
        .into_iter()
        .map(|(isp, product)| {
            (
                product.to_string(),
                characterize(world, isp, per_category, 3),
            )
        })
        .collect()
}

/// Render Table 4 as text (`x` marks a blocked theme).
pub fn render_table4(rows: &[(String, Characterization)]) -> String {
    let mut headers = vec!["Product".to_string(), "Where".to_string()];
    headers.extend(Table4Column::ALL.iter().map(|c| c.name().to_string()));
    let mut table = TextTable::new(headers);
    for (product, ch) in rows {
        let mut cells = vec![product.clone(), format!("{} (AS {})", ch.country, ch.asn)];
        for col in Table4Column::ALL {
            cells.push(if ch.column_marked(col) {
                "x".into()
            } else {
                String::new()
            });
        }
        table.row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn columns_cover_six_themes() {
        assert_eq!(Table4Column::ALL.len(), 6);
        for col in Table4Column::ALL {
            assert!(!col.categories().is_empty());
        }
    }

    #[test]
    fn etisalat_blocks_protected_content() {
        let w = World::paper(1);
        let ch = characterize(&w, "etisalat", 1, 1);
        assert!(ch.column_marked(Table4Column::MediaFreedom), "{ch:?}");
        assert!(ch.column_marked(Table4Column::Lgbt));
        assert!(ch.column_marked(Table4Column::PoliticalReform));
        assert!(ch.attributed_products.contains(&"smartfilter".to_string()));
        assert!(ch.urls_blocked > 0);
    }

    #[test]
    fn yemennet_blocks_media_rights_reform_via_custom_denies() {
        let w = World::paper(1);
        let ch = characterize(&w, "yemennet", 1, 3);
        assert!(ch.column_marked(Table4Column::MediaFreedom), "{ch:?}");
        assert!(ch.column_marked(Table4Column::HumanRights));
        assert!(ch.column_marked(Table4Column::PoliticalReform));
        // Yemen's policy does not target LGBT or religious criticism.
        assert!(!ch.column_marked(Table4Column::Lgbt));
    }

    #[test]
    fn ooredoo_blocks_lgbt_and_rights() {
        let w = World::paper(1);
        let ch = characterize(&w, "ooredoo", 1, 1);
        assert!(ch.column_marked(Table4Column::Lgbt), "{ch:?}");
        assert!(ch.column_marked(Table4Column::HumanRights));
        assert!(ch.attributed_products.contains(&"netsweeper".to_string()));
    }

    #[test]
    fn table4_every_theme_blocked_somewhere() {
        let w = World::paper(1);
        let rows = run_table4(&w, 1);
        assert_eq!(rows.len(), 4);
        for col in Table4Column::ALL {
            assert!(
                rows.iter().any(|(_, ch)| ch.column_marked(col)),
                "no network blocks {}",
                col.name()
            );
        }
        let text = render_table4(&rows);
        assert!(text.contains("Media Freedom"));
        assert!(text.contains("AE (AS 5384)"));
    }
}
