//! One-call measurement campaigns.
//!
//! A downstream user of the methodology wants the paper's full loop —
//! identify everywhere, confirm in the ISPs where a field tester exists,
//! characterize whatever confirmed — as a single call that produces a
//! publishable report. [`Campaign`] is that entry point; the staged
//! functions in [`identify`](crate::identify), [`confirm`](crate::confirm)
//! and [`characterize`](crate::characterize) remain available for
//! bespoke studies.

use filterwatch_products::ProductKind;
use filterwatch_telemetry::{stage, Snapshot, TelemetryHandle};

use crate::characterize::{characterize, Characterization, Table4Column};
use crate::confirm::{run_case_study, table3_specs, CaseStudyResult, CaseStudySpec};
use crate::identify::{IdentificationReport, IdentifyPipeline};
use crate::world::{World, WorldOptions};

/// A configured campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// World construction options.
    pub options: WorldOptions,
    /// Confirmation case studies to run, in order.
    pub confirmations: Vec<CaseStudySpec>,
    /// URLs per category for characterization lists.
    pub list_urls_per_category: usize,
    /// Characterization repetitions (ride out flaky deployments).
    pub characterize_runs: usize,
}

impl Campaign {
    /// The paper's campaign: the ten Table 3 case studies, Table 4
    /// characterization of whatever confirms.
    pub fn standard(seed: u64) -> Self {
        Campaign {
            options: WorldOptions {
                seed,
                ..WorldOptions::default()
            },
            confirmations: table3_specs(),
            list_urls_per_category: 2,
            characterize_runs: 3,
        }
    }

    /// Run the whole campaign.
    pub fn run(self) -> CampaignReport {
        let mut world = World::build(self.options.clone());

        // Campaigns are the auditable entry point, so they always record
        // telemetry; the staged functions inherit whatever handle the
        // world's Internet carries (disabled by default).
        let telemetry = TelemetryHandle::enabled();
        world.net.set_telemetry(telemetry.clone());
        let campaign_span =
            telemetry.span_start(stage::CAMPAIGN, "standard campaign", world.net.now().secs());

        // Stage 1: identify.
        let identification = IdentifyPipeline::new().run(&world.net);

        // Stage 2: confirm.
        let confirmations: Vec<CaseStudyResult> = self
            .confirmations
            .iter()
            .map(|spec| run_case_study(&mut world, spec))
            .collect();

        // Stage 3: characterize every ISP where some product confirmed.
        let mut confirmed_isps: Vec<(String, ProductKind)> = Vec::new();
        for r in &confirmations {
            if r.confirmed && !confirmed_isps.iter().any(|(isp, _)| *isp == r.spec.isp) {
                confirmed_isps.push((r.spec.isp.clone(), r.spec.product));
            }
        }
        let characterizations: Vec<(ProductKind, Characterization)> = confirmed_isps
            .iter()
            .map(|(isp, product)| {
                (
                    *product,
                    characterize(
                        &world,
                        isp,
                        self.list_urls_per_category,
                        self.characterize_runs,
                    ),
                )
            })
            .collect();

        telemetry.span_end(campaign_span, world.net.now().secs());

        CampaignReport {
            seed: self.options.seed,
            finished_at_day: world.net.now().days(),
            identification,
            confirmations,
            characterizations,
            telemetry: telemetry.snapshot(),
        }
    }
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// World seed the campaign ran under.
    pub seed: u64,
    /// Virtual day the campaign finished on.
    pub finished_at_day: u64,
    /// Stage 1 output.
    pub identification: IdentificationReport,
    /// Stage 2 outputs, in spec order.
    pub confirmations: Vec<CaseStudyResult>,
    /// Stage 3 outputs for each confirmed ISP.
    pub characterizations: Vec<(ProductKind, Characterization)>,
    /// Everything the campaign's telemetry collector recorded: spans per
    /// stage, counters (per-vendor verdicts among them), histograms and
    /// the event log.
    pub telemetry: Snapshot,
}

impl CampaignReport {
    /// Number of confirmed censorship deployments.
    pub fn confirmed_count(&self) -> usize {
        self.confirmations.iter().filter(|r| r.confirmed).count()
    }

    /// Render the whole campaign as a markdown report.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# filterwatch campaign report\n\nseed {} — finished on virtual day {}\n\n",
            self.seed, self.finished_at_day
        ));

        out.push_str("## Identified installations\n\n");
        out.push_str("| Product | Country | ASN | AS name | IP |\n|---|---|---|---|---|\n");
        for inst in &self.identification.installations {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                inst.product.name(),
                inst.country,
                inst.asn.map(|a| format!("AS{a}")).unwrap_or_default(),
                inst.as_name,
                inst.ip
            ));
        }

        out.push_str("\n## Confirmation case studies\n\n");
        out.push_str(
            "| Case | Date | Submitted | Blocked | Holdout blocked | Confirmed |\n|---|---|---|---|---|---|\n",
        );
        for r in &self.confirmations {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                r.spec.label,
                r.spec.date,
                r.submitted_of_created(),
                r.blocked_of_submitted(),
                r.holdout_blocked,
                if r.confirmed { "**yes**" } else { "no" }
            ));
        }

        out.push_str("\n## Blocked content themes in confirmed networks\n\n");
        out.push_str("| Product | Network |");
        for col in Table4Column::ALL {
            out.push_str(&format!(" {} |", col.name()));
        }
        out.push_str("\n|---|---|---|---|---|---|---|---|\n");
        for (product, ch) in &self.characterizations {
            out.push_str(&format!(
                "| {} | {} (AS{}) |",
                product.name(),
                ch.country,
                ch.asn
            ));
            for col in Table4Column::ALL {
                out.push_str(if ch.column_marked(col) { " x |" } else { "  |" });
            }
            out.push('\n');
        }

        out.push_str("\n## Telemetry\n\n```text\n");
        out.push_str(&filterwatch_telemetry::render::text_report(&self.telemetry));
        out.push_str("```\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn standard_campaign_reproduces_the_paper() {
        let report = Campaign::standard(DEFAULT_SEED).run();
        assert_eq!(report.confirmations.len(), 10);
        assert_eq!(report.confirmed_count(), 7);
        // Characterization covers the distinct confirmed ISPs:
        // bayanat, nournet, etisalat, ooredoo, du, yemennet.
        assert_eq!(report.characterizations.len(), 6);
        assert!(report.identification.installations.len() >= 30);
        assert!(report.finished_at_day >= 40, "{}", report.finished_at_day);
    }

    #[test]
    fn markdown_report_contains_all_sections() {
        let report = Campaign::standard(DEFAULT_SEED).run();
        let md = report.to_markdown();
        assert!(md.contains("# filterwatch campaign report"));
        assert!(md.contains("## Identified installations"));
        assert!(md.contains("## Confirmation case studies"));
        assert!(md.contains("## Blocked content themes"));
        assert!(md.contains("Netsweeper / Yemen / YemenNet"));
        assert!(md.contains("**yes**"));
        // Markdown tables stay rectangular: every themes row has the
        // right number of columns.
        for line in md
            .lines()
            .filter(|l| l.starts_with("| McAfee") || l.starts_with("| Netsweeper"))
        {
            if line.contains("(AS") {
                assert_eq!(line.matches('|').count(), 9, "{line}");
            }
        }
    }
}
