//! One-call measurement campaigns.
//!
//! A downstream user of the methodology wants the paper's full loop —
//! identify everywhere, confirm in the ISPs where a field tester exists,
//! characterize whatever confirmed — as a single call that produces a
//! publishable report. [`Campaign`] is that entry point; the staged
//! functions in [`identify`](crate::identify), [`confirm`](crate::confirm)
//! and [`characterize`](crate::characterize) remain available for
//! bespoke studies.
//!
//! Chaos campaigns layer two knobs on top: [`Campaign::with_field_faults`]
//! injects a [`FaultProfile`] into every field ISP under test, and
//! [`Campaign::with_resilience`] arms the measurement clients with
//! retries, circuit breakers and quorum verdicts to absorb that noise.
//! The invariant (pinned by the `resilience` integration suite) is that
//! the identify and confirm tables stay byte-identical to the clean run
//! at the same seed — chaos shows up only in the report's measurement
//! quality section.

use filterwatch_measure::{MeasurementQuality, ResilienceConfig};
use filterwatch_netsim::FaultProfile;
use filterwatch_products::ProductKind;
use filterwatch_telemetry::{stage, Snapshot, TelemetryHandle};
use filterwatch_trace::{StepKind, TraceEvent, TraceHandle, TraceMode};

use crate::characterize::{characterize, Characterization, Table4Column};
use crate::confirm::{render_table3, table3_specs, CaseInProgress, CaseStudyResult, CaseStudySpec};
use crate::identify::{IdentificationReport, IdentifyPipeline};
use crate::world::{World, WorldOptions};

/// A configured campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// World construction options.
    pub options: WorldOptions,
    /// Confirmation case studies to run, in order.
    pub confirmations: Vec<CaseStudySpec>,
    /// URLs per category for characterization lists.
    pub list_urls_per_category: usize,
    /// Characterization repetitions (ride out flaky deployments).
    pub characterize_runs: usize,
    /// Resilience configuration for every measurement client the
    /// campaign builds (passthrough by default).
    pub resilience: ResilienceConfig,
    /// Fault profile injected into each field ISP named by the
    /// confirmation specs before measurement starts (`None` = clean).
    pub field_faults: Option<FaultProfile>,
    /// Causal tracing mode ([`TraceMode::Off`] by default). Tracing is
    /// a pure observer — it never draws randomness or moves the clock —
    /// so identify/confirm tables are byte-identical in every mode.
    pub trace: TraceMode,
}

impl Campaign {
    /// The paper's campaign: the ten Table 3 case studies, Table 4
    /// characterization of whatever confirms.
    pub fn standard(seed: u64) -> Self {
        Campaign {
            options: WorldOptions {
                seed,
                ..WorldOptions::default()
            },
            confirmations: table3_specs(),
            list_urls_per_category: 2,
            characterize_runs: 3,
            resilience: ResilienceConfig::default(),
            field_faults: None,
            trace: TraceMode::Off,
        }
    }

    /// A reduced campaign for demos and chaos testing: four Table 3 case
    /// studies (Blue Coat and SmartFilter in the Gulf ISPs plus the two
    /// deterministic Netsweeper deployments) and a single-URL-per-
    /// category characterization. YemenNet is deliberately excluded —
    /// its license-limited deployment *fails open* (an accessible page,
    /// not a transport error), which no retry policy can distinguish
    /// from genuine reachability, so its counts are not stable under
    /// fetch-count changes.
    pub fn demo(seed: u64) -> Self {
        let specs = table3_specs();
        Campaign {
            confirmations: [0, 3, 7, 8].iter().map(|&i| specs[i].clone()).collect(),
            list_urls_per_category: 1,
            characterize_runs: 1,
            ..Campaign::standard(seed)
        }
    }

    /// Builder-style: arm measurement clients with retry/breaker/quorum
    /// behaviour.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Builder-style: inject a fault profile into every field ISP under
    /// test (chaos mode). Pair with [`Campaign::with_resilience`] —
    /// faults without retries will flip verdicts.
    pub fn with_field_faults(mut self, faults: FaultProfile) -> Self {
        self.field_faults = Some(faults);
        self
    }

    /// Builder-style: set the causal tracing mode. The resulting
    /// report carries the trace event log in
    /// [`CampaignReport::trace`].
    pub fn with_trace(mut self, mode: TraceMode) -> Self {
        self.trace = mode;
        self
    }

    /// Run the whole campaign: the thin linear composition of
    /// [`CampaignRun`]'s stage methods. The orchestrator drives the
    /// same methods with `Wait` deadlines serviced by a timer wheel and
    /// a checkpoint written at every stage boundary.
    pub fn run(self) -> CampaignReport {
        let mut run = CampaignRun::begin(self);
        run.identify();
        for i in 0..run.case_count() {
            run.baseline(i);
            run.submit();
            let deadline = run.announce_wait();
            run.advance_to(deadline);
            run.retest();
        }
        run.characterize_confirmed();
        run.finish()
    }
}

/// A campaign in flight, paused between stage boundaries.
///
/// [`CampaignRun::begin`] builds the world and opens the campaign's
/// telemetry/trace scopes; the stage methods (`identify`, then per case
/// `baseline` → `submit` → `announce_wait` → `advance_to` → `retest`,
/// then `characterize_confirmed`) execute one stage each; `finish`
/// closes the scopes and assembles the [`CampaignReport`]. Because the
/// world is a pure function of the seed and stages draw all state from
/// it, replaying the same stage sequence reproduces the same report —
/// the property the orchestrator's checkpoint/restore path rests on.
pub struct CampaignRun {
    campaign: Campaign,
    world: World,
    telemetry: TelemetryHandle,
    tracer: TraceHandle,
    campaign_span: filterwatch_telemetry::SpanId,
    campaign_scope: filterwatch_trace::ScopeId,
    identification: Option<IdentificationReport>,
    confirmations: Vec<CaseStudyResult>,
    current_case: Option<CaseInProgress>,
    characterizations: Vec<(ProductKind, Characterization)>,
}

impl CampaignRun {
    /// Build the world, arm resilience/faults, and open the campaign's
    /// telemetry span and trace scope.
    pub fn begin(campaign: Campaign) -> CampaignRun {
        let mut world = World::build(campaign.options.clone());
        world.resilience = campaign.resilience.clone();
        if let Some(faults) = &campaign.field_faults {
            // Chaos strikes the censoring access networks the campaign
            // measures through; the lab control path stays clean, as the
            // paper's Toronto vantage effectively was.
            let mut isps: Vec<&str> = campaign
                .confirmations
                .iter()
                .map(|s| s.isp.as_str())
                .collect();
            isps.sort_unstable();
            isps.dedup();
            for isp in isps {
                let id = world
                    .net
                    .network_by_name(isp)
                    .unwrap_or_else(|| panic!("unknown ISP {isp:?}"))
                    .id;
                world.net.set_network_faults(id, faults.clone());
            }
        }

        // Campaigns are the auditable entry point, so they always record
        // telemetry; the staged functions inherit whatever handle the
        // world's Internet carries (disabled by default).
        let telemetry = TelemetryHandle::enabled();
        world.net.set_telemetry(telemetry.clone());
        let tracer = TraceHandle::for_mode(campaign.trace, campaign.options.seed);
        world.net.set_tracer(tracer.clone());
        let campaign_span =
            telemetry.span_start(stage::CAMPAIGN, "standard campaign", world.net.now().secs());
        let campaign_scope = if tracer.is_enabled() {
            tracer.open(
                StepKind::Campaign,
                world.net.now().secs(),
                &[("seed", &campaign.options.seed.to_string())],
            )
        } else {
            filterwatch_trace::ScopeId::NONE
        };

        CampaignRun {
            campaign,
            world,
            telemetry,
            tracer,
            campaign_span,
            campaign_scope,
            identification: None,
            confirmations: Vec::new(),
            current_case: None,
            characterizations: Vec::new(),
        }
    }

    /// Stage 1: identify installations across the simulated Internet.
    pub fn identify(&mut self) {
        self.identification = Some(IdentifyPipeline::new().run(&self.world.net));
    }

    /// Number of confirmation case studies this campaign will run.
    pub fn case_count(&self) -> usize {
        self.campaign.confirmations.len()
    }

    /// Completed case-study results so far, in spec order.
    pub fn confirmations(&self) -> &[CaseStudyResult] {
        &self.confirmations
    }

    /// The current virtual-clock time in seconds.
    pub fn now_secs(&self) -> u64 {
        self.world.net.now().secs()
    }

    /// The campaign's trace handle — orchestration observers attach
    /// checkpoint/resume/timer steps through it.
    pub fn tracer(&self) -> &TraceHandle {
        &self.tracer
    }

    /// The campaign's telemetry handle.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// The ISP vantage the given case measures through.
    pub fn case_isp(&self, case: usize) -> &str {
        &self.campaign.confirmations[case].isp
    }

    /// Stage 2a (per case): open the case scopes, create controlled
    /// sites, pre-verify where the ordering allows. Cases must be
    /// driven in spec order.
    pub fn baseline(&mut self, case: usize) {
        assert_eq!(
            case,
            self.confirmations.len(),
            "cases must be driven in order"
        );
        assert!(self.current_case.is_none(), "case already in progress");
        let spec = self.campaign.confirmations[case].clone();
        self.current_case = Some(crate::confirm::begin_case(&mut self.world, &spec));
    }

    /// Stage 2b: submit the chosen subset to the vendor channel.
    pub fn submit(&mut self) {
        let mut case = self.current_case.take().expect("baseline first");
        crate::confirm::submit_case(&mut self.world, &mut case);
        self.current_case = Some(case);
    }

    /// Stage 2c: record the wait and return the absolute virtual-clock
    /// deadline (seconds) at which the retest may run.
    pub fn announce_wait(&mut self) -> u64 {
        let case = self.current_case.as_ref().expect("submit first");
        crate::confirm::announce_wait(&self.world, case)
    }

    /// Advance the world's virtual clock to an absolute deadline
    /// (no-op if already past).
    pub fn advance_to(&mut self, deadline_secs: u64) {
        let now = self.world.net.now().secs();
        if deadline_secs > now {
            self.world.net.advance_secs(deadline_secs - now);
        }
    }

    /// Stage 2d: retest every site and render the case verdict.
    pub fn retest(&mut self) {
        let case = self.current_case.take().expect("announce_wait first");
        let result = crate::confirm::retest_case(&mut self.world, case);
        self.confirmations.push(result);
    }

    /// Stage 3: characterize every ISP where some product confirmed.
    pub fn characterize_confirmed(&mut self) {
        let mut confirmed_isps: Vec<(String, ProductKind)> = Vec::new();
        for r in &self.confirmations {
            if r.confirmed && !confirmed_isps.iter().any(|(isp, _)| *isp == r.spec.isp) {
                confirmed_isps.push((r.spec.isp.clone(), r.spec.product));
            }
        }
        for (isp, product) in &confirmed_isps {
            let scope = if self.tracer.is_enabled() {
                self.tracer.open(
                    StepKind::Stage,
                    self.world.net.now().secs(),
                    &[("name", "characterize"), ("isp", isp)],
                )
            } else {
                filterwatch_trace::ScopeId::NONE
            };
            let ch = characterize(
                &self.world,
                isp,
                self.campaign.list_urls_per_category,
                self.campaign.characterize_runs,
            );
            self.tracer.close(scope, self.world.net.now().secs(), &[]);
            self.characterizations.push((*product, ch));
        }
    }

    /// Close the campaign scopes and assemble the report.
    pub fn finish(self) -> CampaignReport {
        let CampaignRun {
            campaign,
            world,
            telemetry,
            tracer,
            campaign_span,
            campaign_scope,
            identification,
            confirmations,
            current_case: _,
            characterizations,
        } = self;
        tracer.close(campaign_scope, world.net.now().secs(), &[]);
        telemetry.span_end(campaign_span, world.net.now().secs());

        // Roll every stage client's quality counters into one campaign-
        // level view for the report's measurement quality section.
        let mut quality = MeasurementQuality::default();
        for r in &confirmations {
            quality.absorb(&r.quality);
        }
        for (_, ch) in &characterizations {
            quality.absorb(&ch.quality);
        }

        CampaignReport {
            seed: campaign.options.seed,
            finished_at_day: world.net.now().days(),
            identification: identification.expect("identify stage must run before finish"),
            confirmations,
            characterizations,
            quality,
            telemetry: telemetry.snapshot(),
            trace: tracer.snapshot(),
        }
    }
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// World seed the campaign ran under.
    pub seed: u64,
    /// Virtual day the campaign finished on.
    pub finished_at_day: u64,
    /// Stage 1 output.
    pub identification: IdentificationReport,
    /// Stage 2 outputs, in spec order.
    pub confirmations: Vec<CaseStudyResult>,
    /// Stage 3 outputs for each confirmed ISP.
    pub characterizations: Vec<(ProductKind, Characterization)>,
    /// Aggregate measurement quality across every stage client: fetch
    /// attempts, retries, breaker trips/skips, quorum trials and the
    /// inconclusive rate. All zeros on a clean passthrough run.
    pub quality: MeasurementQuality,
    /// Everything the campaign's telemetry collector recorded: spans per
    /// stage, counters (per-vendor verdicts among them), histograms and
    /// the event log.
    pub telemetry: Snapshot,
    /// The causal trace event log (empty unless the campaign ran with
    /// [`Campaign::with_trace`]). Feed it to
    /// `filterwatch_trace::ProvenanceIndex` to explain any verdict.
    pub trace: Vec<TraceEvent>,
}

impl CampaignReport {
    /// Number of confirmed censorship deployments.
    pub fn confirmed_count(&self) -> usize {
        self.confirmations.iter().filter(|r| r.confirmed).count()
    }

    /// The identify-stage verdict table as stable text — chaos runs are
    /// byte-compared against clean runs on exactly this rendering, so it
    /// must contain verdicts only, never timing or quality noise.
    pub fn identify_table(&self) -> String {
        self.identification.render_installations()
    }

    /// The confirm-stage verdict table as stable text (same byte-
    /// comparison contract as [`CampaignReport::identify_table`]).
    pub fn confirm_table(&self) -> String {
        render_table3(&self.confirmations)
    }

    /// Render the whole campaign as a markdown report.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# filterwatch campaign report\n\nseed {} — finished on virtual day {}\n\n",
            self.seed, self.finished_at_day
        ));

        out.push_str("## Identified installations\n\n");
        out.push_str("| Product | Country | ASN | AS name | IP |\n|---|---|---|---|---|\n");
        for inst in &self.identification.installations {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                inst.product.name(),
                inst.country,
                inst.asn.map(|a| format!("AS{a}")).unwrap_or_default(),
                inst.as_name,
                inst.ip
            ));
        }

        out.push_str("\n## Confirmation case studies\n\n");
        out.push_str(
            "| Case | Date | Submitted | Blocked | Holdout blocked | Confirmed |\n|---|---|---|---|---|---|\n",
        );
        for r in &self.confirmations {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                r.spec.label,
                r.spec.date,
                r.submitted_of_created(),
                r.blocked_of_submitted(),
                r.holdout_blocked,
                if r.confirmed { "**yes**" } else { "no" }
            ));
        }

        out.push_str("\n## Blocked content themes in confirmed networks\n\n");
        out.push_str("| Product | Network |");
        for col in Table4Column::ALL {
            out.push_str(&format!(" {} |", col.name()));
        }
        out.push_str("\n|---|---|---|---|---|---|---|---|\n");
        for (product, ch) in &self.characterizations {
            out.push_str(&format!(
                "| {} | {} (AS{}) |",
                product.name(),
                ch.country,
                ch.asn
            ));
            for col in Table4Column::ALL {
                out.push_str(if ch.column_marked(col) { " x |" } else { "  |" });
            }
            out.push('\n');
        }

        out.push_str("\n## Measurement quality\n\n");
        let q = &self.quality;
        out.push_str("| Metric | Value |\n|---|---|\n");
        out.push_str(&format!("| Fetch attempts | {} |\n", q.fetch_attempts));
        out.push_str(&format!("| Retries | {} |\n", q.retries));
        out.push_str(&format!("| Breaker trips | {} |\n", q.breaker_trips));
        out.push_str(&format!("| Breaker skips | {} |\n", q.breaker_skips));
        out.push_str(&format!("| Quorum trials | {} |\n", q.quorum_trials));
        out.push_str(&format!(
            "| Inconclusive verdicts | {}/{} ({:.1}%) |\n",
            q.inconclusive,
            q.verdicts,
            q.inconclusive_rate() * 100.0
        ));

        // The stable rendering (virtual-clock timings only): the whole
        // report is a pure function of the seed, byte-identical across
        // runs, which is what the golden-snapshot suite checks against.
        // Wall-clock profiles live in `tables -- telemetry --wall`.
        out.push_str("\n## Telemetry\n\n```text\n");
        out.push_str(&filterwatch_telemetry::render::stable_text_report(
            &self.telemetry,
        ));
        out.push_str("```\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn standard_campaign_reproduces_the_paper() {
        let report = Campaign::standard(DEFAULT_SEED).run();
        assert_eq!(report.confirmations.len(), 10);
        assert_eq!(report.confirmed_count(), 7);
        // Characterization covers the distinct confirmed ISPs:
        // bayanat, nournet, etisalat, ooredoo, du, yemennet.
        assert_eq!(report.characterizations.len(), 6);
        assert!(report.identification.installations.len() >= 30);
        assert!(report.finished_at_day >= 40, "{}", report.finished_at_day);
    }

    #[test]
    fn markdown_report_contains_all_sections() {
        let report = Campaign::standard(DEFAULT_SEED).run();
        let md = report.to_markdown();
        assert!(md.contains("# filterwatch campaign report"));
        assert!(md.contains("## Identified installations"));
        assert!(md.contains("## Confirmation case studies"));
        assert!(md.contains("## Blocked content themes"));
        assert!(md.contains("## Measurement quality"));
        // A clean passthrough run absorbs no noise.
        assert!(md.contains("| Retries | 0 |"), "{md}");
        assert!(md.contains("Netsweeper / Yemen / YemenNet"));
        assert!(md.contains("**yes**"));
        // Markdown tables stay rectangular: every themes row has the
        // right number of columns.
        for line in md
            .lines()
            .filter(|l| l.starts_with("| McAfee") || l.starts_with("| Netsweeper"))
        {
            if line.contains("(AS") {
                assert_eq!(line.matches('|').count(), 9, "{line}");
            }
        }
    }

    #[test]
    fn demo_campaign_is_a_stable_subset() {
        let report = Campaign::demo(DEFAULT_SEED).run();
        assert_eq!(report.confirmations.len(), 4);
        // Blue Coat in Etisalat does not confirm (traffic management
        // only); the SmartFilter and Netsweeper rows do.
        assert_eq!(report.confirmed_count(), 3);
        assert_eq!(report.characterizations.len(), 3);
        assert_eq!(report.quality.retries, 0, "clean run retries nothing");
        assert_eq!(report.quality.inconclusive, 0);
        assert!(report.quality.verdicts > 0);
        let identify = report.identify_table();
        assert!(identify.contains("Netsweeper"), "{identify}");
        let confirm = report.confirm_table();
        assert!(confirm.contains("Confirmed?"), "{confirm}");
        assert!(confirm.contains("Bayanat"), "{confirm}");
    }
}
