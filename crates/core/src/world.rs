//! The simulated 2012–2013 world of the paper.
//!
//! [`World::build`] constructs the full scenario the experiments run
//! against: the lab in Toronto, the vendor-side infrastructure, the
//! censoring ISPs of Table 3 (Etisalat, Du, Ooredoo, Bayanat Al-Oula,
//! Nournet, YemenNet) with their product deployments and quirks, the
//! wider set of networks Figure 1's scan uncovers (US utilities,
//! educational networks and backbone ISPs; Blue Coat installations from
//! Argentina to Taiwan), the ONI test-list origin sites, and the hosting
//! network researcher-controlled domains are stood up on.
//!
//! Everything derives from a single seed; [`WorldOptions`] toggles the
//! §6 evasion tactics for the Table 5 experiments.

use std::collections::BTreeMap;
use std::sync::Arc;

use filterwatch_http::Url;
use filterwatch_measure::{MeasurementClient, ResilienceConfig};
use filterwatch_netsim::service::{AdultImageSite, GlypeProxySite, StaticSite};
use filterwatch_netsim::{
    FaultProfile, FetchPath, Internet, IpAddr, NetworkId, NetworkSpec, VantageId,
};
use filterwatch_products::bluecoat::{
    BlueCoatProxy, CfAuthPortal, ProxySgConsole, ProxySgIntercept,
};
use filterwatch_products::license::LicensePool;
use filterwatch_products::netsweeper::{
    seed_denypagetests, DenyPageTestsSite, NetsweeperBox, NetsweeperConsole, DENYPAGETESTS_HOST,
};
use filterwatch_products::smartfilter::{SmartFilterBox, SmartFilterConsole};
use filterwatch_products::websense::{WebsenseBlockpage, BLOCKPAGE_PORT};
use filterwatch_products::{taxonomy, FilterPolicy, ProductKind, SubmissionPortal, VendorCloud};
use filterwatch_urllists::{Category, DomainForge, TestList};

/// Construction toggles (the Table 5 evasion tactics, plus sizing).
#[derive(Debug, Clone)]
pub struct WorldOptions {
    /// World seed; everything stochastic derives from it.
    pub seed: u64,
    /// §6.1 tactic 1: consoles are not reachable from the Internet.
    pub hidden_consoles: bool,
    /// §6.1 tactic 2: products remove branding from headers/pages.
    pub strip_branding: bool,
    /// §6.2 tactic: vendors disregard researcher-linkable submissions.
    pub reject_flaggable_submissions: bool,
    /// Probability that any given installation's console is externally
    /// visible (1.0 = the paper world; used by the visibility ablation).
    /// `hidden_consoles` overrides this to zero.
    pub console_visibility: f64,
    /// URLs per category on the test lists.
    pub list_urls_per_category: usize,
    /// Which netsim fetch machinery every flow runs through: the event
    /// kernel (default) or the direct-call differential oracle. Must
    /// never change a byte of any stage output.
    pub fetch_path: FetchPath,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            seed: DEFAULT_SEED,
            hidden_consoles: false,
            strip_branding: false,
            reject_flaggable_submissions: false,
            console_visibility: 1.0,
            list_urls_per_category: 2,
            fetch_path: FetchPath::default(),
        }
    }
}

/// The documented default world seed. Chosen (and pinned by tests) so the
/// default world reproduces the exact Table 3 counts of the paper —
/// 5/5 on every SmartFilter row, 6/6 in Ooredoo and YemenNet, and Du's
/// 5-of-6 (one test-a-site review declined).
pub const DEFAULT_SEED: u64 = 5;

/// Kinds of researcher-controlled site content (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// A Glype-style proxy service front page.
    ProxyService,
    /// An index page referencing an adult image (plus `/benign.png`).
    AdultImages,
}

impl SiteKind {
    /// The ONI category a vendor reviewer would assign.
    pub fn category(&self) -> Category {
        match self {
            SiteKind::ProxyService => Category::AnonymizersProxies,
            SiteKind::AdultImages => Category::Pornography,
        }
    }
}

/// A researcher-controlled domain standing on the hosting network.
#[derive(Debug, Clone)]
pub struct ControlledSite {
    /// The registered domain (two random words + `.info`).
    pub domain: String,
    /// Content kind hosted.
    pub kind: SiteKind,
    /// The host address.
    pub ip: IpAddr,
}

impl ControlledSite {
    /// The URL testers fetch. For adult-image sites this is the benign
    /// object, limiting tester exposure (§4.6); blocking is
    /// hostname-granular so the verdict is unaffected.
    pub fn test_url(&self) -> Url {
        match self.kind {
            SiteKind::ProxyService => {
                Url::parse(&format!("http://{}/", self.domain)).expect("valid")
            }
            SiteKind::AdultImages => {
                Url::parse(&format!("http://{}/benign.png", self.domain)).expect("valid")
            }
        }
    }

    /// The URL submitted to vendors (the site root).
    pub fn submit_url(&self) -> Url {
        Url::parse(&format!("http://{}/", self.domain)).expect("valid")
    }
}

/// The built world. See the module docs.
pub struct World {
    /// The simulated Internet.
    pub net: Internet,
    /// Construction options used.
    pub options: WorldOptions,
    /// Resilience configuration every stage's measurement clients
    /// inherit ([`World::client`]). Defaults to passthrough, so the
    /// pinned-seed experiments behave exactly as single-shot fetches;
    /// chaos campaigns switch it to `ResilienceConfig::chaos()`.
    pub resilience: ResilienceConfig,
    clouds: BTreeMap<ProductKind, Arc<VendorCloud>>,
    lab: VantageId,
    fields: BTreeMap<String, VantageId>,
    hosting: NetworkId,
    forge: DomainForge,
}

/// `(network name, asn, country, console products)` rows for the
/// networks whose only role is carrying a visible installation
/// (Figure 1's breadth).
const INSTALL_NETWORKS: &[(&str, u32, &str, &[ProductKind])] = &[
    // United States: utilities, education, backbone (§3.2).
    ("texas-utility-1", 19181, "US", &[ProductKind::Websense]),
    ("texas-utility-2", 26662, "US", &[ProductKind::Websense]),
    ("wv-k12-edu", 10455, "US", &[ProductKind::Netsweeper]),
    ("ok-edu", 2572, "US", &[ProductKind::Netsweeper]),
    ("mo-edu", 32440, "US", &[ProductKind::Netsweeper]),
    ("global-crossing", 3549, "US", &[ProductKind::Netsweeper]),
    ("att", 7018, "US", &[ProductKind::Netsweeper]),
    ("verizon", 701, "US", &[ProductKind::Netsweeper]),
    ("bellsouth", 6389, "US", &[ProductKind::Netsweeper]),
    ("comcast", 7922, "US", &[ProductKind::BlueCoat]),
    ("sprint", 1239, "US", &[ProductKind::BlueCoat]),
    ("usaisc", 1503, "US", &[ProductKind::BlueCoat]),
    ("us-enterprise", 30036, "US", &[ProductKind::SmartFilter]),
    // Blue Coat's new countries (§3.2) and previously observed ones.
    ("argentina-isp", 7303, "AR", &[ProductKind::BlueCoat]),
    ("chile-isp", 7418, "CL", &[ProductKind::BlueCoat]),
    ("finland-isp", 1759, "FI", &[ProductKind::BlueCoat]),
    ("sweden-isp", 3301, "SE", &[ProductKind::BlueCoat]),
    ("philippines-isp", 9299, "PH", &[ProductKind::BlueCoat]),
    ("thailand-isp", 7470, "TH", &[ProductKind::BlueCoat]),
    ("taiwan-isp", 3462, "TW", &[ProductKind::BlueCoat]),
    ("israel-isp", 8551, "IL", &[ProductKind::BlueCoat]),
    ("lebanon-isp", 42003, "LB", &[ProductKind::BlueCoat]),
    ("kuwait-isp", 21050, "KW", &[ProductKind::BlueCoat]),
    ("myanmar-isp", 9988, "MM", &[ProductKind::BlueCoat]),
    ("egypt-isp", 8452, "EG", &[ProductKind::BlueCoat]),
    ("syria-ste", 29386, "SY", &[ProductKind::BlueCoat]),
    // McAfee SmartFilter in Pakistan (the one previously known case).
    ("pakistan-ptcl", 17557, "PK", &[ProductKind::SmartFilter]),
];

const COUNTRIES: &[(&str, &str, &str)] = &[
    ("CA", "Canada", "ca"),
    ("US", "United States", "us"),
    ("QA", "Qatar", "qa"),
    ("SA", "Saudi Arabia", "sa"),
    ("AE", "United Arab Emirates", "ae"),
    ("YE", "Yemen", "ye"),
    ("SY", "Syria", "sy"),
    ("AR", "Argentina", "ar"),
    ("CL", "Chile", "cl"),
    ("FI", "Finland", "fi"),
    ("SE", "Sweden", "se"),
    ("PH", "Philippines", "ph"),
    ("TH", "Thailand", "th"),
    ("TW", "Taiwan", "tw"),
    ("IL", "Israel", "il"),
    ("LB", "Lebanon", "lb"),
    ("KW", "Kuwait", "kw"),
    ("MM", "Myanmar", "mm"),
    ("EG", "Egypt", "eg"),
    ("PK", "Pakistan", "pk"),
];

impl World {
    /// Build the paper world with default options.
    pub fn paper(seed: u64) -> World {
        World::build(WorldOptions {
            seed,
            ..WorldOptions::default()
        })
    }

    /// Build a synthetic world with `n_networks` filtered networks
    /// (consoles assigned round-robin across the four products) for
    /// scalability studies — §7 names scalability as the methodology's
    /// open challenge, and the scan/identify benches sweep this.
    pub fn synthetic(seed: u64, n_networks: usize) -> World {
        let mut net = Internet::new(seed);
        for &(code, name, tld) in COUNTRIES {
            net.registry_mut().register_country(code, name, tld);
        }
        let mut clouds = BTreeMap::new();
        for product in ProductKind::ALL {
            clouds.insert(product, Arc::new(VendorCloud::new(product, seed)));
        }
        let lab_net = {
            let asn = net.registry_mut().register_as(239, "UTORONTO", "CA");
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            net.add_network(NetworkSpec::new("toronto-lab", asn, "CA").with_cidr(p))
        };
        let hosting = {
            let asn = net.registry_mut().register_as(16509, "POPULAR-CLOUD", "US");
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            net.add_network(NetworkSpec::new("cloudhost", asn, "US").with_cidr(p))
        };
        let options = WorldOptions {
            seed,
            ..WorldOptions::default()
        };
        for i in 0..n_networks {
            let product = ProductKind::ALL[i % ProductKind::ALL.len()];
            let (code, _, tld) = COUNTRIES[i % COUNTRIES.len()];
            let asn = net
                .registry_mut()
                .register_as(64_512 + i as u32, &format!("SYN{i}"), code);
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            let name = format!("syn-{i}");
            let isp = net.add_network(NetworkSpec::new(&name, asn, code).with_cidr(p));
            add_console(&mut net, isp, &name, tld, product, false);
        }
        let lab = net.add_vantage("toronto-lab", lab_net);
        let mut fields = BTreeMap::new();
        fields.insert("toronto-lab".to_string(), lab);
        World {
            net,
            options,
            resilience: ResilienceConfig::default(),
            clouds,
            lab,
            fields,
            hosting,
            forge: DomainForge::new(filterwatch_netsim::rng::mix(seed, "domain-forge")),
        }
    }

    /// Build the paper world with explicit options.
    pub fn build(options: WorldOptions) -> World {
        let seed = options.seed;
        let mut net = Internet::new(seed);
        net.set_fetch_path(options.fetch_path);

        for &(code, name, tld) in COUNTRIES {
            net.registry_mut().register_country(code, name, tld);
        }

        // Vendor clouds.
        let mut clouds = BTreeMap::new();
        for product in ProductKind::ALL {
            let cloud = Arc::new(VendorCloud::new(product, seed));
            if options.reject_flaggable_submissions {
                cloud.set_reject_flaggable(true);
            }
            clouds.insert(product, cloud);
        }

        // --- Infrastructure networks -------------------------------------
        let lab_net = {
            let asn = net.registry_mut().register_as(239, "UTORONTO", "CA");
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            net.add_network(NetworkSpec::new("toronto-lab", asn, "CA").with_cidr(p))
        };
        let hosting = {
            let asn = net.registry_mut().register_as(16509, "POPULAR-CLOUD", "US");
            let p = net.registry_mut().allocate_prefix(asn, 4).expect("prefix");
            net.add_network(NetworkSpec::new("cloudhost", asn, "US").with_cidr(p))
        };
        let vendor_net = {
            let asn = net.registry_mut().register_as(13335, "VENDOR-NET", "US");
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            net.add_network(NetworkSpec::new("vendornet", asn, "US").with_cidr(p))
        };
        let content_net = {
            let asn = net.registry_mut().register_as(14618, "CONTENT-WEB", "US");
            let p = net.registry_mut().allocate_prefix(asn, 4).expect("prefix");
            net.add_network(NetworkSpec::new("contentweb", asn, "US").with_cidr(p))
        };

        // Vendor-side hosts: the public submission portals every vendor
        // runs (the §4.2 confirmation lever is a web form), the Blue
        // Coat cfauth portal, and Netsweeper's category test site.
        let lab_prefix = net.network(lab_net).cidrs[0];
        let hosting_prefix = net.network(hosting).cidrs[0];
        for (product, portal_host) in [
            (ProductKind::BlueCoat, "sitereview.bluecoat.com"),
            (ProductKind::SmartFilter, "www.trustedsource.org"),
            (ProductKind::Netsweeper, "testasite.netsweeper.com"),
            (ProductKind::Websense, "csi.websense.com"),
        ] {
            let ip = net.alloc_ip(vendor_net).expect("portal ip");
            net.add_host(ip, vendor_net, &[portal_host]);
            net.add_service(
                ip,
                80,
                Box::new(
                    SubmissionPortal::new(Arc::clone(&clouds[&product]))
                        .with_research_prefix(lab_prefix)
                        .with_popular_hosting_prefix(hosting_prefix),
                ),
            );
        }

        let cfauth_ip = net.alloc_ip(vendor_net).expect("ip");
        net.add_host(cfauth_ip, vendor_net, &["www.cfauth.com"]);
        net.add_service(cfauth_ip, 80, Box::new(CfAuthPortal));
        let dpt_ip = net.alloc_ip(vendor_net).expect("ip");
        net.add_host(dpt_ip, vendor_net, &[DENYPAGETESTS_HOST]);
        net.add_service(dpt_ip, 80, Box::new(DenyPageTestsSite));
        seed_denypagetests(&clouds[&ProductKind::Netsweeper]);

        // --- Test-list origin sites --------------------------------------
        let mut lists = vec![TestList::global(options.list_urls_per_category)];
        for cc in ["AE", "QA", "YE", "SA"] {
            lists.push(TestList::local(cc, options.list_urls_per_category));
        }
        for list in &lists {
            for test_url in &list.urls {
                let url = Url::parse(&test_url.url).expect("list URL parses");
                let ip = net.alloc_ip(content_net).expect("content ip");
                net.add_host(ip, content_net, &[url.host()]);
                net.add_service(
                    ip,
                    80,
                    Box::new(StaticSite::new(
                        test_url.category.name(),
                        &format!(
                            "<p>Reference content for the {} category.</p>",
                            test_url.category.name()
                        ),
                    )),
                );
                // All vendors already know these long-standing sites.
                let domain = url.registrable_domain();
                for (product, cloud) in &clouds {
                    cloud.register_site_profile(&domain, test_url.category);
                    cloud.seed_categorization(
                        &domain,
                        taxonomy::vendor_category(*product, test_url.category),
                    );
                }
            }
        }

        // --- Censoring ISPs (Table 3) ------------------------------------
        let mut fields = BTreeMap::new();

        // Etisalat (AE, AS 5384): SmartFilter policy atop a Blue Coat
        // ProxySG used for traffic management only (§4.5 Challenge 3).
        {
            let asn = net
                .registry_mut()
                .register_as(5384, "EMIRATES-INTERNET", "AE");
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            let isp = net.add_network(NetworkSpec::new("etisalat", asn, "AE").with_cidr(p));
            let bc = BlueCoatProxy::traffic_management_only(
                "proxysg@etisalat",
                Arc::clone(&clouds[&ProductKind::BlueCoat]),
            );
            let bc = if options.strip_branding {
                bc.with_stripped_branding()
            } else {
                bc
            };
            net.attach_middlebox(isp, Arc::new(bc));
            let policy = FilterPolicy::blocking([
                "Pornography",
                "Anonymizers",
                "General News",
                "Lifestyle",
                "Politics/Opinion",
            ]);
            let sf = SmartFilterBox::new(
                "smartfilter@etisalat",
                Arc::clone(&clouds[&ProductKind::SmartFilter]),
                policy,
            );
            let sf = if options.strip_branding {
                sf.with_stripped_branding()
            } else {
                sf
            };
            net.attach_middlebox(isp, Arc::new(sf));
            if console_visible(&options, "etisalat", ProductKind::BlueCoat) {
                add_console(
                    &mut net,
                    isp,
                    "etisalat",
                    "ae",
                    ProductKind::BlueCoat,
                    options.strip_branding,
                );
            }
            if console_visible(&options, "etisalat", ProductKind::SmartFilter) {
                add_console(
                    &mut net,
                    isp,
                    "etisalat",
                    "ae",
                    ProductKind::SmartFilter,
                    options.strip_branding,
                );
            }
            fields.insert(
                "etisalat".to_string(),
                net.add_vantage("etisalat-field", isp),
            );
        }

        // Du (AE, AS 15802): Netsweeper with in-country queueing.
        {
            let asn = net.registry_mut().register_as(15802, "DU-AS", "AE");
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            let isp = net.add_network(NetworkSpec::new("du", asn, "AE").with_cidr(p));
            let deny_host = console_host_name("du", "ae");
            let policy = FilterPolicy::blocking([
                "Proxy Anonymizer",
                "Pornography",
                "Alternative Lifestyles",
                "Religion",
                "Politics",
            ]);
            let ns = NetsweeperBox::new(
                "netsweeper@du",
                Arc::clone(&clouds[&ProductKind::Netsweeper]),
                policy,
                &deny_host,
            )
            .with_queueing();
            let ns = if options.strip_branding {
                ns.with_stripped_branding()
            } else {
                ns
            };
            net.attach_middlebox(isp, Arc::new(ns));
            // The deny host must exist even with hidden consoles (it
            // serves in-network deny pages); "hidden" binds it so that
            // outside probes cannot see it — modelled by simply not
            // registering it in the scanned prefix when hidden.
            if console_visible(&options, "du", ProductKind::Netsweeper) {
                add_console(
                    &mut net,
                    isp,
                    "du",
                    "ae",
                    ProductKind::Netsweeper,
                    options.strip_branding,
                );
            } else {
                add_hidden_deny_host(&mut net, isp, "du", "ae");
            }
            fields.insert("du".to_string(), net.add_vantage("du-field", isp));
        }

        // Ooredoo (QA, AS 42298): Netsweeper (plus a Blue Coat proxy that
        // does no filtering — its console is what the scan sees).
        {
            let asn = net.registry_mut().register_as(42298, "OOREDOO-QA", "QA");
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            let isp = net.add_network(NetworkSpec::new("ooredoo", asn, "QA").with_cidr(p));
            let bc = BlueCoatProxy::traffic_management_only(
                "proxysg@ooredoo",
                Arc::clone(&clouds[&ProductKind::BlueCoat]),
            );
            let bc = if options.strip_branding {
                bc.with_stripped_branding()
            } else {
                bc
            };
            net.attach_middlebox(isp, Arc::new(bc));
            let deny_host = console_host_name("ooredoo", "qa");
            let policy = FilterPolicy::blocking([
                "Proxy Anonymizer",
                "Alternative Lifestyles",
                "Human Rights",
            ]);
            let ns = NetsweeperBox::new(
                "netsweeper@ooredoo",
                Arc::clone(&clouds[&ProductKind::Netsweeper]),
                policy,
                &deny_host,
            )
            .with_queueing();
            let ns = if options.strip_branding {
                ns.with_stripped_branding()
            } else {
                ns
            };
            net.attach_middlebox(isp, Arc::new(ns));
            if console_visible(&options, "ooredoo", ProductKind::Netsweeper) {
                add_console(
                    &mut net,
                    isp,
                    "ooredoo",
                    "qa",
                    ProductKind::Netsweeper,
                    options.strip_branding,
                );
            } else {
                add_hidden_deny_host(&mut net, isp, "ooredoo", "qa");
            }
            if console_visible(&options, "ooredoo", ProductKind::BlueCoat) {
                add_console(
                    &mut net,
                    isp,
                    "ooredoo",
                    "qa",
                    ProductKind::BlueCoat,
                    options.strip_branding,
                );
            }
            fields.insert("ooredoo".to_string(), net.add_vantage("ooredoo-field", isp));
        }

        // Saudi Arabia: centralized SmartFilter, reached through two ISPs
        // (Bayanat Al-Oula AS 48237, Nournet AS 29684). Pornography is
        // blocked; the Anonymizers category is NOT enabled (Challenge 1).
        for (name, asn_no, as_name) in [
            ("bayanat", 48237u32, "BAYANAT-AL-OULA"),
            ("nournet", 29684u32, "NOURNET"),
        ] {
            let asn = net.registry_mut().register_as(asn_no, as_name, "SA");
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            let isp = net.add_network(NetworkSpec::new(name, asn, "SA").with_cidr(p));
            let policy = FilterPolicy::blocking(["Pornography", "Religion/Ideology"]);
            let sf = SmartFilterBox::new(
                &format!("smartfilter@{name}"),
                Arc::clone(&clouds[&ProductKind::SmartFilter]),
                policy,
            );
            let sf = if options.strip_branding {
                sf.with_stripped_branding()
            } else {
                sf
            };
            net.attach_middlebox(isp, Arc::new(sf));
            if console_visible(&options, name, ProductKind::SmartFilter) {
                add_console(
                    &mut net,
                    isp,
                    name,
                    "sa",
                    ProductKind::SmartFilter,
                    options.strip_branding,
                );
            }
            fields.insert(
                name.to_string(),
                net.add_vantage(&format!("{name}-field"), isp),
            );
        }

        // YemenNet (YE, AS 12486): Netsweeper, license-limited
        // (Challenge 2), denypagetests categories exactly as the paper
        // found them, plus operator custom denies for local political,
        // media and human-rights sites (Table 4).
        {
            let asn = net.registry_mut().register_as(12486, "YEMENNET", "YE");
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            let isp = net.add_network(
                NetworkSpec::new("yemennet", asn, "YE")
                    .with_cidr(p)
                    .with_faults(FaultProfile::lossy(0.01)),
            );
            let deny_host = console_host_name("yemennet", "ye");
            let mut policy = FilterPolicy::blocking([
                "Adult Images",
                "Phishing",
                "Pornography",
                "Proxy Anonymizer",
                "Search Keywords",
            ]);
            // Operator custom deny list: locally sensitive domains.
            let local = TestList::local("YE", options.list_urls_per_category);
            for u in &local.urls {
                if matches!(
                    u.category,
                    Category::MediaFreedom | Category::HumanRights | Category::PoliticalReform
                ) {
                    let url = Url::parse(&u.url).expect("local url");
                    policy.always_deny(&url.registrable_domain());
                }
            }
            let ns = NetsweeperBox::new(
                "netsweeper@yemennet",
                Arc::clone(&clouds[&ProductKind::Netsweeper]),
                policy,
                &deny_host,
            )
            .with_queueing()
            .with_license_pool(LicensePool::new(13, 16, seed, "yemennet"));
            let ns = if options.strip_branding {
                ns.with_stripped_branding()
            } else {
                ns
            };
            net.attach_middlebox(isp, Arc::new(ns));
            if console_visible(&options, "yemennet", ProductKind::Netsweeper) {
                add_console(
                    &mut net,
                    isp,
                    "yemennet",
                    "ye",
                    ProductKind::Netsweeper,
                    options.strip_branding,
                );
            } else {
                add_hidden_deny_host(&mut net, isp, "yemennet", "ye");
            }
            fields.insert(
                "yemennet".to_string(),
                net.add_vantage("yemennet-field", isp),
            );
        }

        // --- The wider Figure 1 installation networks ---------------------
        for &(name, asn_no, country, consoles) in INSTALL_NETWORKS {
            let as_name = name.to_ascii_uppercase().replace('-', "");
            let asn = net.registry_mut().register_as(asn_no, &as_name, country);
            let p = net.registry_mut().allocate_prefix(asn, 1).expect("prefix");
            let isp = net.add_network(NetworkSpec::new(name, asn, country).with_cidr(p));
            let tld = country.to_ascii_lowercase();
            for &product in consoles {
                if console_visible(&options, name, product) {
                    add_console(&mut net, isp, name, &tld, product, options.strip_branding);
                }
            }
        }

        let lab = net.add_vantage("toronto-lab", lab_net);
        // The lab doubles as a (trivially unfiltered) field vantage so
        // control measurements can reuse the same APIs.
        fields.insert("toronto-lab".to_string(), lab);

        World {
            net,
            options,
            resilience: ResilienceConfig::default(),
            clouds,
            lab,
            fields,
            hosting,
            forge: DomainForge::new(filterwatch_netsim::rng::mix(seed, "domain-forge")),
        }
    }

    /// Builder-style: set the resilience configuration subsequent
    /// measurement clients inherit.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// A measurement client for an ISP's field vantage, controlled
    /// against the lab, carrying the world's resilience configuration.
    ///
    /// # Panics
    /// If the ISP has no field tester.
    pub fn client(&self, isp: &str) -> MeasurementClient {
        MeasurementClient::new(self.field(isp), self.lab)
            .with_resilience(self.resilience.clone())
            .with_telemetry(self.net.telemetry().clone())
    }

    /// The lab (control) vantage point.
    pub fn lab(&self) -> VantageId {
        self.lab
    }

    /// The field vantage point inside a censoring ISP.
    ///
    /// # Panics
    /// If the ISP has no field tester.
    pub fn field(&self, isp: &str) -> VantageId {
        *self
            .fields
            .get(isp)
            .unwrap_or_else(|| panic!("no field vantage in {isp:?}"))
    }

    /// ISPs with field testers, sorted by name.
    pub fn field_isps(&self) -> Vec<&str> {
        self.fields.keys().map(String::as_str).collect()
    }

    /// The vendor cloud for a product.
    pub fn cloud(&self, product: ProductKind) -> &Arc<VendorCloud> {
        &self.clouds[&product]
    }

    /// Hostname of the vendor's public submission portal.
    pub fn portal_host(product: ProductKind) -> &'static str {
        match product {
            ProductKind::BlueCoat => "sitereview.bluecoat.com",
            ProductKind::SmartFilter => "www.trustedsource.org",
            ProductKind::Netsweeper => "testasite.netsweeper.com",
            ProductKind::Websense => "csi.websense.com",
        }
    }

    /// Register a fresh researcher-controlled domain hosting `kind`
    /// content, resolvable worldwide, with reviewer ground truth
    /// registered at every vendor (a reviewer visiting it would see the
    /// content regardless of vendor).
    pub fn create_controlled_site(&mut self, kind: SiteKind) -> ControlledSite {
        let domain = self.forge.mint();
        let ip = self.net.alloc_ip(self.hosting).expect("hosting space");
        self.net.add_host(ip, self.hosting, &[&domain]);
        match kind {
            SiteKind::ProxyService => self.net.add_service(ip, 80, Box::new(GlypeProxySite)),
            SiteKind::AdultImages => self
                .net
                .add_service(ip, 80, Box::new(AdultImageSite::new())),
        }
        for cloud in self.clouds.values() {
            cloud.register_site_profile(&domain, kind.category());
        }
        ControlledSite { domain, kind, ip }
    }

    /// Create `n` controlled sites of one kind.
    pub fn create_controlled_sites(&mut self, kind: SiteKind, n: usize) -> Vec<ControlledSite> {
        (0..n).map(|_| self.create_controlled_site(kind)).collect()
    }
}

/// Per-console visibility draw: a pure function of (seed, network,
/// product), so sweeps are comparable across options.
fn console_visible(options: &WorldOptions, network: &str, product: ProductKind) -> bool {
    if options.hidden_consoles {
        return false;
    }
    if options.console_visibility >= 1.0 {
        return true;
    }
    let draw = (filterwatch_netsim::rng::mix(
        options.seed,
        &format!("console-vis/{network}/{}", product.slug()),
    ) >> 11) as f64
        / (1u64 << 53) as f64;
    draw < options.console_visibility
}

fn console_host_name(network: &str, tld: &str) -> String {
    format!("gw.{network}.{tld}")
}

/// Add an externally visible product console/gateway host to a network.
fn add_console(
    net: &mut Internet,
    isp: NetworkId,
    name: &str,
    tld: &str,
    product: ProductKind,
    strip_branding: bool,
) {
    // Each product gets its own gateway host so port bindings never
    // collide when a network runs several products (Etisalat runs two).
    let host = match product {
        ProductKind::BlueCoat => format!("proxy.{name}.{tld}"),
        ProductKind::SmartFilter => format!("mwg.{name}.{tld}"),
        // Netsweeper's console host doubles as the deny-page target.
        ProductKind::Netsweeper | ProductKind::Websense => console_host_name(name, tld),
    };
    let ip = match net.dns().resolve(&host) {
        Some(ip) => ip,
        None => {
            let ip = net.alloc_ip(isp).expect("console ip");
            net.add_host(ip, isp, &[&host]);
            ip
        }
    };
    if strip_branding {
        // A console that keeps its mouth shut: generic banner, no product
        // markers. Port still answers (the device exists).
        let port = match product {
            ProductKind::Netsweeper => 8080,
            ProductKind::Websense => BLOCKPAGE_PORT,
            _ => 80,
        };
        net.add_service(
            ip,
            port,
            Box::new(StaticSite::new("Gateway", "<p>restricted</p>")),
        );
        return;
    }
    match product {
        ProductKind::BlueCoat => {
            net.add_service(ip, 80, Box::new(ProxySgConsole));
            net.add_service(ip, 8080, Box::new(ProxySgIntercept));
        }
        ProductKind::SmartFilter => net.add_service(ip, 80, Box::new(SmartFilterConsole)),
        ProductKind::Netsweeper => net.add_service(ip, 8080, Box::new(NetsweeperConsole)),
        ProductKind::Websense => net.add_service(ip, BLOCKPAGE_PORT, Box::new(WebsenseBlockpage)),
    }
}

/// With hidden consoles, Netsweeper deployments still need an in-network
/// deny host for their block-page redirects — reachable from inside
/// (clients fetch the deny page) but we model external invisibility by
/// keeping it off the scanned console ports' banner surface entirely:
/// only the deny path answers.
fn add_hidden_deny_host(net: &mut Internet, isp: NetworkId, name: &str, tld: &str) {
    let host = console_host_name(name, tld);
    let ip = net.alloc_ip(isp).expect("deny ip");
    net.add_host(ip, isp, &[&host]);
    net.add_service(ip, 8080, Box::new(DenyOnlyConsole));
}

/// A console that serves deny pages but nothing identifying on probes —
/// the "properly configured" installation of §6.1.
#[derive(Debug, Clone, Default)]
struct DenyOnlyConsole;

impl filterwatch_netsim::Service for DenyOnlyConsole {
    fn handle(
        &self,
        req: &filterwatch_http::Request,
        ctx: &filterwatch_netsim::ServiceCtx,
    ) -> filterwatch_http::Response {
        if req.url.path().starts_with("/webadmin/deny") {
            NetsweeperConsole.handle(req, ctx)
        } else {
            filterwatch_http::Response::not_found()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_measure::MeasurementClient;

    #[test]
    fn world_builds_with_expected_networks() {
        let w = World::paper(1);
        for isp in [
            "etisalat", "du", "ooredoo", "bayanat", "nournet", "yemennet",
        ] {
            assert!(w.net.network_by_name(isp).is_some(), "{isp}");
        }
        assert!(w.net.network_by_name("comcast").is_some());
        assert_eq!(w.field_isps().len(), 7); // six censoring ISPs + the lab
        assert!(w.net.host_count() > 150);
    }

    #[test]
    fn known_porn_site_blocked_in_saudi_not_in_lab() {
        let w = World::paper(1);
        let client = MeasurementClient::new(w.field("bayanat"), w.lab());
        let url = Url::parse("http://www.pornography0-glb.example/").unwrap();
        let v = client.test_url(&w.net, &url);
        assert!(v.verdict.is_blocked(), "{:?}", v.verdict);
        assert_eq!(v.verdict.blocked_by(), Some("smartfilter"));
    }

    #[test]
    fn known_proxy_site_accessible_in_saudi_blocked_in_uae() {
        // Challenge 1: Saudi Arabia does not enable the proxy category.
        let w = World::paper(1);
        let url = Url::parse("http://www.proxy0-glb.example/").unwrap();
        let saudi = MeasurementClient::new(w.field("bayanat"), w.lab());
        assert!(saudi.test_url(&w.net, &url).verdict.is_accessible());
        let uae = MeasurementClient::new(w.field("etisalat"), w.lab());
        assert!(uae.test_url(&w.net, &url).verdict.is_blocked());
    }

    #[test]
    fn netsweeper_blocks_proxies_in_ooredoo_with_branded_deny_page() {
        let w = World::paper(1);
        let client = MeasurementClient::new(w.field("ooredoo"), w.lab());
        let v = client.test_url(
            &w.net,
            &Url::parse("http://www.proxy0-glb.example/").unwrap(),
        );
        assert_eq!(
            v.verdict.blocked_by(),
            Some("netsweeper"),
            "{:?}",
            v.verdict
        );
    }

    #[test]
    fn controlled_sites_are_fresh_and_resolvable() {
        let mut w = World::paper(1);
        let sites = w.create_controlled_sites(SiteKind::ProxyService, 3);
        assert_eq!(sites.len(), 3);
        let client = MeasurementClient::new(w.field("etisalat"), w.lab());
        for s in &sites {
            assert!(s.domain.ends_with(".info"));
            let v = client.test_url(&w.net, &s.test_url());
            assert!(v.verdict.is_accessible(), "{} {:?}", s.domain, v.verdict);
        }
    }

    #[test]
    fn adult_site_benign_object_is_the_test_url() {
        let mut w = World::paper(1);
        let site = w.create_controlled_site(SiteKind::AdultImages);
        assert!(site.test_url().to_string().ends_with("/benign.png"));
        assert_eq!(site.submit_url().path(), "/");
    }

    #[test]
    fn hidden_consoles_remove_external_surface() {
        let w = World::build(WorldOptions {
            seed: 1,
            hidden_consoles: true,
            ..WorldOptions::default()
        });
        // The Ooredoo console host answers deny pages but not probes.
        let ip = w.net.dns().resolve("gw.ooredoo.qa").unwrap();
        let req = filterwatch_http::Request::get(Url::http_at(&ip.to_string(), 8080, "/webadmin/"));
        let resp = w.net.probe(ip, 8080, &req).into_response().unwrap();
        assert!(resp.status.is_error());
        assert!(!resp.body_text().to_ascii_lowercase().contains("netsweeper"));
    }

    #[test]
    fn submission_portals_reachable_worldwide() {
        let w = World::paper(1);
        let client = MeasurementClient::new(w.field("etisalat"), w.lab());
        for product in ProductKind::ALL {
            let url = Url::parse(&format!("http://{}/", World::portal_host(product))).unwrap();
            let v = client.test_url(&w.net, &url);
            assert!(v.verdict.is_accessible(), "{product}: {:?}", v.verdict);
        }
    }

    #[test]
    fn synthetic_worlds_scale_linearly_in_installations() {
        let small = World::synthetic(1, 8);
        let large = World::synthetic(1, 24);
        let count = |w: &World| {
            crate::identify::IdentifyPipeline::new()
                .run(&w.net)
                .installations
                .len()
        };
        let (a, b) = (count(&small), count(&large));
        assert_eq!(a, 8, "every synthetic console should validate");
        assert_eq!(b, 24);
    }

    #[test]
    fn default_options() {
        let o = WorldOptions::default();
        assert_eq!(o.seed, DEFAULT_SEED);
        assert!(!o.hidden_consoles);
        assert!(!o.strip_branding);
        assert!(!o.reject_flaggable_submissions);
    }
}
