//! The §6 evasion experiments (Table 5).
//!
//! Each stage of the methodology has a counter-move available to vendors
//! or operators; this module reruns the pipeline under each tactic and
//! reports what survives:
//!
//! | Stage | Technique | Evasion tactic |
//! |---|---|---|
//! | Identify installations | port scans (Shodan) | do not allow the device to be accessed externally |
//! | Validate installations | WhatWeb | remove evidence of the product from headers |
//! | Confirm censorship | in-country testing + URL submission | identify and disregard researcher submissions |
//!
//! The headline result the paper stresses: identification and
//! confirmation are independent, so **confirmation still works when
//! identification is fully evaded**, and counter-evasion (proxied
//! submissions, webmail, popular hosting) restores confirmation even
//! against submission-screening vendors.

use filterwatch_products::{ProductKind, SubmitterProfile};

use crate::confirm::{run_case_study, CaseStudySpec};
use crate::identify::IdentifyPipeline;
use crate::report::TextTable;
use crate::world::{SiteKind, World, WorldOptions};

/// The outcome of one evasion scenario.
#[derive(Debug, Clone)]
pub struct EvasionScenario {
    /// Scenario label.
    pub label: String,
    /// Which tactic was active.
    pub tactic: &'static str,
    /// Validated installations found by the identification pipeline.
    pub installations_found: usize,
    /// Whether the confirmation methodology still confirmed censorship
    /// in the probe ISP.
    pub confirmation_succeeded: bool,
    /// Whether the block pages still attributed a vendor.
    pub vendor_attributed: bool,
}

/// The standard confirmation probe used across scenarios: SmartFilter
/// pornography in Nournet (a clean, deterministic positive case).
fn probe_spec(submitter: SubmitterProfile) -> CaseStudySpec {
    CaseStudySpec {
        label: "evasion-probe".into(),
        product: ProductKind::SmartFilter,
        isp: "nournet".into(),
        date: "-".into(),
        site_kind: SiteKind::AdultImages,
        n_sites: 6,
        n_submit: 3,
        category_label: "Pornography".into(),
        pre_verify: true,
        wait_days: 4,
        retest_runs: 1,
        submitter,
    }
}

/// Run one scenario: build a world with `options`, identify, confirm.
pub fn run_scenario(
    label: &str,
    tactic: &'static str,
    options: WorldOptions,
    submitter: SubmitterProfile,
) -> EvasionScenario {
    let mut world = World::build(options);
    let report = IdentifyPipeline::new().run(&world.net);
    let confirmation = run_case_study(&mut world, &probe_spec(submitter));
    EvasionScenario {
        label: label.to_string(),
        tactic,
        installations_found: report.installations.len(),
        confirmation_succeeded: confirmation.confirmed,
        vendor_attributed: !confirmation.attributed_products.is_empty(),
    }
}

/// Run the full Table 5 scenario suite.
pub fn run_table5(seed: u64) -> Vec<EvasionScenario> {
    vec![
        run_scenario(
            "baseline",
            "none",
            WorldOptions {
                seed,
                ..WorldOptions::default()
            },
            SubmitterProfile::NAIVE,
        ),
        run_scenario(
            "hidden installations",
            "do not allow device to be accessed externally",
            WorldOptions {
                seed,
                hidden_consoles: true,
                ..WorldOptions::default()
            },
            SubmitterProfile::NAIVE,
        ),
        run_scenario(
            "stripped headers",
            "remove evidence of product from headers",
            WorldOptions {
                seed,
                strip_branding: true,
                ..WorldOptions::default()
            },
            SubmitterProfile::NAIVE,
        ),
        run_scenario(
            "submission screening vs naive researcher",
            "identify and disregard our submissions",
            WorldOptions {
                seed,
                reject_flaggable_submissions: true,
                ..WorldOptions::default()
            },
            SubmitterProfile::NAIVE,
        ),
        run_scenario(
            "submission screening vs covert researcher",
            "identify and disregard our submissions (countered)",
            WorldOptions {
                seed,
                reject_flaggable_submissions: true,
                ..WorldOptions::default()
            },
            SubmitterProfile::COVERT,
        ),
    ]
}

/// Render the scenario suite as the Table 5 companion table.
pub fn render_table5(scenarios: &[EvasionScenario]) -> String {
    let mut table = TextTable::new([
        "Scenario",
        "Evasion tactic",
        "Installations identified",
        "Censorship confirmed?",
        "Vendor attributed?",
    ]);
    for s in scenarios {
        table.row([
            s.label.clone(),
            s.tactic.to_string(),
            s.installations_found.to_string(),
            if s.confirmation_succeeded {
                "yes".into()
            } else {
                "no".to_string()
            },
            if s.vendor_attributed {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape() {
        let scenarios = run_table5(1);
        assert_eq!(scenarios.len(), 5);
        let baseline = &scenarios[0];
        let hidden = &scenarios[1];
        let stripped = &scenarios[2];
        let screened_naive = &scenarios[3];
        let screened_covert = &scenarios[4];

        // Baseline: plenty of installations, confirmation works.
        assert!(baseline.installations_found >= 10, "{baseline:?}");
        assert!(baseline.confirmation_succeeded);
        assert!(baseline.vendor_attributed);

        // Tactic 1: identification fully evaded; confirmation unaffected.
        assert_eq!(hidden.installations_found, 0, "{hidden:?}");
        assert!(hidden.confirmation_succeeded);

        // Tactic 2: header stripping kills identification AND vendor
        // attribution, but censorship is still confirmed (the submission
        // channel itself names the product).
        assert_eq!(stripped.installations_found, 0, "{stripped:?}");
        assert!(stripped.confirmation_succeeded);
        assert!(!stripped.vendor_attributed);

        // Tactic 3: naive submissions are discarded → not confirmed;
        // the §6.2 counter-evasion restores confirmation.
        assert!(!screened_naive.confirmation_succeeded, "{screened_naive:?}");
        assert!(
            screened_covert.confirmation_succeeded,
            "{screened_covert:?}"
        );

        let text = render_table5(&scenarios);
        assert!(text.contains("Evasion tactic"));
    }
}
