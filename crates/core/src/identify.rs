//! Stage 1: identifying URL filter installations (§3, Figure 1).
//!
//! scan → keyword search (every keyword × every ccTLD) → WhatWeb-style
//! validation → MaxMind/Team-Cymru geolocation.

use std::collections::{BTreeMap, BTreeSet};

use filterwatch_fingerprint::FingerprintEngine;
use filterwatch_geodb::{AsnDb, GeoDb};
use filterwatch_netsim::{Internet, IpAddr};
use filterwatch_products::ProductKind;
use filterwatch_scanner::{keywords, ScanEngine, ScanIndex};

use crate::geo::{build_asndb, build_geodb};
use crate::report::TextTable;

/// One validated installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Installation {
    /// Address hosting the visible installation.
    pub ip: IpAddr,
    /// The validated product.
    pub product: ProductKind,
    /// Country code (from the geolocation database).
    pub country: String,
    /// Origin AS number (from the whois database).
    pub asn: Option<u32>,
    /// Origin AS name.
    pub as_name: String,
    /// The Shodan keywords that surfaced the candidate.
    pub keywords: Vec<String>,
    /// WhatWeb evidence lines that validated it.
    pub evidence: Vec<String>,
}

/// The full identification report.
#[derive(Debug, Clone)]
pub struct IdentificationReport {
    /// Validated installations, ordered by (product, country, ip).
    pub installations: Vec<Installation>,
    /// Keyword candidates per product *before* validation (addresses).
    pub candidates: BTreeMap<ProductKind, usize>,
    /// Total scan-index records.
    pub index_records: usize,
}

impl IdentificationReport {
    /// The Figure 1 view: countries hosting each product.
    pub fn figure1(&self) -> BTreeMap<ProductKind, BTreeSet<String>> {
        let mut map: BTreeMap<ProductKind, BTreeSet<String>> = BTreeMap::new();
        for inst in &self.installations {
            map.entry(inst.product)
                .or_default()
                .insert(inst.country.clone());
        }
        map
    }

    /// Installations of one product.
    pub fn of_product(&self, product: ProductKind) -> Vec<&Installation> {
        self.installations
            .iter()
            .filter(|i| i.product == product)
            .collect()
    }

    /// Render the installation table as stable text: one row per
    /// validated installation, verdict data only (no timing or quality
    /// noise). Chaos runs, permutation invariants and the differential
    /// runner all byte-compare on exactly this rendering.
    pub fn render_installations(&self) -> String {
        let mut table = TextTable::new(["Product", "Country", "ASN", "AS name", "IP"]);
        for inst in &self.installations {
            table.row([
                inst.product.name().to_string(),
                inst.country.clone(),
                inst.asn.map(|a| format!("AS{a}")).unwrap_or_default(),
                inst.as_name.clone(),
                inst.ip.to_string(),
            ]);
        }
        table.render()
    }

    /// Render the Figure 1 product→countries map as text.
    pub fn render_figure1(&self) -> String {
        let mut table = TextTable::new(["Product", "Countries with validated installations"]);
        for product in ProductKind::ALL {
            let countries = self
                .figure1()
                .get(&product)
                .map(|set| set.iter().cloned().collect::<Vec<_>>().join(", "))
                .unwrap_or_default();
            table.row([product.name().to_string(), countries]);
        }
        table.render()
    }
}

/// The identification pipeline with its engines.
pub struct IdentifyPipeline {
    scanner: ScanEngine,
    fingerprints: FingerprintEngine,
}

impl Default for IdentifyPipeline {
    fn default() -> Self {
        IdentifyPipeline::new()
    }
}

impl IdentifyPipeline {
    /// A pipeline with the default engines (Table 2 keyword and plugin
    /// tables).
    pub fn new() -> Self {
        IdentifyPipeline {
            scanner: ScanEngine::new(),
            fingerprints: FingerprintEngine::new(),
        }
    }

    /// Run the full pipeline against a simulated Internet.
    pub fn run(&self, net: &Internet) -> IdentificationReport {
        let telemetry = net.telemetry().clone();
        let span = telemetry.span_start(
            filterwatch_telemetry::stage::IDENTIFY,
            "scan + keyword search + validate",
            net.now().secs(),
        );
        let scope = if net.tracer().is_enabled() {
            net.tracer().open(
                filterwatch_trace::StepKind::Stage,
                net.now().secs(),
                &[("name", "identify")],
            )
        } else {
            filterwatch_trace::ScopeId::NONE
        };
        let index = self.scanner.scan(net);
        let report = self.run_on_index(net, &index);
        net.tracer().close(
            scope,
            net.now().secs(),
            &[("installations", &report.installations.len().to_string())],
        );
        telemetry.span_end(span, net.now().secs());
        report
    }

    /// Run search+validate+geolocate against an existing scan index,
    /// using databases derived from the registry ground truth.
    pub fn run_on_index(&self, net: &Internet, index: &ScanIndex) -> IdentificationReport {
        let geo = build_geodb(net.registry());
        let asn_db = build_asndb(net.registry());
        self.run_on_index_with_geo(net, index, &geo, &asn_db)
    }

    /// Run search+validate+geolocate with caller-supplied geolocation
    /// databases — the knob the geolocation-error ablation turns.
    pub fn run_on_index_with_geo(
        &self,
        net: &Internet,
        index: &ScanIndex,
        geo: &GeoDb,
        asn_db: &AsnDb,
    ) -> IdentificationReport {
        let cctlds: Vec<(String, String)> = net
            .registry()
            .countries()
            .map(|c| (c.code.as_str().to_string(), c.cctld.clone()))
            .collect();

        // The paper's keyword × ccTLD query form, as one batched sweep:
        // every product's keywords are fused into a single automaton
        // and matched against the in-scope corpus in one parallel pass,
        // instead of one full-index scan per (keyword, country) pair.
        let mut sweep = index.search_products(
            keywords::KEYWORD_TABLE,
            cctlds.iter().map(|(cc, tld)| (cc.as_str(), tld.as_str())),
        );

        let mut candidates: BTreeMap<ProductKind, usize> = BTreeMap::new();
        let mut installations = Vec::new();
        let mut seen: BTreeSet<(IpAddr, ProductKind)> = BTreeSet::new();

        for product in ProductKind::ALL {
            let candidate_ips: BTreeMap<IpAddr, Vec<String>> =
                sweep.remove(product.slug()).unwrap_or_default();
            candidates.insert(product, candidate_ips.len());

            // Validation: "when locating IP addresses of the URL filters,
            // we are not conservative, and rely on the following step to
            // confirm" — every candidate is fingerprinted.
            for (ip, kws) in candidate_ips {
                if net.tracer().recording() {
                    net.tracer().point(
                        filterwatch_trace::StepKind::Candidate,
                        net.now().secs(),
                        &[("ip", &ip.to_string()), ("product", product.slug())],
                    );
                }
                for finding in self.fingerprints.identify(net, ip) {
                    let Some(found) = ProductKind::ALL
                        .iter()
                        .find(|p| p.slug() == finding.product)
                        .copied()
                    else {
                        continue;
                    };
                    if !seen.insert((ip, found)) {
                        continue;
                    }
                    let (asn, as_name) = match asn_db.lookup(ip.value()) {
                        Some(rec) => (Some(rec.asn), rec.name.clone()),
                        None => (None, String::from("unknown")),
                    };
                    installations.push(Installation {
                        ip,
                        product: found,
                        country: geo.lookup(ip.value()).unwrap_or("??").to_string(),
                        asn,
                        as_name,
                        keywords: kws.clone(),
                        evidence: finding.evidence,
                    });
                }
            }
        }

        installations
            .sort_by(|a, b| (a.product, &a.country, a.ip).cmp(&(b.product, &b.country, b.ip)));

        let telemetry = net.telemetry();
        if telemetry.is_enabled() {
            for (product, &n) in &candidates {
                telemetry.counter_add("identify.candidates", product.slug(), n as u64);
            }
            for inst in &installations {
                telemetry.counter_add("identify.installations", inst.product.slug(), 1);
            }
            // Sweep-plan cache effectiveness: repeat sweeps against an
            // unchanged index epoch should be all hits.
            let (cache_hits, cache_misses) = index.sweep_cache_stats();
            telemetry.counter_add("identify.sweep_cache", "hit", cache_hits);
            telemetry.counter_add("identify.sweep_cache", "miss", cache_misses);
            telemetry.event(
                net.now().secs(),
                "identify.done",
                &[
                    ("index_records", &index.len().to_string()),
                    ("installations", &installations.len().to_string()),
                ],
            );
        }

        IdentificationReport {
            installations,
            candidates,
            index_records: index.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn pipeline_finds_all_paper_products() {
        let w = World::paper(1);
        let report = IdentifyPipeline::new().run(&w.net);
        let fig1 = report.figure1();
        for product in ProductKind::ALL {
            assert!(
                fig1.get(&product).map(|s| !s.is_empty()).unwrap_or(false),
                "{product} not identified anywhere"
            );
        }
        // Spot-check the paper's claims.
        assert!(fig1[&ProductKind::BlueCoat].contains("AR"), "{fig1:?}");
        assert!(fig1[&ProductKind::BlueCoat].contains("US"));
        assert!(fig1[&ProductKind::Netsweeper].contains("QA"));
        assert!(fig1[&ProductKind::Netsweeper].contains("US"));
        assert!(fig1[&ProductKind::Websense].contains("US"));
        assert!(fig1[&ProductKind::SmartFilter].contains("PK"));
    }

    #[test]
    fn installations_carry_asn_and_evidence() {
        let w = World::paper(1);
        let report = IdentifyPipeline::new().run(&w.net);
        let ooredoo = report
            .installations
            .iter()
            .find(|i| i.product == ProductKind::Netsweeper && i.country == "QA")
            .expect("ooredoo install");
        assert_eq!(ooredoo.asn, Some(42298));
        assert!(!ooredoo.evidence.is_empty());
        assert!(!ooredoo.keywords.is_empty());
    }

    #[test]
    fn render_figure1_lists_products() {
        let w = World::paper(1);
        let report = IdentifyPipeline::new().run(&w.net);
        let text = report.render_figure1();
        assert!(text.contains("Blue Coat"));
        assert!(text.contains("Netsweeper"));
    }
}
