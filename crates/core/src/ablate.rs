//! Ablations: how the methodology degrades as its preconditions erode.
//!
//! The paper's discussion (§6) is qualitative about its limitations;
//! these sweeps make them quantitative in the simulation:
//!
//! * [`visibility_sweep`] — identification recall as a function of the
//!   fraction of installations that are externally visible. Confirmation
//!   runs alongside as the control: it never degrades, because it does
//!   not depend on visibility at all.
//! * [`acceptance_sweep`] — confirmation yield as a function of the
//!   vendor's submission-acceptance rate (Netsweeper's imperfect
//!   test-a-site reviews generalize to a curve).
//! * [`license_sweep`] — observed blocking rate as a function of how
//!   under-licensed a deployment is (the Yemen mechanism), with the
//!   analytic expectation alongside.

use filterwatch_geodb::GeoDb;
use filterwatch_products::license::LicensePool;
use filterwatch_products::{ProductKind, SubmitterProfile};
use filterwatch_scanner::ScanEngine;

use crate::confirm::{run_case_study, CaseStudySpec};
use crate::identify::IdentifyPipeline;
use crate::report::TextTable;
use crate::world::{SiteKind, World, WorldOptions};

/// One row of the visibility sweep.
#[derive(Debug, Clone)]
pub struct VisibilityRow {
    /// Fraction of consoles externally visible.
    pub visibility: f64,
    /// Installations the identification pipeline validated.
    pub identified: usize,
    /// Identification recall relative to the fully visible world.
    pub recall: f64,
    /// Whether the confirmation control still succeeded.
    pub confirmed: bool,
}

fn probe_spec() -> CaseStudySpec {
    CaseStudySpec {
        label: "ablation-probe".into(),
        product: ProductKind::SmartFilter,
        isp: "nournet".into(),
        date: "-".into(),
        site_kind: SiteKind::AdultImages,
        n_sites: 6,
        n_submit: 3,
        category_label: "Pornography".into(),
        pre_verify: true,
        wait_days: 4,
        retest_runs: 1,
        submitter: SubmitterProfile::COVERT,
    }
}

/// Sweep console visibility over `steps` (each in `[0, 1]`).
pub fn visibility_sweep(seed: u64, steps: &[f64]) -> Vec<VisibilityRow> {
    let baseline = {
        let world = World::paper(seed);
        IdentifyPipeline::new().run(&world.net).installations.len()
    };
    steps
        .iter()
        .map(|&visibility| {
            let mut world = World::build(WorldOptions {
                seed,
                console_visibility: visibility,
                ..WorldOptions::default()
            });
            let identified = IdentifyPipeline::new().run(&world.net).installations.len();
            let confirmed = run_case_study(&mut world, &probe_spec()).confirmed;
            VisibilityRow {
                visibility,
                identified,
                recall: if baseline == 0 {
                    0.0
                } else {
                    identified as f64 / baseline as f64
                },
                confirmed,
            }
        })
        .collect()
}

/// One row of the acceptance sweep.
#[derive(Debug, Clone)]
pub struct AcceptanceRow {
    /// Vendor submission acceptance probability.
    pub acceptance: f64,
    /// Submitted sites blocked at retest (of 6).
    pub submitted_blocked: usize,
    /// Whether the row still confirms.
    pub confirmed: bool,
}

/// Sweep the Netsweeper test-a-site acceptance rate and rerun the
/// Ooredoo case study at each point.
pub fn acceptance_sweep(seed: u64, rates: &[f64]) -> Vec<AcceptanceRow> {
    rates
        .iter()
        .map(|&acceptance| {
            let mut world = World::paper(seed);
            world
                .cloud(ProductKind::Netsweeper)
                .set_acceptance_rate(acceptance);
            let spec = CaseStudySpec {
                label: "acceptance-probe".into(),
                product: ProductKind::Netsweeper,
                isp: "ooredoo".into(),
                date: "-".into(),
                site_kind: SiteKind::ProxyService,
                n_sites: 12,
                n_submit: 6,
                category_label: "Proxy anonymizer".into(),
                pre_verify: false,
                wait_days: 4,
                retest_runs: 1,
                submitter: SubmitterProfile::COVERT,
            };
            let r = run_case_study(&mut world, &spec);
            AcceptanceRow {
                acceptance,
                submitted_blocked: r.submitted_blocked,
                confirmed: r.confirmed,
            }
        })
        .collect()
}

/// One row of the license sweep.
#[derive(Debug, Clone)]
pub struct LicenseRow {
    /// Licensed concurrent users.
    pub licensed: u32,
    /// Peak demand.
    pub peak: u32,
    /// Empirical fraction of flows that bypassed filtering.
    pub observed_bypass: f64,
    /// Analytic expectation.
    pub expected_bypass: f64,
}

/// Sweep license-pool sizing and compare empirical bypass rates with the
/// analytic expectation.
pub fn license_sweep(
    seed: u64,
    peak: u32,
    licensed_steps: &[u32],
    samples: usize,
) -> Vec<LicenseRow> {
    licensed_steps
        .iter()
        .map(|&licensed| {
            let pool = LicensePool::new(licensed, peak, seed, &format!("sweep/{licensed}"));
            let bypassed = (0..samples).filter(|_| pool.filtering_offline()).count();
            LicenseRow {
                licensed,
                peak,
                observed_bypass: bypassed as f64 / samples as f64,
                expected_bypass: pool.expected_bypass_rate(),
            }
        })
        .collect()
}

/// One row of the geolocation-error sweep.
#[derive(Debug, Clone)]
pub struct GeoErrorRow {
    /// Fraction of prefixes whose country label was corrupted.
    pub error_rate: f64,
    /// Installations whose reported country matched ground truth.
    pub correct_country: usize,
    /// Installations found (constant — geolocation does not gate
    /// discovery, only attribution).
    pub total: usize,
}

/// Sweep the quality of the consumer-side geolocation database, in the
/// Internet-Census workflow where enrichment is the consumer's problem:
/// a corrupted fraction of prefixes is attributed to the wrong country,
/// and installation discovery is unaffected while country attribution
/// degrades proportionally.
pub fn geo_error_sweep(seed: u64, error_rates: &[f64]) -> Vec<GeoErrorRow> {
    use crate::identify::IdentifyPipeline;

    let world = World::paper(seed);
    let index = ScanEngine::new().scan(&world.net);
    let truth_geo = crate::geo::build_geodb(world.net.registry());
    let asn_db = crate::geo::build_asndb(world.net.registry());
    let pipeline = IdentifyPipeline::new();

    error_rates
        .iter()
        .map(|&error_rate| {
            let geo = corrupted_geodb(world.net.registry(), seed, error_rate);
            let report = pipeline.run_on_index_with_geo(&world.net, &index, &geo, &asn_db);
            let correct = report
                .installations
                .iter()
                .filter(|i| truth_geo.lookup(i.ip.value()) == Some(i.country.as_str()))
                .count();
            GeoErrorRow {
                error_rate,
                correct_country: correct,
                total: report.installations.len(),
            }
        })
        .collect()
}

/// Build a geolocation database where each prefix's country is swapped
/// for another registered country with probability `error_rate`
/// (deterministically per `(seed, prefix)`).
fn corrupted_geodb(registry: &filterwatch_netsim::Registry, seed: u64, error_rate: f64) -> GeoDb {
    let countries: Vec<String> = registry
        .countries()
        .map(|c| c.code.as_str().to_string())
        .collect();
    let mut db = GeoDb::new();
    for &(cidr, asn) in registry.prefixes() {
        let Some(rec) = registry.as_record(asn) else {
            continue;
        };
        let label = format!("geo-error/{cidr}");
        let draw = (filterwatch_netsim::rng::mix(seed, &label) >> 11) as f64 / (1u64 << 53) as f64;
        let country = if draw < error_rate {
            // Pick a deterministic *different* country.
            let idx = (filterwatch_netsim::rng::mix(seed, &format!("{label}/pick"))
                % countries.len() as u64) as usize;
            let candidate = &countries[idx];
            if candidate == rec.country.as_str() {
                countries[(idx + 1) % countries.len()].clone()
            } else {
                candidate.clone()
            }
        } else {
            rec.country.as_str().to_string()
        };
        db.add_range(cidr.first().value(), cidr.last().value(), &country);
    }
    db.finish();
    db
}

/// Render the geolocation-error sweep as a text table.
pub fn render_geo_error(rows: &[GeoErrorRow]) -> String {
    let mut t = TextTable::new([
        "DB error rate",
        "Installations found",
        "Correct country",
        "Attribution accuracy",
    ]);
    for r in rows {
        t.row([
            format!("{:.0}%", r.error_rate * 100.0),
            r.total.to_string(),
            r.correct_country.to_string(),
            if r.total == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", r.correct_country as f64 / r.total as f64)
            },
        ]);
    }
    t.render()
}

/// Render the visibility sweep as a text table.
pub fn render_visibility(rows: &[VisibilityRow]) -> String {
    let mut t = TextTable::new(["Visibility", "Identified", "Recall", "Confirmation control"]);
    for r in rows {
        t.row([
            format!("{:.0}%", r.visibility * 100.0),
            r.identified.to_string(),
            format!("{:.2}", r.recall),
            if r.confirmed {
                "confirmed".into()
            } else {
                "FAILED".to_string()
            },
        ]);
    }
    t.render()
}

/// Render the acceptance sweep as a text table.
pub fn render_acceptance(rows: &[AcceptanceRow]) -> String {
    let mut t = TextTable::new(["Acceptance rate", "Submitted blocked (of 6)", "Confirmed?"]);
    for r in rows {
        t.row([
            format!("{:.2}", r.acceptance),
            r.submitted_blocked.to_string(),
            if r.confirmed {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    t.render()
}

/// Render the license sweep as a text table.
pub fn render_license(rows: &[LicenseRow]) -> String {
    let mut t = TextTable::new([
        "Licensed",
        "Peak demand",
        "Observed bypass",
        "Expected bypass",
    ]);
    for r in rows {
        t.row([
            r.licensed.to_string(),
            r.peak.to_string(),
            format!("{:.3}", r.observed_bypass),
            format!("{:.3}", r.expected_bypass),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn visibility_recall_is_monotone_and_confirmation_flat() {
        let rows = visibility_sweep(DEFAULT_SEED, &[0.0, 0.5, 1.0]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].identified, 0);
        assert!(rows[1].identified > 0);
        assert!(rows[1].identified < rows[2].identified);
        assert!((rows[2].recall - 1.0).abs() < f64::EPSILON);
        // Confirmation never cares about visibility.
        assert!(rows.iter().all(|r| r.confirmed), "{rows:?}");
    }

    #[test]
    fn acceptance_zero_kills_confirmation_one_maximizes_it() {
        let rows = acceptance_sweep(DEFAULT_SEED, &[0.0, 1.0]);
        assert_eq!(rows[0].submitted_blocked, 0);
        assert!(!rows[0].confirmed);
        assert_eq!(rows[1].submitted_blocked, 6);
        assert!(rows[1].confirmed);
    }

    #[test]
    fn license_sweep_matches_expectation() {
        let rows = license_sweep(1, 16, &[0, 8, 16], 4000);
        for r in &rows {
            assert!(
                (r.observed_bypass - r.expected_bypass).abs() < 0.05,
                "{r:?}"
            );
        }
        // Fully licensed: never bypasses.
        assert_eq!(rows[2].observed_bypass, 0.0);
    }

    #[test]
    fn geo_error_degrades_attribution_not_discovery() {
        let rows = geo_error_sweep(DEFAULT_SEED, &[0.0, 0.5, 1.0]);
        let total = rows[0].total;
        assert!(total > 0);
        // Discovery is constant across error rates.
        assert!(rows.iter().all(|r| r.total == total), "{rows:?}");
        // Perfect DB: perfect attribution; full corruption: none correct.
        assert_eq!(rows[0].correct_country, total);
        assert_eq!(rows[2].correct_country, 0);
        assert!(
            rows[1].correct_country > 0 && rows[1].correct_country < total,
            "{rows:?}"
        );
    }

    #[test]
    fn renderers_produce_tables() {
        let v = render_visibility(&visibility_sweep(1, &[1.0]));
        assert!(v.contains("Recall"));
        let l = render_license(&license_sweep(1, 8, &[4], 100));
        assert!(l.contains("bypass"));
    }
}
