//! Stage 2: confirming censorship via vendor submission channels
//! (§4, Table 3).
//!
//! "The basic idea is to test sites (under our control) that are not
//! blocked within the ISP, and then submit a subset of these sites to
//! the appropriate URL filter vendor. After 3-5 days, we retest the
//! sites and observe whether or not the submitted sites are blocked."

use filterwatch_measure::{MeasurementClient, MeasurementQuality};
use filterwatch_products::{ProductKind, SubmitterProfile};

use crate::report::TextTable;
use crate::world::{ControlledSite, SiteKind, World};

/// Parameters of one case study (one Table 3 row).
#[derive(Debug, Clone)]
pub struct CaseStudySpec {
    /// Row label.
    pub label: String,
    /// The vendor whose submission channel is exercised.
    pub product: ProductKind,
    /// Network name of the ISP under test (must have a field vantage).
    pub isp: String,
    /// Date label for the report (metadata only).
    pub date: String,
    /// Content hosted on the controlled sites.
    pub site_kind: SiteKind,
    /// Number of controlled sites created.
    pub n_sites: usize,
    /// How many of them are submitted.
    pub n_submit: usize,
    /// Category label for the report row.
    pub category_label: String,
    /// Verify accessibility before submitting. For Netsweeper this must
    /// be `false`: accessing the sites queues them for categorization
    /// (§4.4), so the paper submits first and "operates on the
    /// assumption that none of our sites will be blocked prior".
    pub pre_verify: bool,
    /// Days to wait before the retest (the paper's 3–5).
    pub wait_days: u64,
    /// Retest repetitions per site; >1 for ISPs with inconsistent
    /// blocking (§4.4 Challenge 2) — a site counts as blocked if any
    /// run blocks it.
    pub retest_runs: usize,
    /// How the submission presents to the vendor (§6.2).
    pub submitter: SubmitterProfile,
}

/// The outcome of one case study.
#[derive(Debug, Clone)]
pub struct CaseStudyResult {
    /// The spec that produced this result.
    pub spec: CaseStudySpec,
    /// Of the created sites, how many were accessible before submission
    /// (`None` when pre-verification was skipped).
    pub accessible_before: Option<usize>,
    /// Submissions the vendor channel acknowledged as accepted.
    pub submissions_accepted: usize,
    /// Submitted sites found blocked at retest.
    pub submitted_blocked: usize,
    /// Held-out (unsubmitted) sites found blocked at retest.
    pub holdout_blocked: usize,
    /// Block-page product attributions seen at retest (deduplicated).
    pub attributed_products: Vec<String>,
    /// Retest verdicts the machinery declined to render (quorum
    /// disagreement or breaker skips); zero on clean paths.
    pub retest_inconclusive: usize,
    /// Measurement-quality counters the case study's client accumulated
    /// (retries, breaker trips, quorum trials).
    pub quality: MeasurementQuality,
    /// The §4.2 verdict: is the product confirmed to be used for
    /// censorship in this ISP?
    pub confirmed: bool,
}

impl CaseStudyResult {
    /// `"5/10"`-style created/submitted counts for the report.
    pub fn submitted_of_created(&self) -> String {
        format!("{}/{}", self.spec.n_submit, self.spec.n_sites)
    }

    /// `"5/5"`-style blocked/submitted counts for the report.
    pub fn blocked_of_submitted(&self) -> String {
        format!("{}/{}", self.submitted_blocked, self.spec.n_submit)
    }
}

/// A case study paused between stage boundaries.
///
/// [`begin_case`] produces one; [`submit_case`], [`announce_wait`] and
/// [`retest_case`] carry it through the submit → wait → retest
/// protocol. [`run_case_study`] is the thin linear composition; the
/// orchestrator drives the same functions with the wait serviced by a
/// timer wheel instead of an inline clock advance, and a checkpoint
/// written at every boundary.
pub struct CaseInProgress {
    /// The spec being executed.
    pub spec: CaseStudySpec,
    sites: Vec<ControlledSite>,
    client: MeasurementClient,
    accessible_before: Option<usize>,
    submissions_accepted: usize,
    case_scope: filterwatch_trace::ScopeId,
    submit_span: filterwatch_telemetry::SpanId,
    submit_scope: filterwatch_trace::ScopeId,
}

/// Baseline stage: open the case's telemetry/trace scopes, create the
/// controlled sites, and (unless the vendor ordering forbids it)
/// pre-verify their accessibility from the in-country vantage.
pub fn begin_case(world: &mut World, spec: &CaseStudySpec) -> CaseInProgress {
    assert!(
        spec.n_submit <= spec.n_sites,
        "cannot submit more than created"
    );
    let telemetry = world.net.telemetry().clone();
    let tracer = world.net.tracer().clone();
    let case_scope = if tracer.is_enabled() {
        tracer.open(
            filterwatch_trace::StepKind::Case,
            world.net.now().secs(),
            &[
                ("case", &spec.label.to_lowercase().replace([' ', '/'], "-")),
                ("isp", &spec.isp),
                ("product", spec.product.slug()),
            ],
        )
    } else {
        filterwatch_trace::ScopeId::NONE
    };
    let submit_span = telemetry.span_start(
        filterwatch_telemetry::stage::CONFIRM_SUBMIT,
        &spec.label,
        world.net.now().secs(),
    );
    let submit_scope = if tracer.is_enabled() {
        tracer.open(
            filterwatch_trace::StepKind::Stage,
            world.net.now().secs(),
            &[("name", "confirm.submit")],
        )
    } else {
        filterwatch_trace::ScopeId::NONE
    };
    let sites = world.create_controlled_sites(spec.site_kind, spec.n_sites);
    let client = world.client(&spec.isp);

    // Pre-verification (or the Netsweeper ordering: submit first).
    let accessible_before = if spec.pre_verify {
        let accessible = sites
            .iter()
            .filter(|s| {
                client
                    .test_url(&world.net, &s.test_url())
                    .verdict
                    .is_accessible()
            })
            .count();
        Some(accessible)
    } else {
        None
    };

    CaseInProgress {
        spec: spec.clone(),
        sites,
        client,
        accessible_before,
        submissions_accepted: 0,
        case_scope,
        submit_span,
        submit_scope,
    }
}

/// Submit stage: hand the first `n_submit` sites to the vendor channel,
/// perform the in-country accesses the submit-first ordering requires,
/// and close the submit span.
pub fn submit_case(world: &mut World, case: &mut CaseInProgress) {
    let spec = &case.spec;
    let telemetry = world.net.telemetry().clone();
    let tracer = world.net.tracer().clone();

    // Submit the first n_submit sites to the vendor.
    let cloud = world.cloud(spec.product).clone();
    let now = world.net.now();
    let mut submissions_accepted = 0;
    for site in &case.sites[..spec.n_submit] {
        let receipt = cloud.submit(&site.submit_url(), spec.submitter, now);
        if tracer.recording() {
            tracer.point(
                filterwatch_trace::StepKind::Submit,
                world.net.now().secs(),
                &[
                    ("url", &site.submit_url().to_string()),
                    ("accepted", if receipt.accepted { "yes" } else { "no" }),
                ],
            );
        }
        if receipt.accepted {
            submissions_accepted += 1;
        }
    }

    // For the submit-first ordering, the paper still *accesses* all the
    // domains in-country (which is what queues them at Netsweeper).
    if !spec.pre_verify {
        for site in &case.sites {
            let _ = case.client.test_url(&world.net, &site.test_url());
        }
    }

    // Submissions accepted by the vendor now sit in its review queue
    // until the retest observes the outcome.
    telemetry.counter_add(
        "confirm.submissions",
        spec.product.slug(),
        submissions_accepted as u64,
    );
    telemetry.gauge_set(
        "confirm.queue_depth",
        spec.product.slug(),
        submissions_accepted as i64,
    );
    tracer.close(case.submit_scope, world.net.now().secs(), &[]);
    telemetry.span_end(case.submit_span, world.net.now().secs());
    case.submissions_accepted = submissions_accepted;
}

/// Wait stage, announce half: record the wait in the trace and return
/// the absolute virtual-clock deadline (in seconds) at which the retest
/// may begin. The caller owns the clock advance — inline for the linear
/// driver, a timer-wheel wakeup for the orchestrator — so both reach
/// the deadline by the same arithmetic.
pub fn announce_wait(world: &World, case: &CaseInProgress) -> u64 {
    let tracer = world.net.tracer().clone();
    if tracer.recording() {
        tracer.point(
            filterwatch_trace::StepKind::Wait,
            world.net.now().secs(),
            &[("days", &case.spec.wait_days.to_string())],
        );
    }
    world.net.now().plus_days(case.spec.wait_days).secs()
}

/// Retest stage: re-fetch every site from the in-country vantage,
/// render the §4.2 verdict, and close the case's scopes.
pub fn retest_case(world: &mut World, case: CaseInProgress) -> CaseStudyResult {
    let CaseInProgress {
        spec,
        sites,
        client,
        accessible_before,
        submissions_accepted,
        case_scope,
        submit_span: _,
        submit_scope: _,
    } = case;
    let telemetry = world.net.telemetry().clone();
    let tracer = world.net.tracer().clone();
    let retest_span = telemetry.span_start(
        filterwatch_telemetry::stage::CONFIRM_RETEST,
        &spec.label,
        world.net.now().secs(),
    );
    let retest_scope = if tracer.is_enabled() {
        tracer.open(
            filterwatch_trace::StepKind::Stage,
            world.net.now().secs(),
            &[("name", "confirm.retest")],
        )
    } else {
        filterwatch_trace::ScopeId::NONE
    };
    // Retest: a site is blocked if any retest run blocks it.
    let mut blocked = vec![false; sites.len()];
    let mut attributed: Vec<String> = Vec::new();
    let mut retest_inconclusive = 0;
    for _ in 0..spec.retest_runs.max(1) {
        for (i, site) in sites.iter().enumerate() {
            let v = client.test_url(&world.net, &site.test_url());
            if v.verdict.is_blocked() {
                blocked[i] = true;
                if let Some(p) = v.verdict.blocked_by() {
                    if !attributed.contains(&p.to_string()) {
                        attributed.push(p.to_string());
                    }
                }
            } else if v.verdict.is_inconclusive() {
                retest_inconclusive += 1;
            }
        }
    }
    let submitted_blocked = blocked[..spec.n_submit].iter().filter(|&&b| b).count();
    let holdout_blocked = blocked[spec.n_submit..].iter().filter(|&&b| b).count();

    // Ethics note (§4.6): the simulated adult-image sites only ever host
    // placeholder markers, and the test URL is the benign object, so
    // there is nothing to take down; domains are never reused (the forge
    // remembers every mint).

    // Confirmation: the majority of submitted sites became blocked.
    let confirmed = submitted_blocked * 2 > spec.n_submit;

    telemetry.gauge_set("confirm.queue_depth", spec.product.slug(), 0);
    telemetry.event(
        world.net.now().secs(),
        "confirm.verdict",
        &[
            ("case", &spec.label.to_lowercase().replace([' ', '/'], "-")),
            ("blocked", &submitted_blocked.to_string()),
            ("submitted", &spec.n_submit.to_string()),
            ("confirmed", if confirmed { "yes" } else { "no" }),
        ],
    );
    tracer.close(retest_scope, world.net.now().secs(), &[]);
    if tracer.recording() {
        tracer.point(
            filterwatch_trace::StepKind::Verdict,
            world.net.now().secs(),
            &[
                (
                    "verdict",
                    if confirmed {
                        "confirmed"
                    } else {
                        "unconfirmed"
                    },
                ),
                ("blocked", &submitted_blocked.to_string()),
                ("submitted", &spec.n_submit.to_string()),
            ],
        );
    }
    tracer.close(
        case_scope,
        world.net.now().secs(),
        &[("confirmed", if confirmed { "yes" } else { "no" })],
    );
    telemetry.span_end(retest_span, world.net.now().secs());

    CaseStudyResult {
        spec,
        accessible_before,
        submissions_accepted,
        submitted_blocked,
        holdout_blocked,
        attributed_products: attributed,
        retest_inconclusive,
        quality: client.quality(),
        confirmed,
    }
}

/// Run one case study against the world, advancing its virtual clock:
/// the thin linear composition of the stage functions.
pub fn run_case_study(world: &mut World, spec: &CaseStudySpec) -> CaseStudyResult {
    let mut case = begin_case(world, spec);
    submit_case(world, &mut case);
    let _deadline = announce_wait(world, &case);
    world.net.advance_days(spec.wait_days);
    retest_case(world, case)
}

/// The ten case studies of Table 3, in row order.
pub fn table3_specs() -> Vec<CaseStudySpec> {
    let covert = SubmitterProfile::COVERT;
    vec![
        CaseStudySpec {
            label: "Blue Coat / UAE / Etisalat".into(),
            product: ProductKind::BlueCoat,
            isp: "etisalat".into(),
            date: "4/2013".into(),
            site_kind: SiteKind::ProxyService,
            n_sites: 6,
            n_submit: 3,
            category_label: "Proxy Avoidance".into(),
            pre_verify: true,
            wait_days: 5,
            retest_runs: 1,
            submitter: covert,
        },
        CaseStudySpec {
            label: "Blue Coat / Qatar / Ooredoo".into(),
            product: ProductKind::BlueCoat,
            isp: "ooredoo".into(),
            date: "4/2013".into(),
            site_kind: SiteKind::ProxyService,
            n_sites: 6,
            n_submit: 3,
            category_label: "Proxy Avoidance".into(),
            pre_verify: true,
            wait_days: 5,
            retest_runs: 1,
            submitter: covert,
        },
        CaseStudySpec {
            label: "McAfee SmartFilter / Qatar / Ooredoo".into(),
            product: ProductKind::SmartFilter,
            isp: "ooredoo".into(),
            date: "4/2013".into(),
            site_kind: SiteKind::AdultImages,
            n_sites: 10,
            n_submit: 5,
            category_label: "Pornography".into(),
            pre_verify: true,
            wait_days: 4,
            retest_runs: 1,
            submitter: covert,
        },
        CaseStudySpec {
            label: "McAfee SmartFilter / Saudi Arabia / Bayanat Al-Oula".into(),
            product: ProductKind::SmartFilter,
            isp: "bayanat".into(),
            date: "9/2012".into(),
            site_kind: SiteKind::AdultImages,
            n_sites: 10,
            n_submit: 5,
            category_label: "Pornography".into(),
            pre_verify: true,
            wait_days: 4,
            retest_runs: 1,
            submitter: covert,
        },
        CaseStudySpec {
            label: "McAfee SmartFilter / Saudi Arabia / Nournet".into(),
            product: ProductKind::SmartFilter,
            isp: "nournet".into(),
            date: "5/2013".into(),
            site_kind: SiteKind::AdultImages,
            n_sites: 10,
            n_submit: 5,
            category_label: "Pornography".into(),
            pre_verify: true,
            wait_days: 4,
            retest_runs: 1,
            submitter: covert,
        },
        CaseStudySpec {
            label: "McAfee SmartFilter / UAE / Etisalat".into(),
            product: ProductKind::SmartFilter,
            isp: "etisalat".into(),
            date: "9/2012".into(),
            site_kind: SiteKind::ProxyService,
            n_sites: 10,
            n_submit: 5,
            category_label: "Anonymizers".into(),
            pre_verify: true,
            wait_days: 4,
            retest_runs: 1,
            submitter: covert,
        },
        CaseStudySpec {
            label: "McAfee SmartFilter / UAE / Etisalat".into(),
            product: ProductKind::SmartFilter,
            isp: "etisalat".into(),
            date: "4/2013".into(),
            site_kind: SiteKind::AdultImages,
            n_sites: 10,
            n_submit: 5,
            category_label: "Pornography".into(),
            pre_verify: true,
            wait_days: 4,
            retest_runs: 1,
            submitter: covert,
        },
        CaseStudySpec {
            label: "Netsweeper / Qatar / Ooredoo".into(),
            product: ProductKind::Netsweeper,
            isp: "ooredoo".into(),
            date: "8/2013".into(),
            site_kind: SiteKind::ProxyService,
            n_sites: 12,
            n_submit: 6,
            category_label: "Proxy anonymizer".into(),
            pre_verify: false,
            wait_days: 4,
            retest_runs: 1,
            submitter: covert,
        },
        CaseStudySpec {
            label: "Netsweeper / UAE / Du".into(),
            product: ProductKind::Netsweeper,
            isp: "du".into(),
            date: "3/2013".into(),
            site_kind: SiteKind::ProxyService,
            n_sites: 12,
            n_submit: 6,
            category_label: "Proxy anonymizer".into(),
            pre_verify: false,
            wait_days: 4,
            retest_runs: 1,
            submitter: covert,
        },
        CaseStudySpec {
            label: "Netsweeper / Yemen / YemenNet".into(),
            product: ProductKind::Netsweeper,
            isp: "yemennet".into(),
            date: "3/2013".into(),
            site_kind: SiteKind::ProxyService,
            n_sites: 12,
            n_submit: 6,
            category_label: "Proxy anonymizer".into(),
            pre_verify: false,
            wait_days: 4,
            retest_runs: 3,
            submitter: covert,
        },
    ]
}

/// Run all Table 3 case studies in order on one world.
pub fn run_table3(world: &mut World) -> Vec<CaseStudyResult> {
    table3_specs()
        .iter()
        .map(|spec| run_case_study(world, spec))
        .collect()
}

/// Render case study results as the Table 3 text table.
pub fn render_table3(results: &[CaseStudyResult]) -> String {
    let mut table = TextTable::new([
        "Product",
        "ISP",
        "Date",
        "Sites submitted",
        "Category",
        "Sites blocked",
        "Confirmed?",
    ]);
    for r in results {
        let isp_desc = {
            let parts: Vec<&str> = r.spec.label.split(" / ").collect();
            parts.last().map(|s| s.to_string()).unwrap_or_default()
        };
        table.row([
            r.spec.product.name().to_string(),
            isp_desc,
            r.spec.date.clone(),
            r.submitted_of_created(),
            r.spec.category_label.clone(),
            r.blocked_of_submitted(),
            if r.confirmed {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use crate::DEFAULT_SEED;

    #[test]
    fn smartfilter_saudi_confirms_five_of_five() {
        let mut w = World::paper(DEFAULT_SEED);
        let spec = &table3_specs()[3]; // Bayanat Al-Oula
        let r = run_case_study(&mut w, spec);
        assert_eq!(r.accessible_before, Some(10));
        assert_eq!(r.submitted_blocked, 5, "{r:?}");
        assert_eq!(r.holdout_blocked, 0);
        assert!(r.confirmed);
        assert_eq!(r.attributed_products, vec!["smartfilter".to_string()]);
    }

    #[test]
    fn bluecoat_etisalat_not_confirmed() {
        let mut w = World::paper(DEFAULT_SEED);
        let spec = &table3_specs()[0];
        let r = run_case_study(&mut w, spec);
        assert_eq!(r.submitted_blocked, 0, "{r:?}");
        assert!(!r.confirmed);
        // The submissions were accepted by the vendor — the ISP just
        // does not filter with Blue Coat (Challenge 3).
        assert_eq!(r.submissions_accepted, 3);
    }

    #[test]
    fn netsweeper_ooredoo_confirms() {
        let mut w = World::paper(DEFAULT_SEED);
        let spec = &table3_specs()[7];
        let r = run_case_study(&mut w, spec);
        assert!(r.confirmed, "{r:?}");
        // test-a-site reviews are imperfect (per-domain draws), so the
        // standalone run asserts the confirmation verdict, not an exact
        // count; the pinned-seed full-table test checks exact counts.
        assert!(r.submitted_blocked >= 4, "{r:?}");
        assert_eq!(
            r.accessible_before, None,
            "Netsweeper skips pre-verification"
        );
    }

    #[test]
    fn full_table3_shape_matches_paper() {
        let mut w = World::paper(DEFAULT_SEED);
        let results = run_table3(&mut w);
        assert_eq!(results.len(), 10);
        // Rows 0-2 (Blue Coat ×2, SmartFilter Qatar): not confirmed.
        for r in &results[..3] {
            assert!(!r.confirmed, "{}: {r:?}", r.spec.label);
            assert_eq!(r.submitted_blocked, 0, "{}", r.spec.label);
        }
        // Rows 3-9: confirmed.
        for r in &results[3..] {
            assert!(r.confirmed, "{}: {:?}", r.spec.label, r);
        }
        // SmartFilter rows block five of five.
        for r in &results[3..7] {
            assert_eq!(r.submitted_blocked, 5, "{}", r.spec.label);
        }
        // Netsweeper rows reproduce the paper exactly with the pinned
        // default seed: 6/6 in Ooredoo, 5/6 in Du, 6/6 in YemenNet.
        let netsweeper_counts: Vec<usize> =
            results[7..].iter().map(|r| r.submitted_blocked).collect();
        assert_eq!(netsweeper_counts, vec![6, 5, 6]);
        let text = render_table3(&results);
        assert!(text.contains("Etisalat"));
        assert!(text.contains("5/10"));
    }

    #[test]
    #[should_panic(expected = "cannot submit more")]
    fn oversubmission_rejected() {
        let mut w = World::paper(1);
        let mut spec = table3_specs()[0].clone();
        spec.n_submit = spec.n_sites + 1;
        run_case_study(&mut w, &spec);
    }
}
