//! Plain-text table rendering for reports and the table regenerators.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(cell);
                if i + 1 < cells.len() {
                    line.push_str(&" ".repeat(widths[i].saturating_sub(cell.chars().count()) + 2));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["Product", "Country", "Confirmed?"]);
        t.row(["Netsweeper", "Qatar", "yes"]);
        t.row(["Blue Coat", "UAE", "no"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Product"));
        assert!(lines[2].starts_with("Netsweeper"));
        // Columns align: "Country" starts at the same offset everywhere.
        let col = lines[0].find("Country").unwrap();
        assert_eq!(&lines[2][col..col + 5], "Qatar");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["A", "B"]);
        t.row(["only-a"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("only-a"));
    }
}
