//! filterwatch: the paper's methodology as a library.
//!
//! This crate reproduces the three-stage methodology of *"A Method for
//! Identifying and Confirming the Use of URL Filtering Products for
//! Censorship"* (Dalek et al., IMC 2013) against the deterministic
//! simulated Internet of `filterwatch-netsim`:
//!
//! 1. [`identify`] — scan the address space (Shodan analog), search the
//!    index with the Table 2 keyword table across every ccTLD, validate
//!    candidates with WhatWeb-style fingerprinting, and geolocate the
//!    validated installations (Figure 1);
//! 2. [`confirm`] — stand up researcher-controlled domains, verify them
//!    reachable in the target ISP, submit half to the vendor's
//!    categorization channel, advance 3–5 virtual days, and retest
//!    (Table 3, including the §4.3–4.5 challenges);
//! 3. [`characterize`] — fetch ONI global/local test lists from field
//!    and lab vantage points and roll blocked URLs up into the six
//!    protected-content themes of Table 4.
//!
//! [`world`] builds the full 2012–2013 scenario; [`evade`] reruns the
//! pipeline under the §6 vendor evasion tactics (Table 5); [`report`]
//! renders the text tables the `tables` binary prints.
//!
//! # Quick start
//!
//! ```
//! use filterwatch_core::confirm::{run_case_study, CaseStudySpec};
//! use filterwatch_core::world::{SiteKind, World};
//! use filterwatch_products::{ProductKind, SubmitterProfile};
//!
//! let mut world = World::paper(7);
//! let result = run_case_study(
//!     &mut world,
//!     &CaseStudySpec {
//!         label: "demo".into(),
//!         product: ProductKind::SmartFilter,
//!         isp: "nournet".into(),
//!         date: "5/2013".into(),
//!         site_kind: SiteKind::AdultImages,
//!         n_sites: 4,
//!         n_submit: 2,
//!         category_label: "Pornography".into(),
//!         pre_verify: true,
//!         wait_days: 4,
//!         retest_runs: 1,
//!         submitter: SubmitterProfile::NAIVE,
//!     },
//! );
//! assert!(result.confirmed);
//! ```

pub mod ablate;
pub mod campaign;
pub mod characterize;
pub mod confirm;
pub mod evade;
pub mod geo;
pub mod identify;
pub mod legacy;
pub mod probes;
pub mod report;
pub mod world;

pub use campaign::{Campaign, CampaignReport};
pub use world::{World, WorldOptions, DEFAULT_SEED};
