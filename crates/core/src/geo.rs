//! Building the MaxMind/Team-Cymru-analog databases from the simulated
//! registry's ground truth.
//!
//! §3.1: "we use geolocation data from MaxMind and whois data from
//! TeamCymru to map the IP addresses matching WhatWeb signatures to
//! country-level location and autonomous system (AS) number." In the
//! simulation both databases are *derived views* of the registry — exact
//! by construction. (The geodb crate itself is registry-agnostic, so
//! deliberately corrupted databases can be substituted to study
//! geolocation error.)

use filterwatch_geodb::{AsnDb, GeoDb};
use filterwatch_netsim::Registry;

/// Build the country-level geolocation database.
pub fn build_geodb(registry: &Registry) -> GeoDb {
    let mut db = GeoDb::new();
    for &(cidr, asn) in registry.prefixes() {
        if let Some(rec) = registry.as_record(asn) {
            db.add_range(
                cidr.first().value(),
                cidr.last().value(),
                rec.country.as_str(),
            );
        }
    }
    db.finish();
    db
}

/// Build the IP→origin-AS database.
pub fn build_asndb(registry: &Registry) -> AsnDb {
    let mut db = AsnDb::new();
    for &(cidr, asn) in registry.prefixes() {
        if let Some(rec) = registry.as_record(asn) {
            db.add_range(
                cidr.first().value(),
                cidr.last().value(),
                rec.asn.0,
                &rec.name,
                rec.country.as_str(),
            );
        }
    }
    db.finish();
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_netsim::Asn;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register_country("QA", "Qatar", "qa");
        r.register_country("YE", "Yemen", "ye");
        r.register_as(42298, "OOREDOO-QA", "QA");
        r.register_as(12486, "YEMENNET", "YE");
        r.allocate_prefix(Asn(42298), 1).unwrap();
        r.allocate_prefix(Asn(12486), 1).unwrap();
        r
    }

    #[test]
    fn geodb_matches_registry() {
        let r = registry();
        let db = build_geodb(&r);
        for &(cidr, _) in r.prefixes() {
            let expected = r.country_of(cidr.first()).unwrap();
            assert_eq!(db.lookup(cidr.first().value()), Some(expected.as_str()));
        }
        assert_eq!(db.lookup(0), None);
    }

    #[test]
    fn asndb_matches_registry() {
        let r = registry();
        let db = build_asndb(&r);
        let (cidr, asn) = r.prefixes()[1];
        let rec = db.lookup(cidr.first().value()).unwrap();
        assert_eq!(rec.asn, asn.0);
        assert_eq!(rec.name, "YEMENNET");
        assert!(db.whois_line(cidr.first().value()).contains("YEMENNET"));
    }
}
