//! Auxiliary §4 probes: the category test site, category availability
//! probing, and the inconsistency study.
//!
//! * [`run_denypagetests`] — §4.4's alternative validation: query the 66
//!   category-specific URLs of `denypagetests.netsweeper.com` from
//!   inside a deployment and read off which categories the operator
//!   enabled (the paper found exactly five in YemenNet).
//! * [`category_probe`] — §4.3 Challenge 1: before creating test sites,
//!   determine which vendor categories an ISP actually blocks by
//!   fetching *pre-categorized* well-known sites (Saudi Arabia blocked
//!   SmartFilter's pornography category but not its proxy category).
//! * [`inconsistency_probe`] — §4.4 Challenge 2: repeat a fixed URL set
//!   many times and measure flip-flopping verdicts (license-limited
//!   deployments filter intermittently).

use filterwatch_http::Url;
use filterwatch_products::netsweeper::DENYPAGETESTS_HOST;
use filterwatch_products::taxonomy::{self, netsweeper_category_name};
use filterwatch_products::ProductKind;
use filterwatch_urllists::{Category, TestList};

use crate::world::World;

/// Result of querying the Netsweeper category test site from a vantage.
#[derive(Debug, Clone)]
pub struct CategoryTestResult {
    /// `(catno, category name)` of every blocked test page.
    pub blocked: Vec<(u8, String)>,
    /// Number of test pages that loaded normally.
    pub open: usize,
}

impl CategoryTestResult {
    /// Names of the blocked categories, in catno order.
    pub fn blocked_names(&self) -> Vec<&str> {
        self.blocked.iter().map(|(_, n)| n.as_str()).collect()
    }
}

/// Query all 66 `denypagetests.netsweeper.com/category/catno/N` pages
/// from inside `isp`, repeating `runs` times (a page counts as blocked
/// if any run blocks it — license-limited deployments flicker).
pub fn run_denypagetests(world: &World, isp: &str, runs: usize) -> CategoryTestResult {
    let client = world.client(isp);
    let mut blocked = Vec::new();
    let mut open = 0;
    for catno in 1u8..=66 {
        let url = Url::parse(&format!(
            "http://{DENYPAGETESTS_HOST}/category/catno/{catno}"
        ))
        .expect("test url");
        let mut hit = false;
        for _ in 0..runs.max(1) {
            if client.test_url(&world.net, &url).verdict.is_blocked() {
                hit = true;
                break;
            }
        }
        if hit {
            let name = netsweeper_category_name(catno).unwrap_or("?").to_string();
            blocked.push((catno, name));
        } else {
            open += 1;
        }
    }
    CategoryTestResult { blocked, open }
}

/// One row of a category-availability probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryProbeRow {
    /// The ONI category probed.
    pub category: Category,
    /// The vendor's name for it.
    pub vendor_category: String,
    /// The pre-categorized representative URL fetched.
    pub url: String,
    /// Whether the ISP blocked it.
    pub blocked: bool,
}

/// Probe which of `categories` an ISP blocks, by fetching one well-known
/// (globally pre-categorized) site per category from the field vantage.
pub fn category_probe(
    world: &World,
    isp: &str,
    product: ProductKind,
    categories: &[Category],
) -> Vec<CategoryProbeRow> {
    let client = world.client(isp);
    let global = TestList::global(1);
    categories
        .iter()
        .map(|&cat| {
            let rep = global.in_category(cat)[0].url.clone();
            let url = Url::parse(&rep).expect("list url");
            let blocked = client.test_url(&world.net, &url).verdict.is_blocked();
            CategoryProbeRow {
                category: cat,
                vendor_category: taxonomy::vendor_category(product, cat).to_string(),
                url: rep,
                blocked,
            }
        })
        .collect()
}

/// The inconsistency study: per-run blocked counts over a fixed URL set.
#[derive(Debug, Clone)]
pub struct InconsistencyReport {
    /// URLs probed (all in categories the ISP nominally blocks).
    pub urls: Vec<String>,
    /// Blocked-verdict matrix: `matrix[run][url]`.
    pub matrix: Vec<Vec<bool>>,
}

impl InconsistencyReport {
    /// URLs that were blocked in some runs and accessible in others.
    pub fn inconsistent_urls(&self) -> usize {
        if self.matrix.is_empty() {
            return 0;
        }
        (0..self.urls.len())
            .filter(|&i| {
                let col: Vec<bool> = self.matrix.iter().map(|row| row[i]).collect();
                col.iter().any(|&b| b) && col.iter().any(|&b| !b)
            })
            .count()
    }

    /// Blocked count per run.
    pub fn per_run_blocked(&self) -> Vec<usize> {
        self.matrix
            .iter()
            .map(|row| row.iter().filter(|&&b| b).count())
            .collect()
    }
}

/// Repeat the nominally-blocked proxy URLs `runs` times inside `isp`.
pub fn inconsistency_probe(world: &World, isp: &str, runs: usize) -> InconsistencyReport {
    let client = world.client(isp);
    let global = TestList::global(2);
    let urls: Vec<String> = global
        .urls
        .iter()
        .filter(|u| {
            matches!(
                u.category,
                Category::AnonymizersProxies | Category::Vpn | Category::Translation
            )
        })
        .map(|u| u.url.clone())
        .collect();
    let parsed: Vec<Url> = urls.iter().map(|u| Url::parse(u).expect("url")).collect();
    let matrix = (0..runs)
        .map(|_| {
            parsed
                .iter()
                .map(|u| client.test_url(&world.net, u).verdict.is_blocked())
                .collect()
        })
        .collect();
    InconsistencyReport { urls, matrix }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn yemennet_denypagetests_matches_paper_exactly() {
        let w = World::paper(DEFAULT_SEED);
        let result = run_denypagetests(&w, "yemennet", 4);
        // §4.4: "five categories were blocked: adult images, phishing,
        // pornography, proxy anonymizers, and search keywords."
        assert_eq!(
            result.blocked_names(),
            // In catno order; the set matches the paper's five.
            vec![
                "Adult Images",
                "Pornography",
                "Phishing",
                "Proxy Anonymizer",
                "Search Keywords"
            ],
            "{result:?}"
        );
        assert_eq!(result.open, 61);
    }

    #[test]
    fn ooredoo_denypagetests_reflects_policy() {
        let w = World::paper(DEFAULT_SEED);
        let result = run_denypagetests(&w, "ooredoo", 1);
        let names = result.blocked_names();
        assert!(names.contains(&"Proxy Anonymizer"), "{names:?}");
        assert!(names.contains(&"Alternative Lifestyles"));
        assert!(!names.contains(&"Pornography"));
    }

    #[test]
    fn challenge1_category_probe_saudi_vs_uae() {
        let w = World::paper(DEFAULT_SEED);
        let cats = [Category::AnonymizersProxies, Category::Pornography];
        let saudi = category_probe(&w, "bayanat", ProductKind::SmartFilter, &cats);
        assert!(
            !saudi[0].blocked,
            "Saudi should not block proxies: {saudi:?}"
        );
        assert!(saudi[1].blocked, "Saudi should block pornography");
        let uae = category_probe(&w, "etisalat", ProductKind::SmartFilter, &cats);
        assert!(uae[0].blocked, "Etisalat blocks anonymizers");
        assert!(uae[1].blocked);
        assert_eq!(saudi[0].vendor_category, "Anonymizers");
    }

    #[test]
    fn challenge2_yemen_is_inconsistent_saudi_is_not() {
        let w = World::paper(DEFAULT_SEED);
        let yemen = inconsistency_probe(&w, "yemennet", 10);
        assert!(
            yemen.inconsistent_urls() > 0,
            "{:?}",
            yemen.per_run_blocked()
        );
        let runs = yemen.per_run_blocked();
        assert!(runs.iter().any(|&n| n < yemen.urls.len()), "{runs:?}");

        let saudi = inconsistency_probe(&w, "nournet", 10);
        // Saudi's SmartFilter doesn't block proxies at all — and does so
        // consistently.
        assert_eq!(saudi.inconsistent_urls(), 0);
        assert!(saudi.per_run_blocked().iter().all(|&n| n == 0));
    }
}
