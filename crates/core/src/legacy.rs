//! Vendor-withdrawal scenarios (§2.2 policy history).
//!
//! "In 2009, our identification of Websense in Yemen led to the vendor
//! discontinuing support of their product for the Yemen government" \[35\];
//! Blue Coat likewise "withdraw\[ed\] update support from Syria" under
//! sanctions [26, 32]. Both are the same mechanism: the deployed box
//! keeps its last database snapshot and keeps filtering, but nothing
//! categorized after the cut-off ever reaches it.
//!
//! [`vendor_withdrawal`] replays the story end to end and also takes
//! scan snapshots before and after, demonstrating the longitudinal use
//! of the scan-index diff.

use std::sync::Arc;

use filterwatch_http::Url;
use filterwatch_measure::MeasurementClient;
use filterwatch_netsim::service::StaticSite;
use filterwatch_netsim::{Internet, NetworkSpec, SimTime};
use filterwatch_products::websense::{WebsenseBlockpage, WebsenseBox, BLOCKPAGE_PORT};
use filterwatch_products::{FilterPolicy, ProductKind, VendorCloud};
use filterwatch_scanner::{diff, ScanEngine};

/// The outcome of the withdrawal replay.
#[derive(Debug, Clone)]
pub struct WithdrawalReport {
    /// Day the vendor froze the deployment's updates.
    pub frozen_at_day: u64,
    /// A site categorized *before* the freeze: blocked at the end?
    pub old_entry_blocks: bool,
    /// A site categorized *after* the freeze: blocked at the end?
    pub new_entry_blocks: bool,
    /// Scan-diff endpoints that disappeared when the operator also took
    /// the console offline after losing vendor support.
    pub endpoints_disappeared: usize,
}

/// Replay the Websense/Yemen 2009 story on a purpose-built mini-world.
pub fn vendor_withdrawal(seed: u64) -> WithdrawalReport {
    let mut net = Internet::new(seed);
    net.registry_mut().register_country("YE", "Yemen", "ye");
    net.registry_mut().register_country("CA", "Canada", "ca");
    let lab_as = net.registry_mut().register_as(239, "UTORONTO", "CA");
    let isp_as = net.registry_mut().register_as(12486, "YEMENNET", "YE");
    let lab_p = net
        .registry_mut()
        .allocate_prefix(lab_as, 1)
        .expect("prefix");
    let isp_p = net
        .registry_mut()
        .allocate_prefix(isp_as, 1)
        .expect("prefix");
    let lab_net = net.add_network(NetworkSpec::new("lab", lab_as, "CA").with_cidr(lab_p));
    let isp = net.add_network(NetworkSpec::new("yemennet-2008", isp_as, "YE").with_cidr(isp_p));

    // Content: one adult site known to the vendor from the start, one
    // that appears (and is categorized) only after the freeze.
    let cloud = Arc::new(VendorCloud::new(ProductKind::Websense, seed));
    let freeze = SimTime::from_days(30);
    cloud.seed_categorization("old-adult.example", "Adult Content");
    cloud.seed_categorization_at("new-adult.example", "Adult Content", SimTime::from_days(60));
    for (host, title) in [("old-adult.example", "Old"), ("new-adult.example", "New")] {
        let ip = net.alloc_ip(lab_net).expect("ip");
        net.add_host(ip, lab_net, &[&format!("www.{host}")]);
        net.add_service(ip, 80, Box::new(StaticSite::new(title, "<p>gallery</p>")));
    }

    // The deployment: filtering on, updates frozen at day 30.
    let ws = WebsenseBox::new(
        "websense@yemennet",
        Arc::clone(&cloud),
        FilterPolicy::blocking(["Adult Content"]),
        "gw.yemennet-2008.ye",
    )
    .with_frozen_subscription(freeze);
    net.attach_middlebox(isp, Arc::new(ws));
    let console_ip = net.alloc_ip(isp).expect("ip");
    net.add_host(console_ip, isp, &["gw.yemennet-2008.ye"]);
    net.add_service(console_ip, BLOCKPAGE_PORT, Box::new(WebsenseBlockpage));

    let field = net.add_vantage("field", isp);
    let lab = net.add_vantage("lab", lab_net);
    let client = MeasurementClient::new(field, lab);

    // Snapshot the external surface while the vendor still supports the
    // deployment.
    let before = ScanEngine::new().with_threads(1).scan(&net);

    // Time passes well beyond both the freeze and the later
    // categorization.
    net.advance_days(100);
    let old_entry_blocks = client
        .test_url(
            &net,
            &Url::parse("http://www.old-adult.example/").expect("url"),
        )
        .verdict
        .is_blocked();
    let new_entry_blocks = client
        .test_url(
            &net,
            &Url::parse("http://www.new-adult.example/").expect("url"),
        )
        .verdict
        .is_blocked();

    // After losing support, the operator decommissions the gateway's
    // public surface; the longitudinal diff shows it vanishing.
    net.remove_host(console_ip);
    let after = ScanEngine::new().with_threads(1).scan(&net);
    let d = diff(&before, &after);

    WithdrawalReport {
        frozen_at_day: freeze.days(),
        old_entry_blocks,
        new_entry_blocks,
        endpoints_disappeared: d.disappeared.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn withdrawal_freezes_the_database() {
        let report = vendor_withdrawal(7);
        assert_eq!(report.frozen_at_day, 30);
        // The pre-freeze entry keeps blocking forever…
        assert!(report.old_entry_blocks);
        // …but nothing categorized after the vendor pulled support does.
        assert!(!report.new_entry_blocks);
        // And the decommissioned console shows up in the scan diff.
        assert!(report.endpoints_disappeared >= 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = vendor_withdrawal(3);
        let b = vendor_withdrawal(3);
        assert_eq!(a.old_entry_blocks, b.old_entry_blocks);
        assert_eq!(a.endpoints_disappeared, b.endpoints_disappeared);
    }
}
