//! Deterministic randomness.
//!
//! Every stochastic choice in the simulation — vendor review delays,
//! license-pool fluctuations, fault injection — draws from a seeded
//! generator. To keep unrelated subsystems from perturbing each other's
//! streams, components derive *labelled* sub-generators from the world
//! seed: the same `(seed, label)` pair always yields the same stream, no
//! matter what else ran first.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a deterministic RNG from a seed and a label.
///
/// Uses an FNV-1a fold of the label into the seed; cryptographic quality
/// is irrelevant here, stream independence and stability are what matter.
pub fn labelled_rng(seed: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(mix(seed, label))
}

/// Stable 64-bit mix of a seed and a label.
pub fn mix(seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET ^ seed.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 tail) so nearby labels diverge fully.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let a: Vec<u32> = labelled_rng(7, "x")
            .sample_iter(rand::distributions::Standard)
            .take(5)
            .collect();
        let b: Vec<u32> = labelled_rng(7, "x")
            .sample_iter(rand::distributions::Standard)
            .take(5)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn labels_diverge() {
        assert_ne!(mix(7, "a"), mix(7, "b"));
        assert_ne!(mix(7, "a"), mix(8, "a"));
        let a: u64 = labelled_rng(7, "alpha").gen();
        let b: u64 = labelled_rng(7, "beta").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn empty_label_is_fine() {
        let _ = labelled_rng(0, "");
    }
}
