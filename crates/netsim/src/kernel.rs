//! The simulation kernel: in-flight flows and their typed events.
//!
//! Under the event core, one `fetch` is not a nested call chain but a
//! sequence of scheduled [`SimEvent`]s — resolve, fault draw, one hop
//! per middlebox, origin reply, response path — each dispatched from the
//! central [`EventQueue`] in `(time, seq)` order. The [`Kernel`] owns
//! that queue plus the dense table of in-flight [flow](FlowState)
//! states; `internet.rs` dispatches events against the world's topology
//! and writes results back here.
//!
//! Flow slots are dense and reused (a `FlowId` indexes a `Vec`), but
//! every flow also carries a monotone *tag* that is never reused, so the
//! optional event log stays unambiguous across a whole campaign. Event
//! log lines follow the workspace wire discipline:
//! [`EventRecord::to_line`] / [`EventRecord::parse_line`] round-trip
//! losslessly, and [`EventKind::to_token`] / [`EventKind::parse_token`]
//! are a closed token pair (enforced by the w1 wire-pair lint).

use filterwatch_http::{Request, Response};
use filterwatch_telemetry::event::{escape, unescape};

use crate::event::EventQueue;
use crate::internet::NetworkId;
use crate::ip::IpAddr;
use crate::outcome::FetchOutcome;
use crate::time::SimTime;

/// Dense handle for an in-flight flow (an index into the kernel's flow
/// table). Slots are reused once a flow completes and its outcome has
/// been taken; the never-reused identity is [`FlowState::tag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub(crate) usize);

impl FlowId {
    /// The underlying slot index.
    pub const fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// A typed event on the central queue. Every variant names the flow it
/// advances; `MbHop` additionally carries which middlebox in the
/// egress chain is next.
#[derive(Debug, Clone)]
pub(crate) enum SimEvent {
    /// Resolve the flow's hostname.
    Dns(FlowId),
    /// Consult the network's fault profile (outage windows first, then
    /// at most one draw from the shared fault RNG).
    Fault(FlowId),
    /// Present the request to middlebox `hop` of the egress chain.
    MbHop(FlowId, usize),
    /// Connect to the origin service.
    Origin(FlowId),
    /// Carry the origin's response back through the chain.
    Response(FlowId),
}

impl SimEvent {
    /// The flow this event advances.
    pub(crate) fn flow(&self) -> FlowId {
        match self {
            SimEvent::Dns(f)
            | SimEvent::Fault(f)
            | SimEvent::MbHop(f, _)
            | SimEvent::Origin(f)
            | SimEvent::Response(f) => *f,
        }
    }

    /// The event-log kind of this event.
    pub(crate) fn kind(&self) -> EventKind {
        match self {
            SimEvent::Dns(_) => EventKind::Dns,
            SimEvent::Fault(_) => EventKind::Fault,
            SimEvent::MbHop(_, _) => EventKind::MbHop,
            SimEvent::Origin(_) => EventKind::Origin,
            SimEvent::Response(_) => EventKind::Response,
        }
    }
}

/// The stage a logged event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// DNS resolution.
    Dns,
    /// Fault-profile consultation.
    Fault,
    /// One middlebox hop.
    MbHop,
    /// Origin service connect.
    Origin,
    /// Response path back through the chain.
    Response,
}

impl EventKind {
    /// Encode as a single stable token.
    pub fn to_token(&self) -> &'static str {
        match self {
            EventKind::Dns => "dns",
            EventKind::Fault => "fault",
            EventKind::MbHop => "mb-hop",
            EventKind::Origin => "origin",
            EventKind::Response => "response",
        }
    }

    /// Parse a token produced by [`EventKind::to_token`].
    pub fn parse_token(token: &str) -> Result<Self, String> {
        match token {
            "dns" => Ok(EventKind::Dns),
            "fault" => Ok(EventKind::Fault),
            "mb-hop" => Ok(EventKind::MbHop),
            "origin" => Ok(EventKind::Origin),
            "response" => Ok(EventKind::Response),
            _ => Err(format!("unknown event kind token {token:?}")),
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.to_token())
    }
}

/// One dispatched event, as recorded in the (optional) kernel event
/// log: when it fired, its queue sequence number, its kind, the
/// never-reused tag of the flow it advanced, and a free-text detail
/// (the URL, plus the hop index for middlebox hops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual time the event fired.
    pub at: SimTime,
    /// Queue sequence number (the deterministic tie-break).
    pub seq: u64,
    /// Which stage fired.
    pub kind: EventKind,
    /// Monotone tag of the flow advanced (never reused).
    pub flow: u64,
    /// Free-text detail.
    pub detail: String,
}

impl EventRecord {
    /// Render as a stable, machine-parseable log line (tab-separated:
    /// time, seq, kind token, flow tag, detail).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}",
            self.at,
            self.seq,
            self.kind.to_token(),
            self.flow,
            escape(&self.detail)
        )
    }

    /// Parse a line produced by [`EventRecord::to_line`].
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let fields: Vec<&str> = line.split('\t').collect();
        let [at, seq, kind, flow, detail] = fields.as_slice() else {
            return Err(format!(
                "expected 5 tab-separated fields, got {}: {line:?}",
                fields.len()
            ));
        };
        Ok(EventRecord {
            at: at.parse()?,
            seq: seq
                .parse()
                .map_err(|e| format!("bad event seq {seq:?}: {e}"))?,
            kind: EventKind::parse_token(kind)?,
            flow: flow
                .parse()
                .map_err(|e| format!("bad flow tag {flow:?}: {e}"))?,
            detail: unescape(detail).ok_or_else(|| format!("bad escape in {detail:?}"))?,
        })
    }
}

/// State of one in-flight flow.
#[derive(Debug)]
pub(crate) struct FlowState {
    /// Never-reused flow identity for the event log.
    pub tag: u64,
    /// The network the client egresses through.
    pub net: NetworkId,
    /// The client address originating the flow.
    pub client_ip: IpAddr,
    /// The request being carried.
    pub req: Request,
    /// Resolved destination, once DNS has run.
    pub dest_ip: Option<IpAddr>,
    /// How many middleboxes the request has passed.
    pub passed: usize,
    /// The origin's response, parked between `Origin` and
    /// `Response`.
    pub pending_resp: Option<Response>,
    /// The final outcome, once the flow completes.
    pub outcome: Option<FetchOutcome>,
}

/// The discrete-event kernel: the central queue plus the dense table of
/// in-flight flows. Owned by [`Internet`](crate::Internet) behind a
/// mutex; all scheduling and dispatch happens while that lock is held,
/// so the queue discipline alone decides ordering.
#[derive(Debug, Default)]
pub(crate) struct Kernel {
    /// The central `(time, seq)`-ordered queue.
    pub queue: EventQueue<SimEvent>,
    /// In-flight flows, indexed by `FlowId`. `None` marks a free slot.
    flows: Vec<Option<FlowState>>,
    /// Free slot indices, reused LIFO.
    free: Vec<usize>,
    /// Monotone flow tag counter.
    next_tag: u64,
    /// Dispatched-event log (disabled by default).
    event_log: Vec<EventRecord>,
    event_log_enabled: bool,
}

impl Kernel {
    /// An empty kernel.
    pub(crate) fn new() -> Self {
        Kernel::default()
    }

    /// Open a flow and schedule its first event (`Dns`) at `at`.
    pub(crate) fn open_flow(
        &mut self,
        net: NetworkId,
        client_ip: IpAddr,
        req: Request,
        at: SimTime,
    ) -> FlowId {
        let tag = self.next_tag;
        self.next_tag += 1;
        let state = FlowState {
            tag,
            net,
            client_ip,
            req,
            dest_ip: None,
            passed: 0,
            pending_resp: None,
            outcome: None,
        };
        let id = match self.free.pop() {
            Some(slot) => {
                self.flows[slot] = Some(state);
                FlowId(slot)
            }
            None => {
                self.flows.push(Some(state));
                FlowId(self.flows.len() - 1)
            }
        };
        self.queue.schedule(at, SimEvent::Dns(id));
        id
    }

    /// Take a flow's state out of its slot for dispatch (put it back
    /// with [`Kernel::put_flow`]).
    pub(crate) fn take_flow(&mut self, id: FlowId) -> Option<FlowState> {
        self.flows.get_mut(id.0).and_then(Option::take)
    }

    /// Return a flow's state to its slot after dispatch.
    pub(crate) fn put_flow(&mut self, id: FlowId, state: FlowState) {
        if let Some(slot) = self.flows.get_mut(id.0) {
            *slot = Some(state);
        }
    }

    /// Whether the flow has completed (its outcome is set).
    pub(crate) fn is_complete(&self, id: FlowId) -> bool {
        matches!(
            self.flows.get(id.0),
            Some(Some(FlowState {
                outcome: Some(_),
                ..
            }))
        )
    }

    /// Close a completed flow: free its slot and return its outcome.
    /// Returns `None` if the flow is unknown or still in flight (the
    /// slot is left untouched in that case).
    pub(crate) fn close_flow(&mut self, id: FlowId) -> Option<FetchOutcome> {
        if !self.is_complete(id) {
            return None;
        }
        let state = self.flows.get_mut(id.0).and_then(Option::take)?;
        self.free.push(id.0);
        state.outcome
    }

    /// Append to the event log if enabled.
    pub(crate) fn record(&mut self, rec: EventRecord) {
        if self.event_log_enabled {
            self.event_log.push(rec);
        }
    }

    /// Enable or disable the event log.
    pub(crate) fn set_event_log(&mut self, enabled: bool) {
        self.event_log_enabled = enabled;
    }

    /// Whether the event log is enabled.
    pub(crate) fn event_log_enabled(&self) -> bool {
        self.event_log_enabled
    }

    /// Snapshot the event log.
    pub(crate) fn event_log(&self) -> Vec<EventRecord> {
        self.event_log.clone()
    }

    /// Clear the event log, returning how many records were dropped.
    pub(crate) fn clear_event_log(&mut self) -> usize {
        let n = self.event_log.len();
        self.event_log.clear();
        n
    }

    /// Number of flows currently in flight (open and not yet closed).
    pub(crate) fn in_flight(&self) -> usize {
        self.flows.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_tokens_round_trip() {
        for kind in [
            EventKind::Dns,
            EventKind::Fault,
            EventKind::MbHop,
            EventKind::Origin,
            EventKind::Response,
        ] {
            assert_eq!(EventKind::parse_token(kind.to_token()).unwrap(), kind);
            assert_eq!(kind.to_string(), kind.to_token());
        }
        assert!(EventKind::parse_token("nope").is_err());
    }

    #[test]
    fn event_record_line_round_trips() {
        let rec = EventRecord {
            at: SimTime::from_days(2).plus_secs(5),
            seq: 41,
            kind: EventKind::MbHop,
            flow: 7,
            detail: "hop=1 http://x.info/a\tb".into(),
        };
        assert_eq!(EventRecord::parse_line(&rec.to_line()).unwrap(), rec);
    }

    #[test]
    fn event_record_parse_rejects_malformed() {
        assert!(EventRecord::parse_line("").is_err());
        assert!(EventRecord::parse_line("day 0 00:00:00\t1\tdns\t0").is_err());
        assert!(EventRecord::parse_line("day 0 00:00:00\tx\tdns\t0\td").is_err());
        assert!(EventRecord::parse_line("day 0 00:00:00\t1\tnope\t0\td").is_err());
        assert!(EventRecord::parse_line("day 0 00:00:00\t1\tdns\tx\td").is_err());
    }

    #[test]
    fn flow_slots_are_reused_but_tags_are_not() {
        use filterwatch_http::Url;
        let mut k = Kernel::new();
        let req = Request::get(Url::parse("http://x.info/").unwrap());
        let client: IpAddr = "5.0.0.9".parse().unwrap();
        let a = k.open_flow(NetworkId(0), client, req.clone(), SimTime::ZERO);
        let mut st = k.take_flow(a).unwrap();
        let tag_a = st.tag;
        st.outcome = Some(FetchOutcome::Timeout);
        k.put_flow(a, st);
        assert!(k.is_complete(a));
        assert_eq!(k.close_flow(a), Some(FetchOutcome::Timeout));
        assert_eq!(k.close_flow(a), None, "slot already freed");

        let b = k.open_flow(NetworkId(0), client, req, SimTime::ZERO);
        assert_eq!(a, b, "slot reused");
        let tag_b = k.take_flow(b).unwrap().tag;
        assert_ne!(tag_a, tag_b, "tag not reused");
    }

    #[test]
    fn open_flow_schedules_dns_first() {
        use filterwatch_http::Url;
        let mut k = Kernel::new();
        let req = Request::get(Url::parse("http://x.info/").unwrap());
        let f = k.open_flow(
            NetworkId(3),
            "5.0.0.9".parse().unwrap(),
            req,
            SimTime::from_secs(9),
        );
        assert_eq!(k.in_flight(), 1);
        let (at, _, ev) = k.queue.pop().unwrap();
        assert_eq!(at, SimTime::from_secs(9));
        assert!(matches!(ev, SimEvent::Dns(id) if id == f));
        assert_eq!(ev.kind(), EventKind::Dns);
        assert!(!k.is_complete(f));
        assert_eq!(k.close_flow(f), None, "incomplete flow cannot close");
    }
}
