//! HTTP services bound to host ports.
//!
//! Everything that answers HTTP in the simulation — origin web sites,
//! vendor admin consoles, submission portals, the category test site —
//! implements [`Service`]. Handlers take `&self` so the whole Internet
//! can be probed concurrently; stateful services wrap their state in a
//! lock internally.

use filterwatch_http::{html, Request, Response};

use crate::ip::IpAddr;
use crate::time::SimTime;

/// Context passed to a service handler.
#[derive(Debug, Clone, Copy)]
pub struct ServiceCtx {
    /// Virtual time of the request.
    pub now: SimTime,
    /// Address the request (appears to) come from.
    pub client_ip: IpAddr,
}

/// An HTTP responder bound to one host:port.
pub trait Service: Send + Sync {
    /// Produce the response for `req`.
    fn handle(&self, req: &Request, ctx: &ServiceCtx) -> Response;
}

// Allow plain closures as services for tests and simple fixtures.
impl<F> Service for F
where
    F: Fn(&Request, &ServiceCtx) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request, ctx: &ServiceCtx) -> Response {
        self(req, ctx)
    }
}

/// A static HTML site: the same page for every path.
///
/// Used for the researcher-controlled test domains (§4.2) and the
/// innocuous content sites on the test lists.
#[derive(Debug, Clone)]
pub struct StaticSite {
    title: String,
    body_html: String,
    server: Option<String>,
}

impl StaticSite {
    /// A site serving one page with the given title and body markup.
    pub fn new(title: &str, body_html: &str) -> Self {
        StaticSite {
            title: title.to_string(),
            body_html: body_html.to_string(),
            server: None,
        }
    }

    /// Set the `Server` header value.
    pub fn with_server(mut self, server: &str) -> Self {
        self.server = Some(server.to_string());
        self
    }
}

impl Service for StaticSite {
    fn handle(&self, _req: &Request, _ctx: &ServiceCtx) -> Response {
        let mut resp = Response::html(html::page(&self.title, &self.body_html));
        if let Some(server) = &self.server {
            resp.headers.set("Server", server.clone());
        }
        resp
    }
}

/// A Glype-style web proxy script front page, as hosted on the
/// researcher-controlled "proxy service" domains of §4.3/§4.4.
///
/// The page advertises itself as a proxy (form + script marker) so that
/// vendor categorizers reviewing the submission see a proxy site; the
/// `/browse` endpoint pretends to relay a target URL.
#[derive(Debug, Clone, Default)]
pub struct GlypeProxySite;

impl Service for GlypeProxySite {
    fn handle(&self, req: &Request, _ctx: &ServiceCtx) -> Response {
        if req.url.path().starts_with("/browse") {
            let target = req.url.query_param("u").unwrap_or("about:blank");
            return Response::html(html::page(
                "Web Proxy - browsing",
                &format!("<p>Proxied view of {}</p>", html::escape(target)),
            ));
        }
        Response::html(html::page(
            "Free Web Proxy",
            "<!-- Glype proxy script -->\n\
             <h1>Surf anonymously</h1>\n\
             <form action=\"/browse\" method=\"get\">\n\
             <input type=\"text\" name=\"u\" placeholder=\"http://\"/>\n\
             <input type=\"submit\" value=\"Go\"/>\n\
             </form>",
        ))
    }
}

/// The "adult image host" used in the Saudi Arabia case study (§4.3):
/// an index page referencing an explicit image at `/image.jpg`, plus the
/// deliberately benign `/benign.png` testers fetch to limit exposure
/// (§4.6). The explicit content itself is represented by a placeholder —
/// only its *categorization* matters to the methodology.
#[derive(Debug, Default)]
pub struct AdultImageSite {
    /// Whether the operator has taken the image down (done promptly after
    /// each experiment, per the paper's ethics discussion).
    removed: std::sync::atomic::AtomicBool,
}

impl AdultImageSite {
    /// A fresh site with the image present.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the explicit image down (post-experiment cleanup).
    pub fn remove_image(&self) {
        self.removed
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Service for AdultImageSite {
    fn handle(&self, req: &Request, _ctx: &ServiceCtx) -> Response {
        let removed = self.removed.load(std::sync::atomic::Ordering::Relaxed);
        match req.url.path() {
            "/benign.png" => Response::text(
                filterwatch_http::Status::OK,
                "PNG placeholder: benign test object",
            )
            .with_header("Content-Type", "image/png"),
            "/image.jpg" if !removed => Response::text(
                filterwatch_http::Status::OK,
                "JPEG placeholder: explicit-content marker",
            )
            .with_header("Content-Type", "image/jpeg")
            .with_header("X-Content-Marker", "adult"),
            "/image.jpg" => Response::not_found(),
            _ => Response::html(html::page(
                "Image gallery",
                if removed {
                    "<p>gallery empty</p>"
                } else {
                    "<img src=\"/image.jpg\"/> <img src=\"/benign.png\"/>"
                },
            )),
        }
    }
}

/// A service that always answers 404 — a host that exists but serves
/// nothing interesting (filler space for scans).
#[derive(Debug, Clone, Default)]
pub struct EmptyService;

impl Service for EmptyService {
    fn handle(&self, _req: &Request, _ctx: &ServiceCtx) -> Response {
        Response::not_found()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_http::{Method, Url};

    fn ctx() -> ServiceCtx {
        ServiceCtx {
            now: SimTime::ZERO,
            client_ip: "5.0.0.1".parse().unwrap(),
        }
    }

    fn get(url: &str) -> Request {
        Request::get(Url::parse(url).unwrap())
    }

    #[test]
    fn static_site_serves_title() {
        let s = StaticSite::new("Hello", "<p>x</p>").with_server("tinyhttpd");
        let resp = s.handle(&get("http://a.example/any/path"), &ctx());
        assert_eq!(resp.title(), Some("Hello".into()));
        assert_eq!(resp.headers.get("server"), Some("tinyhttpd"));
    }

    #[test]
    fn glype_front_page_flags_proxy() {
        let s = GlypeProxySite;
        let resp = s.handle(&get("http://p.info/"), &ctx());
        assert!(resp.body_text().contains("Glype proxy script"));
        assert_eq!(resp.title(), Some("Free Web Proxy".into()));
    }

    #[test]
    fn glype_browse_echoes_target() {
        let s = GlypeProxySite;
        let resp = s.handle(&get("http://p.info/browse?u=http://news.example/"), &ctx());
        assert!(resp.body_text().contains("news.example"));
    }

    #[test]
    fn adult_site_lifecycle() {
        let s = AdultImageSite::new();
        assert!(s
            .handle(&get("http://i.info/image.jpg"), &ctx())
            .status
            .is_success());
        assert!(s
            .handle(&get("http://i.info/benign.png"), &ctx())
            .status
            .is_success());
        s.remove_image();
        assert!(s
            .handle(&get("http://i.info/image.jpg"), &ctx())
            .status
            .is_error());
        // Benign object survives cleanup.
        assert!(s
            .handle(&get("http://i.info/benign.png"), &ctx())
            .status
            .is_success());
    }

    #[test]
    fn closure_as_service() {
        let s = |req: &Request, _ctx: &ServiceCtx| {
            Response::text(filterwatch_http::Status::OK, req.url.path().to_string())
        };
        let resp = Service::handle(&s, &get("http://x.example/pp"), &ctx());
        assert_eq!(resp.body_text(), "/pp");
        assert_eq!(
            Request::get(Url::parse("http://x/").unwrap()).method,
            Method::Get
        );
    }
}
