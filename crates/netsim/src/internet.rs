//! The simulated Internet: topology, routing and the fetch path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use filterwatch_http::{Request, Response, Url};
use filterwatch_telemetry::TelemetryHandle;
use filterwatch_trace::{StepKind, TraceHandle};
use parking_lot::Mutex;
use rand::rngs::StdRng;

use crate::dns::Dns;
use crate::event::EventId;
use crate::fault::{Fault, FaultProfile};
use crate::flowlog::{FlowDisposition, FlowRecord};
use crate::ip::{Cidr, IpAddr};
use crate::kernel::{EventRecord, FlowId, FlowState, Kernel, SimEvent};
use crate::middlebox::{Chain, FlowCtx, Middlebox, Verdict};
use crate::outcome::FetchOutcome;
use crate::registry::{Asn, CountryCode, Registry};
use crate::rng::labelled_rng;
use crate::service::{Service, ServiceCtx};
use crate::time::SimTime;
use crate::vantage::{Vantage, VantageId};

/// Which implementation carries a fetch.
///
/// [`FetchPath::Event`] (the default) schedules the flow's stages —
/// DNS, fault draw, middlebox hops, origin reply, response path — as
/// typed events on the central `(time, seq)`-ordered queue and drives
/// the loop to quiescence. [`FetchPath::DirectReference`] is the
/// original nested-call implementation, retained solely as the oracle
/// for the old-vs-new differential battery: the testkit runs both paths
/// and asserts byte-identical tables, flow logs and trace forests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchPath {
    /// The discrete-event core (default).
    #[default]
    Event,
    /// The legacy direct-call chain, kept as the differential oracle.
    DirectReference,
}

/// Handle to a network (ISP) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetworkId(pub(crate) usize);

/// Description of a network to be added to the simulation.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// Human-readable name ("etisalat", "toronto-lab").
    pub name: String,
    /// Owning autonomous system.
    pub asn: Asn,
    /// Country the network operates in.
    pub country: CountryCode,
    /// Address space the network announces.
    pub cidrs: Vec<Cidr>,
    /// Fault model for flows originating in this network.
    pub faults: FaultProfile,
}

impl NetworkSpec {
    /// A new spec with no prefixes and a clean fault profile.
    pub fn new(name: &str, asn: Asn, country: &str) -> Self {
        NetworkSpec {
            name: name.to_string(),
            asn,
            country: CountryCode::new(country),
            cidrs: Vec::new(),
            faults: FaultProfile::clean(),
        }
    }

    /// Builder-style: announce a prefix.
    pub fn with_cidr(mut self, cidr: Cidr) -> Self {
        self.cidrs.push(cidr);
        self
    }

    /// Builder-style: set the fault profile.
    pub fn with_faults(mut self, faults: FaultProfile) -> Self {
        self.faults = faults;
        self
    }
}

/// A network (ISP, campus, lab) in the simulation.
pub struct Network {
    /// Handle of this network.
    pub id: NetworkId,
    /// Human-readable name.
    pub name: String,
    /// Owning AS.
    pub asn: Asn,
    /// Operating country.
    pub country: CountryCode,
    /// Announced prefixes.
    pub cidrs: Vec<Cidr>,
    /// Egress middlebox chain (URL filters plug in here).
    pub(crate) chain: Chain,
    /// Fault model for client flows.
    pub faults: FaultProfile,
}

impl Network {
    /// Names of the middleboxes on the egress path, in order.
    pub fn middlebox_names(&self) -> Vec<&str> {
        self.chain.names()
    }
}

/// A host: an address with hostnames and port-bound services.
pub struct Host {
    /// The host's address.
    pub ip: IpAddr,
    /// The network the address belongs to.
    pub network: NetworkId,
    /// Hostnames registered in DNS for this host.
    pub hostnames: Vec<String>,
    services: BTreeMap<u16, Box<dyn Service>>,
}

impl Host {
    /// Ports with a bound service, in order.
    pub fn open_ports(&self) -> Vec<u16> {
        self.services.keys().copied().collect()
    }
}

/// The simulated Internet. See the [crate docs](crate) for an overview.
pub struct Internet {
    seed: u64,
    now_secs: AtomicU64,
    rng: Mutex<StdRng>,
    registry: Registry,
    dns: Dns,
    networks: Vec<Network>,
    hosts: BTreeMap<IpAddr, Host>,
    vantages: Vec<Vantage>,
    flow_log: Mutex<Vec<FlowRecord>>,
    flow_log_enabled: std::sync::atomic::AtomicBool,
    telemetry: TelemetryHandle,
    tracer: TraceHandle,
    kernel: Mutex<Kernel>,
    fetch_path: AtomicU8,
}

/// Source address used for scanner probes (outside all simulated networks).
const PROBE_SOURCE: IpAddr = IpAddr::from_octets(198, 51, 100, 1);

impl Internet {
    /// Create an empty simulated Internet with the given world seed.
    pub fn new(seed: u64) -> Self {
        Internet {
            seed,
            now_secs: AtomicU64::new(0),
            rng: Mutex::new(labelled_rng(seed, "internet/faults")),
            registry: Registry::new(),
            dns: Dns::new(),
            networks: Vec::new(),
            hosts: BTreeMap::new(),
            vantages: Vec::new(),
            flow_log: Mutex::new(Vec::new()),
            flow_log_enabled: std::sync::atomic::AtomicBool::new(false),
            telemetry: TelemetryHandle::disabled(),
            tracer: TraceHandle::disabled(),
            kernel: Mutex::new(Kernel::new()),
            fetch_path: AtomicU8::new(FetchPath::Event as u8),
        }
    }

    /// Select which implementation carries subsequent fetches. The
    /// event core is the default; [`FetchPath::DirectReference`] exists
    /// for the old-vs-new differential battery.
    pub fn set_fetch_path(&self, path: FetchPath) {
        self.fetch_path.store(path as u8, Ordering::Relaxed);
    }

    /// The currently selected fetch implementation.
    pub fn fetch_path(&self) -> FetchPath {
        match self.fetch_path.load(Ordering::Relaxed) {
            x if x == FetchPath::DirectReference as u8 => FetchPath::DirectReference,
            _ => FetchPath::Event,
        }
    }

    /// Attach a telemetry collector; fetches then record per-network
    /// counters, per-vendor verdict counts and a wall-clock latency
    /// histogram. The default handle is disabled and records nothing.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle (cheap to clone; disabled by default).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Attach a trace collector; fetches then emit causal point events
    /// (DNS, path faults, middlebox hops, origin replies) under
    /// whichever span the measurement layer has open. The tracer is
    /// a pure observer — it never draws from the fault RNG and never
    /// moves the virtual clock — so fetch outcomes are identical with
    /// tracing on or off.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    /// The trace handle (cheap to clone; disabled by default).
    pub fn tracer(&self) -> &TraceHandle {
        &self.tracer
    }

    /// Enable or disable flow logging (disabled by default; logging
    /// every fetch costs memory on long campaigns).
    pub fn set_flow_log(&self, enabled: bool) {
        self.flow_log_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Snapshot the flow log.
    pub fn flow_log(&self) -> Vec<FlowRecord> {
        self.flow_log.lock().clone()
    }

    /// Clear the flow log, returning how many records were dropped.
    pub fn clear_flow_log(&self) -> usize {
        let mut log = self.flow_log.lock();
        let n = log.len();
        log.clear();
        n
    }

    /// Enable or disable the kernel event log (disabled by default;
    /// logging every dispatched event costs memory on long campaigns).
    /// Only fetches carried by [`FetchPath::Event`] dispatch events.
    pub fn set_event_log(&self, enabled: bool) {
        self.kernel.lock().set_event_log(enabled);
    }

    /// Snapshot the kernel event log.
    pub fn event_log(&self) -> Vec<EventRecord> {
        self.kernel.lock().event_log()
    }

    /// Clear the kernel event log, returning how many records were
    /// dropped.
    pub fn clear_event_log(&self) -> usize {
        self.kernel.lock().clear_event_log()
    }

    fn log_flow(
        &self,
        net: &Network,
        client: IpAddr,
        url: &filterwatch_http::Url,
        disposition: FlowDisposition,
    ) {
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("fetch.total", &net.name, 1);
            let kind = match &disposition {
                FlowDisposition::Origin(_) => "origin",
                FlowDisposition::Intercepted { .. } => "intercepted",
                FlowDisposition::DroppedBy(_) => "dropped",
                FlowDisposition::ResetBy(_) => "reset",
                FlowDisposition::PathFault(_) => "pathfault",
                FlowDisposition::DnsFailure => "dnsfail",
                FlowDisposition::InjectedDnsFailure => "dnsfail-injected",
                FlowDisposition::ConnectFailed => "connectfail",
                FlowDisposition::Outage { .. } => "outage",
                FlowDisposition::Truncated => "truncated",
                FlowDisposition::BreakerSkip(_) => "breaker-skip",
            };
            self.telemetry.counter_add("fetch.disposition", kind, 1);
            match &disposition {
                FlowDisposition::Intercepted { middlebox, .. }
                | FlowDisposition::DroppedBy(middlebox)
                | FlowDisposition::ResetBy(middlebox) => {
                    self.telemetry
                        .counter_add("middlebox.verdict", middlebox, 1);
                }
                _ => {}
            }
        }
        if self.flow_log_enabled.load(Ordering::Relaxed) {
            self.flow_log.lock().push(FlowRecord {
                at: self.now(),
                client,
                network: net.name.clone(),
                url: url.to_string(),
                disposition,
            });
        }
    }

    /// The world seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.now_secs.load(Ordering::Relaxed))
    }

    /// Advance the virtual clock by whole seconds.
    pub fn advance_secs(&self, secs: u64) {
        self.now_secs.fetch_add(secs, Ordering::Relaxed);
    }

    /// Advance the virtual clock by whole days.
    pub fn advance_days(&self, days: u64) {
        self.advance_secs(days * crate::time::SECS_PER_DAY);
    }

    /// The prefix/AS/country ground truth.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the registry (topology building).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The global DNS zone.
    pub fn dns(&self) -> &Dns {
        &self.dns
    }

    /// Mutable access to DNS (topology building and experiments that
    /// register fresh researcher-controlled domains).
    pub fn dns_mut(&mut self) -> &mut Dns {
        &mut self.dns
    }

    /// Add a network. The spec's prefixes should have been allocated from
    /// this world's registry so that geolocation agrees with topology.
    pub fn add_network(&mut self, spec: NetworkSpec) -> NetworkId {
        let id = NetworkId(self.networks.len());
        self.networks.push(Network {
            id,
            name: spec.name,
            asn: spec.asn,
            country: spec.country,
            cidrs: spec.cidrs,
            chain: Chain::new(),
            faults: spec.faults,
        });
        id
    }

    /// Look up a network.
    pub fn network(&self, id: NetworkId) -> &Network {
        &self.networks[id.0]
    }

    /// All networks, in creation order.
    pub fn networks(&self) -> impl Iterator<Item = &Network> {
        self.networks.iter()
    }

    /// Find a network by name.
    pub fn network_by_name(&self, name: &str) -> Option<&Network> {
        self.networks.iter().find(|n| n.name == name)
    }

    /// Append a middlebox to a network's egress chain.
    pub fn attach_middlebox(&mut self, net: NetworkId, mb: Arc<dyn Middlebox>) {
        self.networks[net.0].chain.push(mb);
    }

    /// Replace a network's fault profile (chaos campaigns inject faults
    /// after the topology is built).
    pub fn set_network_faults(&mut self, net: NetworkId, faults: FaultProfile) {
        self.networks[net.0].faults = faults;
    }

    /// Allocate the lowest unused address in the network's prefixes.
    pub fn alloc_ip(&self, net: NetworkId) -> Option<IpAddr> {
        let network = &self.networks[net.0];
        for cidr in &network.cidrs {
            for ip in cidr.iter() {
                if !self.hosts.contains_key(&ip) && !self.vantages.iter().any(|v| v.ip == ip) {
                    return Some(ip);
                }
            }
        }
        None
    }

    /// Add a host at `ip` inside `net`, registering `hostnames` in DNS.
    ///
    /// # Panics
    /// If the address is outside the network's prefixes or already used.
    pub fn add_host(&mut self, ip: IpAddr, net: NetworkId, hostnames: &[&str]) {
        let network = &self.networks[net.0];
        assert!(
            network.cidrs.iter().any(|c| c.contains(ip)),
            "{ip} outside prefixes of network {:?}",
            network.name
        );
        assert!(!self.hosts.contains_key(&ip), "host {ip} already exists");
        for h in hostnames {
            self.dns.register(h, ip);
        }
        self.hosts.insert(
            ip,
            Host {
                ip,
                network: net,
                hostnames: hostnames.iter().map(|s| s.to_string()).collect(),
                services: BTreeMap::new(),
            },
        );
    }

    /// Remove a host and its DNS records. Returns whether it existed.
    pub fn remove_host(&mut self, ip: IpAddr) -> bool {
        match self.hosts.remove(&ip) {
            Some(host) => {
                for h in &host.hostnames {
                    self.dns.remove(h);
                }
                true
            }
            None => false,
        }
    }

    /// Bind a service to `ip:port`.
    ///
    /// # Panics
    /// If the host does not exist or the port is taken.
    pub fn add_service(&mut self, ip: IpAddr, port: u16, service: Box<dyn Service>) {
        let host = self
            .hosts
            .get_mut(&ip)
            .unwrap_or_else(|| panic!("no host at {ip}"));
        assert!(
            !host.services.contains_key(&port),
            "port {port} on {ip} already bound"
        );
        host.services.insert(port, service);
    }

    /// Look up a host by address.
    pub fn host(&self, ip: IpAddr) -> Option<&Host> {
        self.hosts.get(&ip)
    }

    /// All hosts in address order.
    pub fn hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.values()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Register a vantage point (tester) inside `net`.
    pub fn add_vantage(&mut self, name: &str, net: NetworkId) -> VantageId {
        let ip = self.alloc_ip(net).unwrap_or_else(|| {
            panic!(
                "network {:?} has no free addresses",
                self.networks[net.0].name
            )
        });
        let id = VantageId(self.vantages.len());
        self.vantages.push(Vantage::new(name, net, ip));
        id
    }

    /// Look up a vantage point.
    pub fn vantage(&self, id: VantageId) -> &Vantage {
        &self.vantages[id.0]
    }

    /// Record a client-side event (e.g. a circuit-breaker skip) in the
    /// flow log and telemetry, attributed to the vantage's network. No
    /// packet traverses the simulation — this exists so the audit log
    /// also covers fetches a measurement client *decided not to make*.
    pub fn log_vantage_event(&self, vantage: VantageId, url: &Url, disposition: FlowDisposition) {
        let v = &self.vantages[vantage.0];
        let network = &self.networks[v.network.0];
        if self.telemetry.is_enabled() {
            let kind = match &disposition {
                FlowDisposition::BreakerSkip(_) => "breaker-skip",
                _ => "client-event",
            };
            self.telemetry.counter_add("fetch.disposition", kind, 1);
        }
        if self.flow_log_enabled.load(Ordering::Relaxed) {
            self.flow_log.lock().push(FlowRecord {
                at: self.now(),
                client: v.ip,
                network: network.name.clone(),
                url: url.to_string(),
                disposition,
            });
        }
    }

    /// Fetch `url` as the given vantage point: resolve, traverse the
    /// vantage network's fault profile and middlebox chain, hit the
    /// origin service, and carry the response back.
    pub fn fetch(&self, vantage: VantageId, url: &Url) -> FetchOutcome {
        let v = &self.vantages[vantage.0];
        self.fetch_as(v.network, v.ip, &Request::get(url.clone()))
    }

    /// Fetch an arbitrary request as the given vantage point.
    pub fn fetch_request(&self, vantage: VantageId, req: &Request) -> FetchOutcome {
        let v = &self.vantages[vantage.0];
        self.fetch_as(v.network, v.ip, req)
    }

    /// Fetch a request as a client at `client_ip` inside `net`.
    ///
    /// This is the facade over the event core: it opens a flow,
    /// drives the event loop to quiescence, and returns the flow's
    /// outcome — so callers written against the old synchronous API
    /// work unchanged. Under [`FetchPath::DirectReference`] the legacy
    /// nested-call implementation runs instead (differential oracle).
    pub fn fetch_as(&self, net: NetworkId, client_ip: IpAddr, req: &Request) -> FetchOutcome {
        self.telemetry
            .observe_timed("fetch.wall_nanos", "", || match self.fetch_path() {
                FetchPath::Event => self.fetch_as_event(net, client_ip, req),
                FetchPath::DirectReference => self.fetch_as_direct(net, client_ip, req),
            })
    }

    /// Carry one fetch through the event core, synchronously: open the
    /// flow, drain the queue, take the outcome. Any other flows already
    /// in flight (opened via [`Internet::start_fetch_as`]) advance too.
    fn fetch_as_event(&self, net: NetworkId, client_ip: IpAddr, req: &Request) -> FetchOutcome {
        let mut kernel = self.kernel.lock();
        let id = kernel.open_flow(net, client_ip, req.clone(), self.now());
        self.drain_events(&mut kernel);
        // Every event path sets an outcome before the queue drains dry,
        // so the fallback is unreachable; Timeout is the conservative
        // reading of "the simulation lost the flow".
        kernel.close_flow(id).unwrap_or(FetchOutcome::Timeout)
    }

    /// Open a flow through the event core without driving it: the
    /// flow's first event is queued at the current virtual time and
    /// will advance on the next [`Internet::run_to_quiescence`] (or any
    /// facade fetch). Many flows may be opened before any is driven;
    /// they then advance interleaved, round-robin by queue order.
    pub fn start_fetch_as(&self, net: NetworkId, client_ip: IpAddr, req: &Request) -> FlowId {
        self.kernel
            .lock()
            .open_flow(net, client_ip, req.clone(), self.now())
    }

    /// Open a flow for `url` as a vantage point (see
    /// [`Internet::start_fetch_as`]).
    pub fn start_fetch(&self, vantage: VantageId, url: &Url) -> FlowId {
        let v = &self.vantages[vantage.0];
        self.start_fetch_as(v.network, v.ip, &Request::get(url.clone()))
    }

    /// Dispatch events until the queue is empty. All currently
    /// in-flight flows run to completion.
    pub fn run_to_quiescence(&self) {
        let mut kernel = self.kernel.lock();
        self.drain_events(&mut kernel);
    }

    /// Take the outcome of a completed flow, freeing its slot. Returns
    /// `None` while the flow is still in flight (or if the id is
    /// unknown / already taken).
    pub fn take_outcome(&self, flow: FlowId) -> Option<FetchOutcome> {
        self.kernel.lock().close_flow(flow)
    }

    /// Number of flows currently in flight on the event core.
    pub fn flows_in_flight(&self) -> usize {
        self.kernel.lock().in_flight()
    }

    /// Number of events pending on the central queue.
    pub fn pending_events(&self) -> usize {
        self.kernel.lock().queue.len()
    }

    /// Carry a batch of fetches concurrently through the event core:
    /// all flows are opened first (so their stages interleave on the
    /// queue), then the loop runs to quiescence, and outcomes come back
    /// in input order.
    pub fn fetch_batch(&self, requests: &[(NetworkId, IpAddr, Request)]) -> Vec<FetchOutcome> {
        let mut kernel = self.kernel.lock();
        let ids: Vec<FlowId> = requests
            .iter()
            .map(|(net, ip, req)| kernel.open_flow(*net, *ip, req.clone(), self.now()))
            .collect();
        self.drain_events(&mut kernel);
        ids.into_iter()
            .map(|id| kernel.close_flow(id).unwrap_or(FetchOutcome::Timeout))
            .collect()
    }

    fn drain_events(&self, kernel: &mut Kernel) {
        while let Some((at, id, ev)) = kernel.queue.pop() {
            self.dispatch(kernel, at, id, ev);
        }
    }

    /// Dispatch one event: advance its flow by exactly one stage,
    /// emitting the same trace points / flow-log records / telemetry
    /// the direct path emits at the equivalent site.
    fn dispatch(&self, kernel: &mut Kernel, at: SimTime, id: EventId, ev: SimEvent) {
        let flow_id = ev.flow();
        let Some(mut st) = kernel.take_flow(flow_id) else {
            return;
        };
        if kernel.event_log_enabled() {
            let detail = match &ev {
                SimEvent::MbHop(_, hop) => format!("hop={hop} {}", st.req.url),
                _ => st.req.url.to_string(),
            };
            kernel.record(EventRecord {
                at,
                seq: id.value(),
                kind: ev.kind(),
                flow: st.tag,
                detail,
            });
        }
        match ev {
            SimEvent::Dns(_) => self.ev_dns(kernel, flow_id, &mut st),
            SimEvent::Fault(_) => self.ev_fault(kernel, flow_id, &mut st),
            SimEvent::MbHop(_, hop) => self.ev_mb_hop(kernel, flow_id, &mut st, hop),
            SimEvent::Origin(_) => self.ev_origin(kernel, flow_id, &mut st),
            SimEvent::Response(_) => self.ev_response(&mut st),
        }
        kernel.put_flow(flow_id, st);
    }

    /// Stage 1: DNS.
    fn ev_dns(&self, kernel: &mut Kernel, id: FlowId, st: &mut FlowState) {
        let network = &self.networks[st.net.0];
        let tracing = self.tracer.recording();
        match self.dns.resolve(st.req.url.host()) {
            None => {
                if tracing {
                    self.tracer.point(
                        StepKind::Dns,
                        self.now().secs(),
                        &[("host", st.req.url.host()), ("outcome", "fail")],
                    );
                }
                self.log_flow(
                    network,
                    st.client_ip,
                    &st.req.url,
                    FlowDisposition::DnsFailure,
                );
                st.outcome = Some(FetchOutcome::DnsFailure);
            }
            Some(dest_ip) => {
                if tracing {
                    self.tracer.point(
                        StepKind::Dns,
                        self.now().secs(),
                        &[
                            ("host", st.req.url.host()),
                            ("ip", &dest_ip.to_string()),
                            ("outcome", "ok"),
                        ],
                    );
                }
                st.dest_ip = Some(dest_ip);
                kernel.queue.schedule(self.now(), SimEvent::Fault(id));
            }
        }
    }

    /// Stage 2: access-path faults. Deterministic outage windows are
    /// checked first (no RNG draw); probabilistic faults each draw only
    /// when their probability is non-zero — exactly one consultation of
    /// the shared fault stream per flow, same as the direct path.
    fn ev_fault(&self, kernel: &mut Kernel, id: FlowId, st: &mut FlowState) {
        let network = &self.networks[st.net.0];
        let tracing = self.tracer.recording();
        if let Some(fault) = network.faults.sample_at(self.now(), &mut *self.rng.lock()) {
            let (outcome, disposition) = match fault {
                Fault::Timeout => (FetchOutcome::Timeout, FlowDisposition::PathFault("timeout")),
                Fault::Reset => (FetchOutcome::Reset, FlowDisposition::PathFault("reset")),
                Fault::DnsFailure => (
                    FetchOutcome::DnsFailure,
                    FlowDisposition::InjectedDnsFailure,
                ),
                Fault::Truncated => (FetchOutcome::Truncated, FlowDisposition::Truncated),
                Fault::Outage { resumes_at } => (
                    FetchOutcome::Timeout,
                    FlowDisposition::Outage {
                        resumes_at_secs: resumes_at.secs(),
                    },
                ),
            };
            if tracing {
                let kind = match &disposition {
                    FlowDisposition::PathFault(kind) => kind,
                    FlowDisposition::InjectedDnsFailure => "dns-failure",
                    FlowDisposition::Truncated => "truncated",
                    FlowDisposition::Outage { .. } => "outage",
                    _ => "other",
                };
                match &disposition {
                    FlowDisposition::Outage { resumes_at_secs } => self.tracer.point(
                        StepKind::PathFault,
                        self.now().secs(),
                        &[("kind", kind), ("resumes-at", &resumes_at_secs.to_string())],
                    ),
                    _ => {
                        self.tracer
                            .point(StepKind::PathFault, self.now().secs(), &[("kind", kind)])
                    }
                }
            }
            self.log_flow(network, st.client_ip, &st.req.url, disposition);
            st.outcome = Some(outcome);
        } else {
            kernel.queue.schedule(self.now(), SimEvent::MbHop(id, 0));
        }
    }

    /// Stage 3 (one event per hop): present the request to middlebox
    /// `hop`; forward to the next hop, or render the chain's verdict.
    fn ev_mb_hop(&self, kernel: &mut Kernel, id: FlowId, st: &mut FlowState, hop: usize) {
        let network = &self.networks[st.net.0];
        let tracing = self.tracer.recording();
        let flow = FlowCtx {
            now: self.now(),
            client_ip: st.client_ip,
        };
        let decider = || {
            network
                .chain
                .names()
                .get(hop)
                .map(|s| s.to_string())
                .unwrap_or_default()
        };
        match network.chain.request_at(hop, &st.req, &flow) {
            // Past the end of the chain: every box forwarded.
            None => {
                st.passed = hop;
                kernel.queue.schedule(self.now(), SimEvent::Origin(id));
            }
            Some(Verdict::Forward) => {
                if tracing {
                    self.tracer.point(
                        StepKind::MbHop,
                        self.now().secs(),
                        &[("middlebox", &decider()), ("action", "forward")],
                    );
                }
                st.passed = hop + 1;
                kernel
                    .queue
                    .schedule(self.now(), SimEvent::MbHop(id, hop + 1));
            }
            Some(Verdict::Respond(resp)) => {
                let resp = network.chain.run_response(&st.req, *resp, &flow, hop);
                if tracing {
                    self.tracer.point(
                        StepKind::MbHop,
                        self.now().secs(),
                        &[
                            ("middlebox", &decider()),
                            ("action", "respond"),
                            ("status", &resp.status.code().to_string()),
                        ],
                    );
                }
                self.log_flow(
                    network,
                    st.client_ip,
                    &st.req.url,
                    FlowDisposition::Intercepted {
                        middlebox: decider(),
                        status: resp.status.code(),
                    },
                );
                st.outcome = Some(FetchOutcome::Ok(resp));
            }
            Some(Verdict::Drop) => {
                if tracing {
                    self.tracer.point(
                        StepKind::MbHop,
                        self.now().secs(),
                        &[("middlebox", &decider()), ("action", "drop")],
                    );
                }
                self.log_flow(
                    network,
                    st.client_ip,
                    &st.req.url,
                    FlowDisposition::DroppedBy(decider()),
                );
                st.outcome = Some(FetchOutcome::Timeout);
            }
            Some(Verdict::Reset) => {
                if tracing {
                    self.tracer.point(
                        StepKind::MbHop,
                        self.now().secs(),
                        &[("middlebox", &decider()), ("action", "reset")],
                    );
                }
                self.log_flow(
                    network,
                    st.client_ip,
                    &st.req.url,
                    FlowDisposition::ResetBy(decider()),
                );
                st.outcome = Some(FetchOutcome::Reset);
            }
        }
    }

    /// Stage 4: origin service connect.
    fn ev_origin(&self, kernel: &mut Kernel, id: FlowId, st: &mut FlowState) {
        let network = &self.networks[st.net.0];
        let tracing = self.tracer.recording();
        let resp = st
            .dest_ip
            .and_then(|ip| self.origin_response(ip, st.req.url.port(), &st.req, st.client_ip));
        match resp {
            None => {
                if tracing {
                    self.tracer.point(
                        StepKind::OriginReply,
                        self.now().secs(),
                        &[("error", "connect-failed")],
                    );
                }
                self.log_flow(
                    network,
                    st.client_ip,
                    &st.req.url,
                    FlowDisposition::ConnectFailed,
                );
                st.outcome = Some(FetchOutcome::ConnectFailed);
            }
            Some(resp) => {
                st.pending_resp = Some(resp);
                kernel.queue.schedule(self.now(), SimEvent::Response(id));
            }
        }
    }

    /// Stage 5: the response path back through the chain.
    fn ev_response(&self, st: &mut FlowState) {
        let network = &self.networks[st.net.0];
        let tracing = self.tracer.recording();
        let flow = FlowCtx {
            now: self.now(),
            client_ip: st.client_ip,
        };
        match st.pending_resp.take() {
            Some(resp) => {
                let resp = network.chain.run_response(&st.req, resp, &flow, st.passed);
                if tracing {
                    self.tracer.point(
                        StepKind::OriginReply,
                        self.now().secs(),
                        &[("status", &resp.status.code().to_string())],
                    );
                }
                self.log_flow(
                    network,
                    st.client_ip,
                    &st.req.url,
                    FlowDisposition::Origin(resp.status.code()),
                );
                st.outcome = Some(FetchOutcome::Ok(resp));
            }
            // Unreachable by construction: Response is only
            // scheduled after a response is parked.
            None => st.outcome = Some(FetchOutcome::ConnectFailed),
        }
    }

    /// The legacy synchronous fetch implementation, retained as the
    /// oracle for the old-vs-new differential battery (select it with
    /// [`FetchPath::DirectReference`]). The event core's dispatch
    /// handlers above mirror this function block for block.
    fn fetch_as_direct(&self, net: NetworkId, client_ip: IpAddr, req: &Request) -> FetchOutcome {
        let network = &self.networks[net.0];
        // One recording check per fetch: the span stack cannot change
        // while we are inside it, and suppressed (sampled-out) subtrees
        // skip all field formatting below.
        let tracing = self.tracer.recording();

        // 1. DNS.
        let Some(dest_ip) = self.dns.resolve(req.url.host()) else {
            if tracing {
                self.tracer.point(
                    StepKind::Dns,
                    self.now().secs(),
                    &[("host", req.url.host()), ("outcome", "fail")],
                );
            }
            self.log_flow(network, client_ip, &req.url, FlowDisposition::DnsFailure);
            return FetchOutcome::DnsFailure;
        };
        if tracing {
            self.tracer.point(
                StepKind::Dns,
                self.now().secs(),
                &[
                    ("host", req.url.host()),
                    ("ip", &dest_ip.to_string()),
                    ("outcome", "ok"),
                ],
            );
        }

        // 2. Access-path faults. Deterministic outage windows are checked
        // first (no RNG draw); probabilistic faults each draw only when
        // their probability is non-zero, so clean profiles leave the
        // shared fault stream untouched.
        if let Some(fault) = network.faults.sample_at(self.now(), &mut *self.rng.lock()) {
            let (outcome, disposition) = match fault {
                Fault::Timeout => (FetchOutcome::Timeout, FlowDisposition::PathFault("timeout")),
                Fault::Reset => (FetchOutcome::Reset, FlowDisposition::PathFault("reset")),
                Fault::DnsFailure => (
                    FetchOutcome::DnsFailure,
                    FlowDisposition::InjectedDnsFailure,
                ),
                Fault::Truncated => (FetchOutcome::Truncated, FlowDisposition::Truncated),
                Fault::Outage { resumes_at } => (
                    FetchOutcome::Timeout,
                    FlowDisposition::Outage {
                        resumes_at_secs: resumes_at.secs(),
                    },
                ),
            };
            if tracing {
                let kind = match &disposition {
                    FlowDisposition::PathFault(kind) => kind,
                    FlowDisposition::InjectedDnsFailure => "dns-failure",
                    FlowDisposition::Truncated => "truncated",
                    FlowDisposition::Outage { .. } => "outage",
                    _ => "other",
                };
                match &disposition {
                    FlowDisposition::Outage { resumes_at_secs } => self.tracer.point(
                        StepKind::PathFault,
                        self.now().secs(),
                        &[("kind", kind), ("resumes-at", &resumes_at_secs.to_string())],
                    ),
                    _ => {
                        self.tracer
                            .point(StepKind::PathFault, self.now().secs(), &[("kind", kind)])
                    }
                }
            }
            self.log_flow(network, client_ip, &req.url, disposition);
            return outcome;
        }

        // 3. Egress middleboxes.
        let flow = FlowCtx {
            now: self.now(),
            client_ip,
        };
        let (verdict, passed) = network.chain.run_request(req, &flow);
        if tracing {
            for name in network.chain.names().iter().take(passed) {
                self.tracer.point(
                    StepKind::MbHop,
                    self.now().secs(),
                    &[("middlebox", name), ("action", "forward")],
                );
            }
        }
        let decider = || {
            network
                .chain
                .names()
                .get(passed)
                .map(|s| s.to_string())
                .unwrap_or_default()
        };
        match verdict {
            Verdict::Forward => {}
            Verdict::Respond(resp) => {
                let resp = network.chain.run_response(req, *resp, &flow, passed);
                if tracing {
                    self.tracer.point(
                        StepKind::MbHop,
                        self.now().secs(),
                        &[
                            ("middlebox", &decider()),
                            ("action", "respond"),
                            ("status", &resp.status.code().to_string()),
                        ],
                    );
                }
                self.log_flow(
                    network,
                    client_ip,
                    &req.url,
                    FlowDisposition::Intercepted {
                        middlebox: decider(),
                        status: resp.status.code(),
                    },
                );
                return FetchOutcome::Ok(resp);
            }
            Verdict::Drop => {
                if tracing {
                    self.tracer.point(
                        StepKind::MbHop,
                        self.now().secs(),
                        &[("middlebox", &decider()), ("action", "drop")],
                    );
                }
                self.log_flow(
                    network,
                    client_ip,
                    &req.url,
                    FlowDisposition::DroppedBy(decider()),
                );
                return FetchOutcome::Timeout;
            }
            Verdict::Reset => {
                if tracing {
                    self.tracer.point(
                        StepKind::MbHop,
                        self.now().secs(),
                        &[("middlebox", &decider()), ("action", "reset")],
                    );
                }
                self.log_flow(
                    network,
                    client_ip,
                    &req.url,
                    FlowDisposition::ResetBy(decider()),
                );
                return FetchOutcome::Reset;
            }
        }

        // 4. Origin service.
        let Some(resp) = self.origin_response(dest_ip, req.url.port(), req, client_ip) else {
            if tracing {
                self.tracer.point(
                    StepKind::OriginReply,
                    self.now().secs(),
                    &[("error", "connect-failed")],
                );
            }
            self.log_flow(network, client_ip, &req.url, FlowDisposition::ConnectFailed);
            return FetchOutcome::ConnectFailed;
        };

        // 5. Response path back through the chain.
        let resp = network.chain.run_response(req, resp, &flow, passed);
        if tracing {
            self.tracer.point(
                StepKind::OriginReply,
                self.now().secs(),
                &[("status", &resp.status.code().to_string())],
            );
        }
        self.log_flow(
            network,
            client_ip,
            &req.url,
            FlowDisposition::Origin(resp.status.code()),
        );
        FetchOutcome::Ok(resp)
    }

    /// Probe `ip:port` directly from outside the simulated networks (the
    /// scanner's path): no DNS, no egress filtering, no fault injection.
    pub fn probe(&self, ip: IpAddr, port: u16, req: &Request) -> FetchOutcome {
        match self.origin_response(ip, port, req, PROBE_SOURCE) {
            Some(resp) => FetchOutcome::Ok(resp),
            None => FetchOutcome::ConnectFailed,
        }
    }

    fn origin_response(
        &self,
        ip: IpAddr,
        port: u16,
        req: &Request,
        client_ip: IpAddr,
    ) -> Option<Response> {
        let host = self.hosts.get(&ip)?;
        let service = host.services.get(&port)?;
        let ctx = ServiceCtx {
            now: self.now(),
            client_ip,
        };
        Some(service.handle(req, &ctx))
    }

    /// A stable digest of the built topology: countries, ASes, networks
    /// (with their middlebox chains and fault profiles), hosts (with
    /// hostnames and open ports) and vantage points.
    ///
    /// Two [`Internet`]s built by the same deterministic recipe produce
    /// the same digest, so generative test harnesses can assert "same
    /// plan ⇒ same world" cheaply, and world minimizers can detect when
    /// a shrink step actually changed the topology. The digest covers
    /// construction-time shape only — never the clock, the RNG state,
    /// the flow log or telemetry — so it is unchanged by running
    /// measurements against the world.
    pub fn topology_digest(&self) -> u64 {
        // FNV-1a, stable across platforms and runs.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            h ^= 0xff; // field separator
            h = h.wrapping_mul(PRIME);
        };
        for c in self.registry.countries() {
            eat(c.code.as_str().as_bytes());
            eat(c.name.as_bytes());
            eat(c.cctld.as_bytes());
        }
        for rec in self.registry.ases() {
            eat(&rec.asn.0.to_le_bytes());
            eat(rec.name.as_bytes());
            eat(rec.country.as_str().as_bytes());
        }
        for net in &self.networks {
            eat(net.name.as_bytes());
            eat(&net.asn.0.to_le_bytes());
            eat(net.country.as_str().as_bytes());
            for cidr in &net.cidrs {
                eat(cidr.to_string().as_bytes());
            }
            for name in net.middlebox_names() {
                eat(name.as_bytes());
            }
            eat(format!("{:?}", net.faults).as_bytes());
        }
        for (ip, host) in &self.hosts {
            eat(&ip.value().to_le_bytes());
            for name in &host.hostnames {
                eat(name.as_bytes());
            }
            for port in host.open_ports() {
                eat(&port.to_le_bytes());
            }
        }
        for v in &self.vantages {
            eat(v.name.as_bytes());
            eat(&v.ip.value().to_le_bytes());
        }
        h
    }
}

impl std::fmt::Debug for Internet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Internet")
            .field("seed", &self.seed)
            .field("now", &self.now())
            .field("networks", &self.networks.len())
            .field("hosts", &self.hosts.len())
            .field("vantages", &self.vantages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::StaticSite;
    use filterwatch_http::Status;

    /// Build a two-network world: a clean lab and a filtered ISP.
    fn world() -> (Internet, NetworkId, NetworkId) {
        let mut net = Internet::new(7);
        net.registry_mut().register_country("CA", "Canada", "ca");
        net.registry_mut().register_country("YE", "Yemen", "ye");
        let lab_as = net.registry_mut().register_as(239, "UTORONTO", "CA");
        let isp_as = net.registry_mut().register_as(12486, "YEMENNET", "YE");
        let lab_prefix = net.registry_mut().allocate_prefix(lab_as, 1).unwrap();
        let isp_prefix = net.registry_mut().allocate_prefix(isp_as, 1).unwrap();
        let lab = net.add_network(NetworkSpec::new("lab", lab_as, "CA").with_cidr(lab_prefix));
        let isp = net.add_network(NetworkSpec::new("isp", isp_as, "YE").with_cidr(isp_prefix));
        (net, lab, isp)
    }

    struct BlockAll;

    impl Middlebox for BlockAll {
        fn name(&self) -> &str {
            "block-all"
        }
        fn process_request(&self, _req: &Request, _ctx: &FlowCtx) -> Verdict {
            Verdict::respond(Response::text(Status::FORBIDDEN, "blocked"))
        }
    }

    #[test]
    fn end_to_end_fetch() {
        let (mut net, lab, _isp) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "<p>ok</p>")));
        let vp = net.add_vantage("tester", lab);
        let out = net.fetch(vp, &Url::parse("http://www.site.ca/").unwrap());
        let resp = out.response().expect("should fetch");
        assert_eq!(resp.title(), Some("Site".into()));
    }

    #[test]
    fn dns_failure_when_unregistered() {
        let (mut net, lab, _) = world();
        let vp = net.add_vantage("tester", lab);
        assert_eq!(
            net.fetch(vp, &Url::parse("http://nosuch.example/").unwrap()),
            FetchOutcome::DnsFailure
        );
    }

    #[test]
    fn connect_failed_on_wrong_port_or_missing_host() {
        let (mut net, lab, _) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "")));
        let vp = net.add_vantage("tester", lab);
        assert_eq!(
            net.fetch(vp, &Url::parse("http://www.site.ca:8080/").unwrap()),
            FetchOutcome::ConnectFailed
        );
        // Host with no services at all.
        let ip2 = net.alloc_ip(lab).unwrap();
        net.add_host(ip2, lab, &["bare.site.ca"]);
        assert_eq!(
            net.fetch(vp, &Url::parse("http://bare.site.ca/").unwrap()),
            FetchOutcome::ConnectFailed
        );
    }

    #[test]
    fn middlebox_blocks_isp_but_not_lab() {
        let (mut net, lab, isp) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "")));
        net.attach_middlebox(isp, Arc::new(BlockAll));

        let field = net.add_vantage("field", isp);
        let lab_vp = net.add_vantage("lab", lab);
        let url = Url::parse("http://www.site.ca/").unwrap();

        let blocked = net.fetch(field, &url).into_response().unwrap();
        assert_eq!(blocked.status, Status::FORBIDDEN);
        let open = net.fetch(lab_vp, &url).into_response().unwrap();
        assert!(open.status.is_success());
    }

    #[test]
    fn probe_bypasses_filtering_and_dns() {
        let (mut net, _lab, isp) = world();
        let ip = net.alloc_ip(isp).unwrap();
        net.add_host(ip, isp, &[]);
        net.add_service(ip, 8080, Box::new(StaticSite::new("Console", "")));
        net.attach_middlebox(isp, Arc::new(BlockAll));

        let req = Request::get(Url::http_at(&ip.to_string(), 8080, "/"));
        let out = net.probe(ip, 8080, &req);
        assert!(out.is_ok());
        assert_eq!(net.probe(ip, 80, &req), FetchOutcome::ConnectFailed);
    }

    #[test]
    fn faults_fire_deterministically() {
        let (mut net, _lab, isp) = world();
        let mut spec = NetworkSpec::new("flaky", net.network(isp).asn, "YE");
        spec.faults = FaultProfile::lossy(1.0);
        // Reuse the ISP prefix space is not allowed; allocate fresh.
        let asn = net.network(isp).asn;
        let prefix = net.registry_mut().allocate_prefix(asn, 1).unwrap();
        spec.cidrs.push(prefix);
        let flaky = net.add_network(spec);
        let vp = net.add_vantage("t", flaky);
        let out = net.fetch(vp, &Url::parse("http://5.0.0.1/").unwrap());
        assert_eq!(out, FetchOutcome::Timeout);
    }

    #[test]
    fn outage_window_downs_the_path_until_it_passes() {
        let (mut net, lab, _) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "")));
        let profile = FaultProfile::clean()
            .try_with_outage(SimTime::from_secs(10), SimTime::from_secs(50))
            .unwrap();
        net.set_network_faults(lab, profile);
        net.set_flow_log(true);
        let vp = net.add_vantage("t", lab);
        let url = Url::parse("http://www.site.ca/").unwrap();

        assert!(net.fetch(vp, &url).is_ok(), "before the window");
        net.advance_secs(10);
        assert_eq!(net.fetch(vp, &url), FetchOutcome::Timeout);
        net.advance_secs(40);
        assert!(net.fetch(vp, &url).is_ok(), "after the window");

        let log = net.flow_log();
        assert_eq!(
            log[1].disposition,
            FlowDisposition::Outage {
                resumes_at_secs: 50
            }
        );
    }

    #[test]
    fn injected_dns_and_truncation_surface_as_outcomes() {
        let (mut net, lab, _) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "")));
        let vp = net.add_vantage("t", lab);
        let url = Url::parse("http://www.site.ca/").unwrap();

        net.set_network_faults(
            lab,
            FaultProfile::clean().try_with_dns_failures(1.0).unwrap(),
        );
        net.set_flow_log(true);
        assert_eq!(net.fetch(vp, &url), FetchOutcome::DnsFailure);
        net.set_network_faults(lab, FaultProfile::clean().try_with_truncation(1.0).unwrap());
        assert_eq!(net.fetch(vp, &url), FetchOutcome::Truncated);

        let log = net.flow_log();
        assert_eq!(log[0].disposition, FlowDisposition::InjectedDnsFailure);
        assert_eq!(log[1].disposition, FlowDisposition::Truncated);
    }

    #[test]
    fn vantage_events_land_in_flow_log_and_telemetry() {
        let (mut net, lab, _) = world();
        net.set_flow_log(true);
        net.set_telemetry(filterwatch_telemetry::TelemetryHandle::enabled());
        let vp = net.add_vantage("t", lab);
        let url = Url::parse("http://www.site.ca/").unwrap();
        net.log_vantage_event(vp, &url, FlowDisposition::BreakerSkip("t".into()));

        let log = net.flow_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].network, "lab");
        assert_eq!(log[0].disposition, FlowDisposition::BreakerSkip("t".into()));
        let snap = net.telemetry().snapshot();
        assert_eq!(
            snap.counters_named("fetch.disposition"),
            vec![("breaker-skip", 1)]
        );
        // No fetch was actually carried.
        assert!(snap.counters_named("fetch.total").is_empty());
    }

    #[test]
    fn clock_advances() {
        let (net, _, _) = world();
        assert_eq!(net.now(), SimTime::ZERO);
        net.advance_days(3);
        net.advance_secs(5);
        assert_eq!(net.now().days(), 3);
        assert_eq!(net.now().secs(), 3 * crate::time::SECS_PER_DAY + 5);
    }

    #[test]
    fn remove_host_clears_dns() {
        let (mut net, lab, _) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["gone.site.ca"]);
        assert!(net.dns().resolve("gone.site.ca").is_some());
        assert!(net.remove_host(ip));
        assert!(net.dns().resolve("gone.site.ca").is_none());
        assert!(!net.remove_host(ip));
    }

    #[test]
    fn alloc_ip_skips_vantage_addresses() {
        let (mut net, lab, _) = world();
        let vp = net.add_vantage("t", lab);
        let vantage_ip = net.vantage(vp).ip;
        let next = net.alloc_ip(lab).unwrap();
        assert_ne!(vantage_ip, next);
    }

    #[test]
    #[should_panic(expected = "outside prefixes")]
    fn add_host_outside_prefix_panics() {
        let (mut net, lab, _) = world();
        net.add_host("99.99.99.99".parse().unwrap(), lab, &[]);
    }

    struct SilentDropper;

    impl Middlebox for SilentDropper {
        fn name(&self) -> &str {
            "silent-dropper"
        }
        fn process_request(&self, req: &Request, _ctx: &FlowCtx) -> Verdict {
            if req.url.host().contains("dropme") {
                Verdict::Drop
            } else if req.url.host().contains("resetme") {
                Verdict::Reset
            } else {
                Verdict::Forward
            }
        }
    }

    #[test]
    fn drop_and_reset_verdicts_surface_as_transport_failures() {
        let (mut net, lab, isp) = world();
        for host in ["www.dropme.ca", "www.resetme.ca", "www.okay.ca"] {
            let ip = net.alloc_ip(lab).unwrap();
            net.add_host(ip, lab, &[host]);
            net.add_service(ip, 80, Box::new(StaticSite::new("S", "")));
        }
        net.attach_middlebox(isp, Arc::new(SilentDropper));
        net.set_flow_log(true);
        let vp = net.add_vantage("t", isp);
        assert_eq!(
            net.fetch(vp, &Url::parse("http://www.dropme.ca/").unwrap()),
            FetchOutcome::Timeout
        );
        assert_eq!(
            net.fetch(vp, &Url::parse("http://www.resetme.ca/").unwrap()),
            FetchOutcome::Reset
        );
        assert!(net
            .fetch(vp, &Url::parse("http://www.okay.ca/").unwrap())
            .is_ok());
        let log = net.flow_log();
        use crate::flowlog::FlowDisposition;
        assert!(
            matches!(&log[0].disposition, FlowDisposition::DroppedBy(n) if n == "silent-dropper")
        );
        assert!(
            matches!(&log[1].disposition, FlowDisposition::ResetBy(n) if n == "silent-dropper")
        );
    }

    #[test]
    fn flow_log_records_dispositions() {
        use crate::flowlog::FlowDisposition;
        let (mut net, lab, isp) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "")));
        net.attach_middlebox(isp, Arc::new(BlockAll));
        let field = net.add_vantage("field", isp);
        let lab_vp = net.add_vantage("lab", lab);

        // Disabled by default: nothing recorded.
        let url = Url::parse("http://www.site.ca/").unwrap();
        let _ = net.fetch(lab_vp, &url);
        assert!(net.flow_log().is_empty());

        net.set_flow_log(true);
        let _ = net.fetch(lab_vp, &url);
        let _ = net.fetch(field, &url);
        let _ = net.fetch(lab_vp, &Url::parse("http://nosuch.example/").unwrap());
        let log = net.flow_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].disposition, FlowDisposition::Origin(200));
        assert!(matches!(
            &log[1].disposition,
            FlowDisposition::Intercepted { middlebox, status: 403 } if middlebox == "block-all"
        ));
        assert_eq!(log[2].disposition, FlowDisposition::DnsFailure);
        assert_eq!(log[1].network, "isp");
        assert!(log[0].to_line().contains("www.site.ca"));
        assert_eq!(net.clear_flow_log(), 3);
        assert!(net.flow_log().is_empty());
    }

    #[test]
    fn telemetry_counts_fetches_and_verdicts() {
        let (mut net, lab, isp) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "")));
        net.attach_middlebox(isp, Arc::new(BlockAll));
        net.set_telemetry(filterwatch_telemetry::TelemetryHandle::enabled());
        let field = net.add_vantage("field", isp);
        let lab_vp = net.add_vantage("lab", lab);

        let url = Url::parse("http://www.site.ca/").unwrap();
        let _ = net.fetch(lab_vp, &url);
        let _ = net.fetch(field, &url);
        let _ = net.fetch(field, &url);

        let snap = net.telemetry().snapshot();
        assert_eq!(
            snap.counters_named("fetch.total"),
            vec![("isp", 2), ("lab", 1)]
        );
        assert_eq!(
            snap.counters_named("middlebox.verdict"),
            vec![("block-all", 2)]
        );
        assert_eq!(
            snap.counters_named("fetch.disposition"),
            vec![("intercepted", 2), ("origin", 1)]
        );
        let lat = snap.histogram_named("fetch.wall_nanos").unwrap();
        assert_eq!(lat.total, 3);
    }

    #[test]
    fn network_lookup_by_name() {
        let (net, _, _) = world();
        assert!(net.network_by_name("isp").is_some());
        assert!(net.network_by_name("nope").is_none());
    }

    #[test]
    fn open_ports_reported_in_order() {
        let (mut net, lab, _) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &[]);
        net.add_service(ip, 8080, Box::new(StaticSite::new("b", "")));
        net.add_service(ip, 80, Box::new(StaticSite::new("a", "")));
        assert_eq!(net.host(ip).unwrap().open_ports(), vec![80, 8080]);
    }

    #[test]
    fn topology_digest_is_reproducible_and_shape_sensitive() {
        let (a, _, _) = world();
        let (b, _, _) = world();
        assert_eq!(a.topology_digest(), b.topology_digest());

        // Adding a host changes the digest.
        let (mut c, lab, _) = world();
        let ip = c.alloc_ip(lab).unwrap();
        c.add_host(ip, lab, &["extra.example"]);
        assert_ne!(a.topology_digest(), c.topology_digest());

        // Attaching a middlebox changes it too.
        let (mut d, _, isp) = world();
        d.attach_middlebox(isp, Arc::new(BlockAll));
        assert_ne!(a.topology_digest(), d.topology_digest());
    }

    #[test]
    fn both_fetch_paths_render_identical_flow_logs() {
        let build = || {
            let (mut net, lab, isp) = world();
            let ip = net.alloc_ip(lab).unwrap();
            net.add_host(ip, lab, &["www.site.ca"]);
            net.add_service(ip, 80, Box::new(StaticSite::new("Site", "")));
            net.attach_middlebox(isp, Arc::new(BlockAll));
            net.set_flow_log(true);
            let field = net.add_vantage("field", isp);
            let lab_vp = net.add_vantage("lab", lab);
            (net, field, lab_vp)
        };
        let run = |path: FetchPath| {
            let (net, field, lab_vp) = build();
            net.set_fetch_path(path);
            assert_eq!(net.fetch_path(), path);
            let mut out = Vec::new();
            for url in ["http://www.site.ca/", "http://nosuch.example/"] {
                let url = Url::parse(url).unwrap();
                out.push(format!("{:?}", net.fetch(field, &url)));
                out.push(format!("{:?}", net.fetch(lab_vp, &url)));
            }
            let log: Vec<String> = net.flow_log().iter().map(FlowRecord::to_line).collect();
            (out, log)
        };
        assert_eq!(run(FetchPath::Event), run(FetchPath::DirectReference));
    }

    #[test]
    fn batch_flows_interleave_and_return_in_input_order() {
        let (mut net, lab, isp) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "ok")));
        net.attach_middlebox(isp, Arc::new(BlockAll));
        let lab_client = net.alloc_ip(lab).unwrap();
        let isp_client = net.network(isp).cidrs[0].first();

        let url = Url::parse("http://www.site.ca/").unwrap();
        let batch: Vec<(NetworkId, IpAddr, Request)> = vec![
            (lab, lab_client, Request::get(url.clone())),
            (isp, isp_client, Request::get(url.clone())),
            (
                lab,
                lab_client,
                Request::get(Url::parse("http://nosuch.example/").unwrap()),
            ),
        ];
        let outcomes = net.fetch_batch(&batch);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_ok(), "lab sees the origin");
        assert_eq!(
            outcomes[1].response().map(|r| r.status.code()),
            Some(403),
            "isp client is intercepted"
        );
        assert_eq!(outcomes[2], FetchOutcome::DnsFailure);
        assert_eq!(net.flows_in_flight(), 0, "batch closes every flow");
        assert_eq!(net.pending_events(), 0);
    }

    #[test]
    fn started_flows_park_until_driven_to_quiescence() {
        let (mut net, lab, _) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "")));
        let vp = net.add_vantage("t", lab);

        let url = Url::parse("http://www.site.ca/").unwrap();
        let a = net.start_fetch(vp, &url);
        let b = net.start_fetch(vp, &Url::parse("http://nosuch.example/").unwrap());
        assert_eq!(net.flows_in_flight(), 2);
        assert_eq!(net.pending_events(), 2, "one opening event per flow");
        assert_eq!(net.take_outcome(a), None, "not driven yet");

        net.run_to_quiescence();
        assert_eq!(net.pending_events(), 0);
        assert!(net.take_outcome(a).map(|o| o.is_ok()).unwrap_or(false));
        assert_eq!(net.take_outcome(b), Some(FetchOutcome::DnsFailure));
        assert_eq!(net.take_outcome(b), None, "outcomes are taken once");
        assert_eq!(net.flows_in_flight(), 0);
    }

    #[test]
    fn event_log_records_dispatches_in_queue_order() {
        let (mut net, lab, isp) = world();
        let ip = net.alloc_ip(lab).unwrap();
        net.add_host(ip, lab, &["www.site.ca"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("Site", "")));
        net.attach_middlebox(isp, Arc::new(BlockAll));
        let field = net.add_vantage("field", isp);
        let lab_vp = net.add_vantage("lab", lab);
        let url = Url::parse("http://www.site.ca/").unwrap();

        // Disabled by default.
        let _ = net.fetch(lab_vp, &url);
        assert!(net.event_log().is_empty());

        net.set_event_log(true);
        let _ = net.fetch(lab_vp, &url);
        let _ = net.fetch(field, &url);
        let log = net.event_log();
        // Clean lab fetch: dns, fault, hop past empty chain, origin,
        // response. Intercepted isp fetch: dns, fault, hop 0 responds.
        let kinds: Vec<&str> = log.iter().map(|r| r.kind.to_token()).collect();
        assert_eq!(
            kinds,
            vec![
                "dns", "fault", "mb-hop", "origin", "response", // lab flow
                "dns", "fault", "mb-hop" // isp flow, blocked at hop 0
            ]
        );
        // Sequence numbers strictly increase; each line parses back.
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
        for rec in &log {
            assert_eq!(
                crate::kernel::EventRecord::parse_line(&rec.to_line()),
                Ok(rec.clone())
            );
        }
        assert_ne!(log[0].flow, log[5].flow, "flow tags distinguish flows");
        assert_eq!(net.clear_event_log(), 8);
        assert!(net.event_log().is_empty());
    }

    #[test]
    fn topology_digest_ignores_runtime_state() {
        let (net, lab_net, _) = world();
        let before = net.topology_digest();
        let mut net = net;
        let ip = net.alloc_ip(lab_net).unwrap();
        net.add_host(ip, lab_net, &["site.example"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("s", "hello")));
        let shaped = net.topology_digest();
        assert_ne!(before, shaped);

        // Fetching and advancing the clock leave the digest untouched.
        let v = net.add_vantage("tester", lab_net);
        let with_vantage = net.topology_digest();
        assert_ne!(shaped, with_vantage, "vantages are part of the shape");
        let url = Url::parse("http://site.example/").unwrap();
        let _ = net.fetch(v, &url);
        net.advance_days(3);
        assert_eq!(net.topology_digest(), with_vantage);
    }
}
