//! Simulated DNS: hostname → address resolution.
//!
//! A flat zone with optional wildcard records. DNS-level censorship is
//! out of scope for the paper (its products block at the HTTP layer), so
//! resolution is global and unfiltered; per-ISP DNS tampering could be
//! layered on via a middlebox if ever needed.

use std::collections::BTreeMap;

use crate::ip::IpAddr;

/// The global simulated DNS zone.
///
/// Records live in `BTreeMap`s so that [`Dns::records`] iterates in
/// hostname order — zone dumps are part of rendered world reports and
/// must not depend on hash seeding.
#[derive(Debug, Default)]
pub struct Dns {
    exact: BTreeMap<String, IpAddr>,
    /// Wildcard suffix records: `*.example.info` stored as `example.info`.
    wildcard: BTreeMap<String, IpAddr>,
}

impl Dns {
    /// An empty zone.
    pub fn new() -> Self {
        Dns::default()
    }

    /// Register an exact hostname. Overwrites any existing record.
    pub fn register(&mut self, host: &str, ip: IpAddr) {
        self.exact.insert(normalize(host), ip);
    }

    /// Register a wildcard: `*.suffix` (pass the bare suffix).
    pub fn register_wildcard(&mut self, suffix: &str, ip: IpAddr) {
        self.wildcard.insert(normalize(suffix), ip);
    }

    /// Remove an exact record; returns whether it existed.
    pub fn remove(&mut self, host: &str) -> bool {
        self.exact.remove(&normalize(host)).is_some()
    }

    /// Resolve a hostname (or dotted-quad literal) to an address.
    pub fn resolve(&self, host: &str) -> Option<IpAddr> {
        let host = normalize(host);
        if let Ok(ip) = host.parse::<IpAddr>() {
            return Some(ip);
        }
        if let Some(&ip) = self.exact.get(&host) {
            return Some(ip);
        }
        // Walk suffixes for wildcard matches: a.b.c → b.c → c.
        let mut rest = host.as_str();
        while let Some(idx) = rest.find('.') {
            rest = &rest[idx + 1..];
            if let Some(&ip) = self.wildcard.get(rest) {
                return Some(ip);
            }
        }
        None
    }

    /// Number of exact records.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Whether the zone is empty.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.wildcard.is_empty()
    }

    /// All exact records, sorted by hostname.
    pub fn records(&self) -> impl Iterator<Item = (&str, IpAddr)> {
        self.exact.iter().map(|(h, &ip)| (h.as_str(), ip))
    }
}

fn normalize(host: &str) -> String {
    host.trim_end_matches('.').to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_resolution_case_insensitive() {
        let mut dns = Dns::new();
        dns.register("WWW.Example.INFO", "5.0.0.1".parse().unwrap());
        assert_eq!(
            dns.resolve("www.example.info"),
            Some("5.0.0.1".parse().unwrap())
        );
        assert_eq!(
            dns.resolve("www.example.info."),
            Some("5.0.0.1".parse().unwrap())
        );
        assert_eq!(dns.resolve("other.example.info"), None);
    }

    #[test]
    fn ip_literals_resolve_to_themselves() {
        let dns = Dns::new();
        assert_eq!(dns.resolve("9.8.7.6"), Some("9.8.7.6".parse().unwrap()));
    }

    #[test]
    fn wildcard_matches_any_depth() {
        let mut dns = Dns::new();
        dns.register_wildcard("pool.example", "5.0.0.9".parse().unwrap());
        assert_eq!(
            dns.resolve("a.pool.example"),
            Some("5.0.0.9".parse().unwrap())
        );
        assert_eq!(
            dns.resolve("x.y.pool.example"),
            Some("5.0.0.9".parse().unwrap())
        );
        // The bare suffix itself is not covered by the wildcard.
        assert_eq!(dns.resolve("pool.example"), None);
    }

    #[test]
    fn exact_beats_wildcard() {
        let mut dns = Dns::new();
        dns.register_wildcard("zone.example", "5.0.0.1".parse().unwrap());
        dns.register("special.zone.example", "5.0.0.2".parse().unwrap());
        assert_eq!(
            dns.resolve("special.zone.example"),
            Some("5.0.0.2".parse().unwrap())
        );
    }

    #[test]
    fn removal() {
        let mut dns = Dns::new();
        dns.register("gone.example", "5.0.0.3".parse().unwrap());
        assert!(dns.remove("GONE.example"));
        assert!(!dns.remove("gone.example"));
        assert_eq!(dns.resolve("gone.example"), None);
    }

    #[test]
    fn counters() {
        let mut dns = Dns::new();
        assert!(dns.is_empty());
        dns.register("a.example", "5.0.0.1".parse().unwrap());
        dns.register("b.example", "5.0.0.2".parse().unwrap());
        assert_eq!(dns.len(), 2);
        assert_eq!(dns.records().count(), 2);
    }

    #[test]
    fn records_iterate_in_hostname_order() {
        let mut dns = Dns::new();
        dns.register("zeta.example", "5.0.0.3".parse().unwrap());
        dns.register("alpha.example", "5.0.0.1".parse().unwrap());
        dns.register("mid.example", "5.0.0.2".parse().unwrap());
        let hosts: Vec<&str> = dns.records().map(|(h, _)| h).collect();
        assert_eq!(hosts, vec!["alpha.example", "mid.example", "zeta.example"]);
    }
}
