//! Results of a simulated URL fetch.

use filterwatch_http::Response;

/// What a client observed when fetching a URL.
///
/// The variants mirror the failure modes real measurement clients
/// distinguish; the paper's products use explicit block pages (§4.1), so
/// `Ok(block page)` is the interesting censorship signal, while
/// `Timeout`/`Reset` represent the ambiguous styles the paper avoids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchOutcome {
    /// An HTTP response arrived (which may itself be a block page).
    Ok(Response),
    /// No answer: the flow was dropped somewhere.
    Timeout,
    /// The connection was reset.
    Reset,
    /// The hostname did not resolve.
    DnsFailure,
    /// The destination address or port was unreachable.
    ConnectFailed,
    /// The response was cut off mid-transfer; nothing usable arrived.
    Truncated,
}

impl FetchOutcome {
    /// The response, when one arrived.
    pub fn response(&self) -> Option<&Response> {
        match self {
            FetchOutcome::Ok(resp) => Some(resp),
            _ => None,
        }
    }

    /// Consume into the response, when one arrived.
    pub fn into_response(self) -> Option<Response> {
        match self {
            FetchOutcome::Ok(resp) => Some(resp),
            _ => None,
        }
    }

    /// Whether any HTTP response arrived.
    pub fn is_ok(&self) -> bool {
        matches!(self, FetchOutcome::Ok(_))
    }

    /// A short label for logs/reports.
    pub fn label(&self) -> &'static str {
        match self {
            FetchOutcome::Ok(_) => "ok",
            FetchOutcome::Timeout => "timeout",
            FetchOutcome::Reset => "reset",
            FetchOutcome::DnsFailure => "dns-failure",
            FetchOutcome::ConnectFailed => "connect-failed",
            FetchOutcome::Truncated => "truncated",
        }
    }
}

impl std::fmt::Display for FetchOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchOutcome::Ok(resp) => write!(f, "ok ({})", resp.status),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_http::Status;

    #[test]
    fn accessors() {
        let ok = FetchOutcome::Ok(Response::new(Status::OK));
        assert!(ok.is_ok());
        assert!(ok.response().is_some());
        assert!(ok.into_response().is_some());
        assert!(!FetchOutcome::Timeout.is_ok());
        assert!(FetchOutcome::Reset.response().is_none());
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(FetchOutcome::DnsFailure.label(), "dns-failure");
        assert_eq!(FetchOutcome::Timeout.to_string(), "timeout");
        assert_eq!(FetchOutcome::Truncated.to_string(), "truncated");
        assert!(!FetchOutcome::Truncated.is_ok());
        let ok = FetchOutcome::Ok(Response::new(Status::FORBIDDEN));
        assert_eq!(ok.to_string(), "ok (403 Forbidden)");
    }
}
