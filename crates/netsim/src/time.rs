//! Virtual time.
//!
//! The confirmation methodology is clocked in *days*: submit sites, wait
//! 3–5 days for vendor review, retest. The simulation keeps a virtual
//! clock in seconds (day 0 = experiment epoch) that the world advances
//! explicitly — nothing ever reads wall-clock time, which is what makes
//! runs reproducible.

/// A point in virtual time, stored as whole seconds since the simulation
/// epoch (day 0, 00:00).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// Seconds per virtual day.
pub const SECS_PER_DAY: u64 = 86_400;

impl SimTime {
    /// The epoch (day 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// A time from whole days since the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * SECS_PER_DAY)
    }

    /// Seconds since the epoch.
    pub const fn secs(&self) -> u64 {
        self.0
    }

    /// Whole days since the epoch (floor).
    pub const fn days(&self) -> u64 {
        self.0 / SECS_PER_DAY
    }

    /// This time advanced by `secs` seconds.
    pub const fn plus_secs(&self, secs: u64) -> SimTime {
        SimTime(self.0 + secs)
    }

    /// This time advanced by `days` days.
    pub const fn plus_days(&self, days: u64) -> SimTime {
        SimTime(self.0 + days * SECS_PER_DAY)
    }

    /// Absolute difference in seconds.
    pub const fn abs_diff(&self, other: SimTime) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let day = self.days();
        let rem = self.0 % SECS_PER_DAY;
        write!(
            f,
            "day {day} {:02}:{:02}:{:02}",
            rem / 3600,
            (rem % 3600) / 60,
            rem % 60
        )
    }
}

impl std::str::FromStr for SimTime {
    type Err = String;

    /// Parse the `Display` form, `day D hh:mm:ss`.
    fn from_str(s: &str) -> Result<Self, String> {
        let rest = s
            .strip_prefix("day ")
            .ok_or_else(|| format!("SimTime must start with 'day ': {s:?}"))?;
        let (day, clock) = rest
            .split_once(' ')
            .ok_or_else(|| format!("missing clock part in {s:?}"))?;
        let day: u64 = day.parse().map_err(|e| format!("bad day in {s:?}: {e}"))?;
        let mut parts = clock.split(':');
        let mut next = |what: &str| -> Result<u64, String> {
            parts
                .next()
                .ok_or_else(|| format!("missing {what} in {s:?}"))?
                .parse()
                .map_err(|e| format!("bad {what} in {s:?}: {e}"))
        };
        let (h, m, sec) = (next("hours")?, next("minutes")?, next("seconds")?);
        if parts.next().is_some() {
            return Err(format!("trailing clock fields in {s:?}"));
        }
        if h >= 24 || m >= 60 || sec >= 60 {
            return Err(format!("clock fields out of range in {s:?}"));
        }
        Ok(SimTime::from_days(day).plus_secs(h * 3600 + m * 60 + sec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_days(3).plus_secs(3661);
        assert_eq!(t.days(), 3);
        assert_eq!(t.secs(), 3 * SECS_PER_DAY + 3661);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_days(2) < SimTime::from_days(3));
        assert!(SimTime::ZERO <= SimTime::from_secs(0));
    }

    #[test]
    fn display_format() {
        assert_eq!(
            SimTime::from_days(2).plus_secs(3723).to_string(),
            "day 2 01:02:03"
        );
    }

    #[test]
    fn display_round_trips_through_parse() {
        for t in [
            SimTime::ZERO,
            SimTime::from_days(2).plus_secs(3723),
            SimTime::from_secs(86_399),
        ] {
            let parsed: SimTime = t.to_string().parse().unwrap();
            assert_eq!(parsed, t);
        }
        assert!("2 01:02:03".parse::<SimTime>().is_err());
        assert!("day x 01:02:03".parse::<SimTime>().is_err());
        assert!("day 1 25:00:00".parse::<SimTime>().is_err());
        assert!("day 1 01:02".parse::<SimTime>().is_err());
        assert!("day 1 01:02:03:04".parse::<SimTime>().is_err());
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(25);
        assert_eq!(a.abs_diff(b), 15);
        assert_eq!(b.abs_diff(a), 15);
    }
}
