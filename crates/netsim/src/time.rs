//! Virtual time.
//!
//! The confirmation methodology is clocked in *days*: submit sites, wait
//! 3–5 days for vendor review, retest. The simulation keeps a virtual
//! clock in seconds (day 0 = experiment epoch) that the world advances
//! explicitly — nothing ever reads wall-clock time, which is what makes
//! runs reproducible.

/// A point in virtual time, stored as whole seconds since the simulation
/// epoch (day 0, 00:00).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// Seconds per virtual day.
pub const SECS_PER_DAY: u64 = 86_400;

impl SimTime {
    /// The epoch (day 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// A time from whole days since the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * SECS_PER_DAY)
    }

    /// Seconds since the epoch.
    pub const fn secs(&self) -> u64 {
        self.0
    }

    /// Whole days since the epoch (floor).
    pub const fn days(&self) -> u64 {
        self.0 / SECS_PER_DAY
    }

    /// This time advanced by `secs` seconds.
    pub const fn plus_secs(&self, secs: u64) -> SimTime {
        SimTime(self.0 + secs)
    }

    /// This time advanced by `days` days.
    pub const fn plus_days(&self, days: u64) -> SimTime {
        SimTime(self.0 + days * SECS_PER_DAY)
    }

    /// Absolute difference in seconds.
    pub const fn abs_diff(&self, other: SimTime) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let day = self.days();
        let rem = self.0 % SECS_PER_DAY;
        write!(f, "day {day} {:02}:{:02}:{:02}", rem / 3600, (rem % 3600) / 60, rem % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_days(3).plus_secs(3661);
        assert_eq!(t.days(), 3);
        assert_eq!(t.secs(), 3 * SECS_PER_DAY + 3661);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_days(2) < SimTime::from_days(3));
        assert!(SimTime::ZERO <= SimTime::from_secs(0));
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_days(2).plus_secs(3723).to_string(), "day 2 01:02:03");
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(25);
        assert_eq!(a.abs_diff(b), 15);
        assert_eq!(b.abs_diff(a), 15);
    }
}
