//! Countries, autonomous systems and prefix allocation.
//!
//! The identification pipeline maps validated IPs to countries (MaxMind
//! in the paper) and ASNs (Team Cymru). In the simulation, both databases
//! derive from a single ground-truth registry: every network's prefixes
//! are allocated here, so geolocation is exact by construction — matching
//! the paper's (implicit) assumption that MaxMind country-level data is
//! reliable.

use std::collections::BTreeMap;

use crate::ip::{Cidr, IpAddr};

/// An ISO-3166-style two-letter country code (stored uppercase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Build from a two-ASCII-letter string (any case).
    pub fn new(code: &str) -> Self {
        let bytes = code.as_bytes();
        assert!(
            bytes.len() == 2 && bytes.iter().all(|b| b.is_ascii_alphabetic()),
            "bad country code {code:?}"
        );
        CountryCode([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("ASCII by construction")
    }
}

impl std::fmt::Display for CountryCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Registry entry for a country.
#[derive(Debug, Clone)]
pub struct Country {
    /// Two-letter code.
    pub code: CountryCode,
    /// Human-readable name.
    pub name: String,
    /// Country-code top-level domain (without the dot).
    pub cctld: String,
}

/// Registry entry for an autonomous system.
#[derive(Debug, Clone)]
pub struct AsRecord {
    /// The AS number.
    pub asn: Asn,
    /// AS name as whois would report it.
    pub name: String,
    /// Registration country.
    pub country: CountryCode,
}

/// Ground truth for the simulated address space.
#[derive(Debug, Default)]
pub struct Registry {
    countries: BTreeMap<CountryCode, Country>,
    ases: BTreeMap<Asn, AsRecord>,
    /// Allocated prefixes in allocation order.
    prefixes: Vec<(Cidr, Asn)>,
    /// Next /24 block index to hand out (starting at 5.0.0.0).
    next_block: u32,
}

/// First address handed out by the allocator. Chosen to look like public
/// space and leave room below for special-purpose use.
const ALLOC_BASE: u32 = 5 << 24; // 5.0.0.0

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a country; returns its code. Re-registering the same code
    /// overwrites the name/ccTLD.
    pub fn register_country(&mut self, code: &str, name: &str, cctld: &str) -> CountryCode {
        let code = CountryCode::new(code);
        self.countries.insert(
            code,
            Country {
                code,
                name: name.to_string(),
                cctld: cctld.to_ascii_lowercase(),
            },
        );
        code
    }

    /// Register an autonomous system. The country must already exist.
    pub fn register_as(&mut self, asn: u32, name: &str, country: &str) -> Asn {
        let country = CountryCode::new(country);
        assert!(
            self.countries.contains_key(&country),
            "country {country} not registered"
        );
        let asn = Asn(asn);
        self.ases.insert(
            asn,
            AsRecord {
                asn,
                name: name.to_string(),
                country,
            },
        );
        asn
    }

    /// Allocate a fresh prefix of `size_p24` contiguous /24 blocks to an
    /// AS. Returns `None` if the AS is unknown.
    ///
    /// Allocations are sequential and deterministic: the first call
    /// always returns `5.0.0.0/24`-based space regardless of seed.
    pub fn allocate_prefix(&mut self, asn: Asn, size_p24: u32) -> Option<Cidr> {
        assert!(
            size_p24.is_power_of_two(),
            "size must be a power of two /24s"
        );
        if !self.ases.contains_key(&asn) {
            return None;
        }
        // Align the block index to the allocation size.
        let align = size_p24;
        let aligned = self.next_block.div_ceil(align) * align;
        let base = IpAddr(ALLOC_BASE + (aligned << 8));
        let prefix_len = 24 - size_p24.trailing_zeros() as u8;
        let cidr = Cidr::new(base, prefix_len);
        self.next_block = aligned + size_p24;
        self.prefixes.push((cidr, asn));
        Some(cidr)
    }

    /// Country metadata by code.
    pub fn country(&self, code: CountryCode) -> Option<&Country> {
        self.countries.get(&code)
    }

    /// Country metadata by ccTLD (e.g. `"qa"`).
    pub fn country_by_cctld(&self, cctld: &str) -> Option<&Country> {
        let cctld = cctld.to_ascii_lowercase();
        self.countries.values().find(|c| c.cctld == cctld)
    }

    /// All registered countries, ordered by code.
    pub fn countries(&self) -> impl Iterator<Item = &Country> {
        self.countries.values()
    }

    /// AS metadata.
    pub fn as_record(&self, asn: Asn) -> Option<&AsRecord> {
        self.ases.get(&asn)
    }

    /// All registered ASes, ordered by number.
    pub fn ases(&self) -> impl Iterator<Item = &AsRecord> {
        self.ases.values()
    }

    /// All allocated prefixes with their owners, in allocation order.
    pub fn prefixes(&self) -> &[(Cidr, Asn)] {
        &self.prefixes
    }

    /// The AS owning `ip`, if any prefix covers it.
    pub fn asn_of(&self, ip: IpAddr) -> Option<Asn> {
        self.prefixes
            .iter()
            .find(|(cidr, _)| cidr.contains(ip))
            .map(|&(_, asn)| asn)
    }

    /// The country `ip` geolocates to (via its owning AS).
    pub fn country_of(&self, ip: IpAddr) -> Option<CountryCode> {
        let asn = self.asn_of(ip)?;
        self.ases.get(&asn).map(|rec| rec.country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.register_country("QA", "Qatar", "qa");
        r.register_country("YE", "Yemen", "ye");
        r.register_as(42298, "OOREDOO-QA", "QA");
        r.register_as(12486, "YEMENNET", "YE");
        r
    }

    #[test]
    fn country_code_normalizes_case() {
        assert_eq!(CountryCode::new("qa").as_str(), "QA");
        assert_eq!(CountryCode::new("Qa").to_string(), "QA");
    }

    #[test]
    #[should_panic(expected = "bad country code")]
    fn country_code_rejects_junk() {
        CountryCode::new("Q1");
    }

    #[test]
    fn allocation_is_sequential_and_owned() {
        let mut r = sample();
        let a = r.allocate_prefix(Asn(42298), 1).unwrap();
        let b = r.allocate_prefix(Asn(12486), 4).unwrap();
        assert_eq!(a.to_string(), "5.0.0.0/24");
        // 4 x /24 aligned up to a /22 boundary.
        assert_eq!(b.to_string(), "5.0.4.0/22");
        assert_eq!(r.asn_of("5.0.0.9".parse().unwrap()), Some(Asn(42298)));
        assert_eq!(r.asn_of("5.0.5.1".parse().unwrap()), Some(Asn(12486)));
        assert_eq!(r.asn_of("5.0.1.1".parse().unwrap()), None);
    }

    #[test]
    fn country_of_ip_via_as() {
        let mut r = sample();
        let p = r.allocate_prefix(Asn(12486), 1).unwrap();
        assert_eq!(r.country_of(p.first()), Some(CountryCode::new("YE")));
    }

    #[test]
    fn unknown_as_cannot_allocate() {
        let mut r = sample();
        assert!(r.allocate_prefix(Asn(99999), 1).is_none());
    }

    #[test]
    #[should_panic(expected = "country")]
    fn as_requires_registered_country() {
        let mut r = Registry::new();
        r.register_as(1, "X", "ZZ");
    }

    #[test]
    fn cctld_lookup() {
        let r = sample();
        assert_eq!(r.country_by_cctld("QA").unwrap().name, "Qatar");
        assert!(r.country_by_cctld("xx").is_none());
    }

    #[test]
    fn asn_display() {
        assert_eq!(Asn(5384).to_string(), "AS5384");
    }
}
