//! A deterministic timer wheel on the virtual clock.
//!
//! The confirm stage's submit→retest waits are days of virtual time; an
//! orchestrator running many campaigns concurrently needs to park each
//! one until its deadline and wake the earliest next. [`TimerWheel`]
//! is that structure: a slotted near wheel (one slot per coarse tick
//! over a bounded horizon) backed by a sorted overflow map for far
//! deadlines, with strictly deterministic firing order — by deadline,
//! then by insertion sequence. Nothing here reads wall-clock time; the
//! wheel only moves when a caller hands it a new `now`.

use std::collections::{BTreeMap, VecDeque};

use crate::time::SimTime;

/// Number of near-wheel slots. With the default hour granularity the
/// near wheel covers ~2.6 virtual days; longer waits sit in overflow
/// until the wheel turns close enough to cascade them in.
const SLOTS: usize = 64;

/// One scheduled entry.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

/// A two-level timer wheel over virtual time.
///
/// Deadlines within the near horizon (`SLOTS * granularity`) hash into
/// slots; everything farther waits in a `BTreeMap` keyed by
/// `(deadline, seq)` and cascades into the near wheel as time advances.
/// [`TimerWheel::pop_due`] returns every item whose deadline has
/// passed, ordered by `(deadline, insertion seq)` — the tie-break that
/// keeps concurrent campaigns deterministic.
#[derive(Debug)]
pub struct TimerWheel<T> {
    granularity_secs: u64,
    /// Near slots, indexed by `(deadline / granularity) % SLOTS`.
    slots: Vec<VecDeque<Entry<T>>>,
    /// Far deadlines, cascaded in lazily.
    overflow: BTreeMap<(SimTime, u64), T>,
    /// The time up to which the wheel has already fired.
    horizon: SimTime,
    /// Monotone insertion sequence (the deterministic tie-break).
    seq: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// An empty wheel with one-hour slot granularity — the natural
    /// tick for a methodology clocked in days.
    pub fn new() -> Self {
        TimerWheel::with_granularity(3_600)
    }

    /// An empty wheel with an explicit slot granularity in virtual
    /// seconds (minimum 1).
    pub fn with_granularity(granularity_secs: u64) -> Self {
        let granularity_secs = granularity_secs.max(1);
        TimerWheel {
            granularity_secs,
            slots: (0..SLOTS).map(|_| VecDeque::new()).collect(),
            overflow: BTreeMap::new(),
            horizon: SimTime::ZERO,
            seq: 0,
            len: 0,
        }
    }

    /// Number of timers currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `item` to fire once `now` reaches `at`. Deadlines
    /// already in the past fire on the next [`TimerWheel::pop_due`].
    pub fn schedule(&mut self, at: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        if self.in_near_horizon(at) {
            let slot = self.slot_of(at);
            self.slots[slot].push_back(Entry { at, seq, item });
        } else {
            self.overflow.insert((at, seq), item);
        }
    }

    /// The earliest scheduled deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let near = self
            .slots
            .iter()
            .flat_map(|slot| slot.iter().map(|e| e.at))
            .min();
        let far = self.overflow.keys().next().map(|(at, _)| *at);
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Remove and return every item whose deadline is `<= now`, ordered
    /// by `(deadline, insertion seq)`. Advances the wheel's horizon to
    /// `now`, cascading overflow entries that came into range.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<T> {
        // Cascade overflow entries that are now due or near.
        let mut cascade: Vec<(SimTime, u64, T)> = Vec::new();
        let keys: Vec<(SimTime, u64)> = self
            .overflow
            .range(..=(now, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            if let Some(item) = self.overflow.remove(&key) {
                cascade.push((key.0, key.1, item));
            }
        }

        let mut due: Vec<Entry<T>> = cascade
            .into_iter()
            .map(|(at, seq, item)| Entry { at, seq, item })
            .collect();
        for slot in &mut self.slots {
            let mut keep = VecDeque::new();
            while let Some(e) = slot.pop_front() {
                if e.at <= now {
                    due.push(e);
                } else {
                    keep.push_back(e);
                }
            }
            *slot = keep;
        }
        due.sort_by_key(|e| (e.at, e.seq));
        self.len -= due.len();
        if now > self.horizon {
            self.horizon = now;
        }
        due.into_iter().map(|e| e.item).collect()
    }

    fn in_near_horizon(&self, at: SimTime) -> bool {
        at.secs() < self.horizon.secs() + self.granularity_secs * SLOTS as u64
    }

    fn slot_of(&self, at: SimTime) -> usize {
        ((at.secs() / self.granularity_secs) % SLOTS as u64) as usize
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_days(5), "c");
        w.schedule(SimTime::from_days(1), "a");
        w.schedule(SimTime::from_days(3), "b");
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_deadline(), Some(SimTime::from_days(1)));
        assert_eq!(w.pop_due(SimTime::from_days(3)), vec!["a", "b"]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(SimTime::from_days(3)), Vec::<&str>::new());
        assert_eq!(w.pop_due(SimTime::from_days(5)), vec!["c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_deadline_fires_in_insertion_order() {
        let mut w = TimerWheel::new();
        for i in 0..10 {
            w.schedule(SimTime::from_days(4), i);
        }
        assert_eq!(
            w.pop_due(SimTime::from_days(4)),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn far_deadlines_cascade_from_overflow() {
        let mut w = TimerWheel::with_granularity(60);
        // Far beyond the near horizon (64 slots x 60 s).
        w.schedule(SimTime::from_days(30), "far");
        w.schedule(SimTime::from_secs(30), "near");
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(30)));
        assert_eq!(w.pop_due(SimTime::from_secs(60)), vec!["near"]);
        assert_eq!(w.pop_due(SimTime::from_days(29)), Vec::<&str>::new());
        assert_eq!(w.pop_due(SimTime::from_days(30)), vec!["far"]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut w = TimerWheel::new();
        w.pop_due(SimTime::from_days(10));
        w.schedule(SimTime::from_days(2), "late");
        assert_eq!(w.pop_due(SimTime::from_days(10)), vec!["late"]);
    }

    #[test]
    fn matches_sorted_reference_model() {
        // Deterministic pseudo-random schedule vs a BTreeMap reference.
        let mut w = TimerWheel::with_granularity(7);
        let mut model: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..500u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = (state >> 33) % 1_000_000;
            w.schedule(SimTime::from_secs(at), i);
            model.insert((at, i), i);
        }
        for step in [1_000u64, 50_000, 50_000, 400_000, 2_000_000] {
            let now = w.horizon.secs() + step;
            let fired = w.pop_due(SimTime::from_secs(now));
            let keys: Vec<(u64, u64)> = model.range(..=(now, u64::MAX)).map(|(k, _)| *k).collect();
            let expect: Vec<u64> = keys
                .iter()
                .map(|k| model.remove(k).expect("present"))
                .collect();
            assert_eq!(fired, expect, "now={now}");
        }
        assert!(w.is_empty());
        assert!(model.is_empty());
    }
}
