//! Deterministic timers on the virtual clock, backed by the event core.
//!
//! The confirm stage's submit→retest waits are days of virtual time; an
//! orchestrator running many campaigns concurrently needs to park each
//! one until its deadline and wake the earliest next. [`TimerWheel`] is
//! that structure: a thin facade over [`EventQueue`](crate::event::EventQueue)
//! that fires strictly by `(deadline, insertion seq)` — so orchestrator
//! `Wait` deadlines sit on the same deterministic queue discipline as
//! every other simulated event. Nothing here reads wall-clock time; the
//! wheel only moves when a caller hands it a new `now`.
//!
//! Historically this was a two-level slotted wheel with its own overflow
//! map; the slotting (and its granularity knob) was an implementation
//! detail that the event core made redundant. The constructor signature
//! is kept so existing callers compile unchanged — granularity no longer
//! affects behaviour, which was already true observationally: firing
//! order never depended on it.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A deterministic timer queue over virtual time.
///
/// [`TimerWheel::pop_due`] returns every item whose deadline has
/// passed, ordered by `(deadline, insertion seq)` — the tie-break that
/// keeps concurrent campaigns deterministic.
#[derive(Debug, Clone)]
pub struct TimerWheel<T> {
    queue: EventQueue<T>,
    /// The time up to which the wheel has already fired.
    horizon: SimTime,
}

impl<T> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            queue: EventQueue::new(),
            horizon: SimTime::ZERO,
        }
    }

    /// An empty wheel. The granularity parameter is accepted for
    /// compatibility with the old slotted implementation and has no
    /// observable effect: firing order is always exactly
    /// `(deadline, insertion seq)`.
    pub fn with_granularity(_granularity_secs: u64) -> Self {
        TimerWheel::new()
    }

    /// Number of timers currently scheduled.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no timers are scheduled.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedule `item` to fire once `now` reaches `at`. Deadlines
    /// already in the past fire on the next [`TimerWheel::pop_due`].
    pub fn schedule(&mut self, at: SimTime, item: T) {
        self.queue.schedule(at, item);
    }

    /// The earliest scheduled deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.queue.next_deadline()
    }

    /// Remove and return every item whose deadline is `<= now`, ordered
    /// by `(deadline, insertion seq)`. Advances the wheel's horizon to
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<T> {
        if now > self.horizon {
            self.horizon = now;
        }
        self.queue.pop_due(now)
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_days(5), "c");
        w.schedule(SimTime::from_days(1), "a");
        w.schedule(SimTime::from_days(3), "b");
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_deadline(), Some(SimTime::from_days(1)));
        assert_eq!(w.pop_due(SimTime::from_days(3)), vec!["a", "b"]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(SimTime::from_days(3)), Vec::<&str>::new());
        assert_eq!(w.pop_due(SimTime::from_days(5)), vec!["c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_deadline_fires_in_insertion_order() {
        let mut w = TimerWheel::new();
        for i in 0..10 {
            w.schedule(SimTime::from_days(4), i);
        }
        assert_eq!(
            w.pop_due(SimTime::from_days(4)),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn far_deadlines_cascade_from_overflow() {
        let mut w = TimerWheel::with_granularity(60);
        // Far beyond the old near horizon (64 slots x 60 s).
        w.schedule(SimTime::from_days(30), "far");
        w.schedule(SimTime::from_secs(30), "near");
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(30)));
        assert_eq!(w.pop_due(SimTime::from_secs(60)), vec!["near"]);
        assert_eq!(w.pop_due(SimTime::from_days(29)), Vec::<&str>::new());
        assert_eq!(w.pop_due(SimTime::from_days(30)), vec!["far"]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut w = TimerWheel::new();
        w.pop_due(SimTime::from_days(10));
        w.schedule(SimTime::from_days(2), "late");
        assert_eq!(w.pop_due(SimTime::from_days(10)), vec!["late"]);
    }

    #[test]
    fn matches_sorted_reference_model() {
        // Deterministic pseudo-random schedule vs a BTreeMap reference.
        let mut w = TimerWheel::with_granularity(7);
        let mut model: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..500u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = (state >> 33) % 1_000_000;
            w.schedule(SimTime::from_secs(at), i);
            model.insert((at, i), i);
        }
        for step in [1_000u64, 50_000, 50_000, 400_000, 2_000_000] {
            let now = w.horizon.secs() + step;
            let fired = w.pop_due(SimTime::from_secs(now));
            let keys: Vec<(u64, u64)> = model.range(..=(now, u64::MAX)).map(|(k, _)| *k).collect();
            let expect: Vec<u64> = keys
                .iter()
                .map(|k| model.remove(k).expect("present"))
                .collect();
            assert_eq!(fired, expect, "now={now}");
        }
        assert!(w.is_empty());
        assert!(model.is_empty());
    }
}
