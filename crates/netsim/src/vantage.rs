//! Vantage points: where measurements originate.
//!
//! The paper's client-based tests run from "the field" (a tester inside
//! the censored ISP) and from "the lab" (University of Toronto, which
//! does not filter the tested content). A vantage point is simply a
//! client identity attached to a network; its traffic traverses that
//! network's middlebox chain and fault profile.

use crate::internet::NetworkId;
use crate::ip::IpAddr;

/// Handle to a registered vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VantageId(pub(crate) usize);

/// A measurement client location.
#[derive(Debug, Clone)]
pub struct Vantage {
    /// Human-readable name ("etisalat-field", "toronto-lab").
    pub name: String,
    /// The network whose egress path this client uses.
    pub network: NetworkId,
    /// The client's address within that network.
    pub ip: IpAddr,
}

impl Vantage {
    /// Create a vantage point description.
    pub fn new(name: &str, network: NetworkId, ip: IpAddr) -> Self {
        Vantage {
            name: name.to_string(),
            network,
            ip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let v = Vantage::new("lab", NetworkId(3), "5.0.0.7".parse().unwrap());
        assert_eq!(v.name, "lab");
        assert_eq!(v.network, NetworkId(3));
        assert_eq!(v.ip.to_string(), "5.0.0.7");
    }
}
