//! IPv4 addresses and CIDR prefixes.
//!
//! The simulation uses its own 32-bit address type rather than
//! `std::net::Ipv4Addr` because prefix arithmetic (allocation, range
//! scans, interval lookups) is the common operation here, and an explicit
//! `u32` representation keeps that arithmetic obvious.

/// A simulated IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Build from dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(&self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The numeric value.
    pub const fn value(&self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for IpAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl std::str::FromStr for IpAddr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(format!("bad IPv4 address {s:?}"));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().map_err(|_| format!("bad octet {p:?} in {s:?}"))?;
        }
        Ok(IpAddr::from_octets(
            octets[0], octets[1], octets[2], octets[3],
        ))
    }
}

/// A CIDR prefix (`base/len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cidr {
    base: u32,
    prefix_len: u8,
}

impl Cidr {
    /// Create a prefix; the base is masked down to the prefix boundary.
    pub fn new(base: IpAddr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length {prefix_len} > 32");
        Cidr {
            base: base.0 & Self::mask(prefix_len),
            prefix_len,
        }
    }

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    /// First address in the prefix.
    pub const fn first(&self) -> IpAddr {
        IpAddr(self.base)
    }

    /// Last address in the prefix.
    pub fn last(&self) -> IpAddr {
        IpAddr(self.base | !Self::mask(self.prefix_len))
    }

    /// Prefix length in bits.
    pub const fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: IpAddr) -> bool {
        ip.0 & Self::mask(self.prefix_len) == self.base
    }

    /// Iterate every address in the prefix, in order.
    pub fn iter(&self) -> impl Iterator<Item = IpAddr> {
        let first = self.base as u64;
        let size = self.size();
        (first..first + size).map(|v| IpAddr(v as u32))
    }
}

impl std::fmt::Display for Cidr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.first(), self.prefix_len)
    }
}

impl std::str::FromStr for Cidr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s.split_once('/').ok_or_else(|| format!("bad CIDR {s:?}"))?;
        let ip: IpAddr = ip.parse()?;
        let len: u8 = len
            .parse()
            .map_err(|_| format!("bad prefix length in {s:?}"))?;
        if len > 32 {
            return Err(format!("prefix length {len} > 32"));
        }
        Ok(Cidr::new(ip, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_round_trip() {
        let ip: IpAddr = "203.0.113.7".parse().unwrap();
        assert_eq!(ip.octets(), [203, 0, 113, 7]);
        assert_eq!(ip.to_string(), "203.0.113.7");
    }

    #[test]
    fn ip_parse_errors() {
        assert!("1.2.3".parse::<IpAddr>().is_err());
        assert!("1.2.3.256".parse::<IpAddr>().is_err());
        assert!("a.b.c.d".parse::<IpAddr>().is_err());
    }

    #[test]
    fn cidr_masks_base() {
        let c = Cidr::new("10.1.2.3".parse().unwrap(), 24);
        assert_eq!(c.first().to_string(), "10.1.2.0");
        assert_eq!(c.last().to_string(), "10.1.2.255");
        assert_eq!(c.size(), 256);
    }

    #[test]
    fn cidr_contains() {
        let c: Cidr = "192.0.2.0/24".parse().unwrap();
        assert!(c.contains("192.0.2.0".parse().unwrap()));
        assert!(c.contains("192.0.2.255".parse().unwrap()));
        assert!(!c.contains("192.0.3.0".parse().unwrap()));
    }

    #[test]
    fn cidr_iter_covers_range() {
        let c: Cidr = "10.0.0.0/30".parse().unwrap();
        let ips: Vec<String> = c.iter().map(|ip| ip.to_string()).collect();
        assert_eq!(ips, vec!["10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3"]);
    }

    #[test]
    fn cidr_display_and_parse() {
        let c: Cidr = "172.16.0.0/12".parse().unwrap();
        assert_eq!(c.to_string(), "172.16.0.0/12");
        assert!("1.2.3.4/33".parse::<Cidr>().is_err());
        assert!("1.2.3.4".parse::<Cidr>().is_err());
    }

    #[test]
    fn zero_and_full_prefixes() {
        let all: Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains("255.255.255.255".parse().unwrap()));
        assert_eq!(all.size(), 1u64 << 32);
        let one: Cidr = "9.9.9.9/32".parse().unwrap();
        assert_eq!(one.size(), 1);
        assert_eq!(one.first(), one.last());
    }
}
