//! Middleboxes: in-path traffic inspection at network egress.
//!
//! A network's middlebox chain sees every HTTP request its clients send.
//! Each box returns a [`Verdict`]: pass the request on, answer it itself
//! (block pages), or break the connection (silent censorship styles the
//! paper deliberately avoids studying, but which the model supports for
//! completeness). Responses traverse the chain in reverse so proxies can
//! annotate them (e.g. Blue Coat `Via` headers).

use filterwatch_http::{Request, Response};

use crate::ip::IpAddr;
use crate::time::SimTime;

/// Context for one flow through a middlebox chain.
#[derive(Debug, Clone, Copy)]
pub struct FlowCtx {
    /// Virtual time of the request.
    pub now: SimTime,
    /// The client address originating the flow.
    pub client_ip: IpAddr,
}

/// A middlebox's decision for a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Let the request continue toward the origin.
    Forward,
    /// Intercept: answer with this response (block page, redirect, …).
    Respond(Box<Response>),
    /// Silently drop the request — the client sees a timeout.
    Drop,
    /// Send a TCP reset — the client sees a connection reset.
    Reset,
}

impl Verdict {
    /// Convenience constructor for [`Verdict::Respond`].
    pub fn respond(resp: Response) -> Self {
        Verdict::Respond(Box::new(resp))
    }
}

/// In-path traffic inspection device or software.
pub trait Middlebox: Send + Sync {
    /// A short identifier for logs and reports.
    fn name(&self) -> &str;

    /// Decide what happens to an outbound request.
    fn process_request(&self, req: &Request, ctx: &FlowCtx) -> Verdict;

    /// Optionally transform the origin's response on the way back.
    /// The default is a pass-through.
    fn process_response(&self, _req: &Request, resp: Response, _ctx: &FlowCtx) -> Response {
        resp
    }
}

/// A chain of middleboxes applied in order.
///
/// The first non-[`Verdict::Forward`] verdict wins; the response then
/// traverses only the boxes *before* the decider, in reverse.
#[derive(Default)]
pub struct Chain {
    boxes: Vec<std::sync::Arc<dyn Middlebox>>,
}

impl Chain {
    /// An empty chain (every request forwarded untouched).
    pub fn new() -> Self {
        Chain::default()
    }

    /// Append a middlebox at the egress end of the chain.
    pub fn push(&mut self, mb: std::sync::Arc<dyn Middlebox>) {
        self.boxes.push(mb);
    }

    /// Number of boxes in the chain.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Names of the boxes, in order.
    pub fn names(&self) -> Vec<&str> {
        self.boxes.iter().map(|b| b.name()).collect()
    }

    /// Run the request through the chain.
    ///
    /// Returns either the final verdict and how many boxes the request
    /// passed before the verdict was rendered.
    pub fn run_request(&self, req: &Request, ctx: &FlowCtx) -> (Verdict, usize) {
        for (i, mb) in self.boxes.iter().enumerate() {
            match mb.process_request(req, ctx) {
                Verdict::Forward => continue,
                other => return (other, i),
            }
        }
        (Verdict::Forward, self.boxes.len())
    }

    /// Run a response back through the first `upto` boxes, in reverse.
    pub fn run_response(
        &self,
        req: &Request,
        mut resp: Response,
        ctx: &FlowCtx,
        upto: usize,
    ) -> Response {
        for mb in self.boxes[..upto.min(self.boxes.len())].iter().rev() {
            resp = mb.process_response(req, resp, ctx);
        }
        resp
    }
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chain")
            .field("boxes", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_http::{Status, Url};
    use std::sync::Arc;

    struct Tagger(&'static str);

    impl Middlebox for Tagger {
        fn name(&self) -> &str {
            self.0
        }
        fn process_request(&self, _req: &Request, _ctx: &FlowCtx) -> Verdict {
            Verdict::Forward
        }
        fn process_response(&self, _req: &Request, resp: Response, _ctx: &FlowCtx) -> Response {
            resp.with_header(&format!("X-Via-{}", self.0), "1")
        }
    }

    struct Blocker;

    impl Middlebox for Blocker {
        fn name(&self) -> &str {
            "blocker"
        }
        fn process_request(&self, req: &Request, _ctx: &FlowCtx) -> Verdict {
            if req.url.host().contains("banned") {
                Verdict::respond(Response::text(Status::FORBIDDEN, "blocked"))
            } else {
                Verdict::Forward
            }
        }
    }

    fn ctx() -> FlowCtx {
        FlowCtx {
            now: SimTime::ZERO,
            client_ip: "5.0.0.1".parse().unwrap(),
        }
    }

    fn req(host: &str) -> Request {
        Request::get(Url::parse(&format!("http://{host}/")).unwrap())
    }

    #[test]
    fn empty_chain_forwards() {
        let chain = Chain::new();
        let (verdict, passed) = chain.run_request(&req("x.example"), &ctx());
        assert_eq!(verdict, Verdict::Forward);
        assert_eq!(passed, 0);
    }

    #[test]
    fn first_decider_wins() {
        let mut chain = Chain::new();
        chain.push(Arc::new(Tagger("a")));
        chain.push(Arc::new(Blocker));
        chain.push(Arc::new(Tagger("never")));
        let (verdict, passed) = chain.run_request(&req("banned.example"), &ctx());
        assert!(matches!(verdict, Verdict::Respond(_)));
        assert_eq!(passed, 1);
    }

    #[test]
    fn response_traverses_reverse_prefix() {
        let mut chain = Chain::new();
        chain.push(Arc::new(Tagger("outer")));
        chain.push(Arc::new(Tagger("inner")));
        let r = req("ok.example");
        let (verdict, passed) = chain.run_request(&r, &ctx());
        assert_eq!(verdict, Verdict::Forward);
        let resp = chain.run_response(&r, Response::new(Status::OK), &ctx(), passed);
        assert!(resp.headers.contains("X-Via-outer"));
        assert!(resp.headers.contains("X-Via-inner"));
    }

    #[test]
    fn blocked_flow_only_reverses_through_earlier_boxes() {
        let mut chain = Chain::new();
        chain.push(Arc::new(Tagger("before")));
        chain.push(Arc::new(Blocker));
        chain.push(Arc::new(Tagger("after")));
        let r = req("banned.example");
        let (verdict, passed) = chain.run_request(&r, &ctx());
        let Verdict::Respond(block_page) = verdict else {
            panic!("expected block")
        };
        let resp = chain.run_response(&r, *block_page, &ctx(), passed);
        assert!(resp.headers.contains("X-Via-before"));
        assert!(!resp.headers.contains("X-Via-after"));
    }

    #[test]
    fn names_in_order() {
        let mut chain = Chain::new();
        chain.push(Arc::new(Tagger("a")));
        chain.push(Arc::new(Blocker));
        assert_eq!(chain.names(), vec!["a", "blocker"]);
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
    }
}
