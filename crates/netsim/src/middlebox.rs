//! Middleboxes: in-path traffic inspection at network egress.
//!
//! A network's middlebox chain sees every HTTP request its clients send.
//! Each box returns a [`Verdict`]: pass the request on, answer it itself
//! (block pages), or break the connection (silent censorship styles the
//! paper deliberately avoids studying, but which the model supports for
//! completeness). Responses traverse the chain in reverse so proxies can
//! annotate them (e.g. Blue Coat `Via` headers).

use filterwatch_http::{Request, Response};

use crate::ip::IpAddr;
use crate::time::SimTime;

/// Context for one flow through a middlebox chain.
#[derive(Debug, Clone, Copy)]
pub struct FlowCtx {
    /// Virtual time of the request.
    pub now: SimTime,
    /// The client address originating the flow.
    pub client_ip: IpAddr,
}

/// A middlebox's decision for a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Let the request continue toward the origin.
    Forward,
    /// Intercept: answer with this response (block page, redirect, …).
    Respond(Box<Response>),
    /// Silently drop the request — the client sees a timeout.
    Drop,
    /// Send a TCP reset — the client sees a connection reset.
    Reset,
}

impl Verdict {
    /// Convenience constructor for [`Verdict::Respond`].
    pub fn respond(resp: Response) -> Self {
        Verdict::Respond(Box::new(resp))
    }
}

/// In-path traffic inspection device or software.
pub trait Middlebox: Send + Sync {
    /// A short identifier for logs and reports.
    fn name(&self) -> &str;

    /// Decide what happens to an outbound request.
    fn process_request(&self, req: &Request, ctx: &FlowCtx) -> Verdict;

    /// Optionally transform the origin's response on the way back.
    /// The default is a pass-through.
    fn process_response(&self, _req: &Request, resp: Response, _ctx: &FlowCtx) -> Response {
        resp
    }
}

/// A chain of middleboxes applied in order.
///
/// The first non-[`Verdict::Forward`] verdict wins; the response then
/// traverses only the boxes *before* the decider, in reverse.
#[derive(Default)]
pub struct Chain {
    boxes: Vec<std::sync::Arc<dyn Middlebox>>,
}

impl Chain {
    /// An empty chain (every request forwarded untouched).
    pub fn new() -> Self {
        Chain::default()
    }

    /// Append a middlebox at the egress end of the chain.
    pub fn push(&mut self, mb: std::sync::Arc<dyn Middlebox>) {
        self.boxes.push(mb);
    }

    /// Number of boxes in the chain.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Names of the boxes, in order.
    pub fn names(&self) -> Vec<&str> {
        self.boxes.iter().map(|b| b.name()).collect()
    }

    /// Run the request through the chain.
    ///
    /// Returns either the final verdict and how many boxes the request
    /// passed before the verdict was rendered.
    pub fn run_request(&self, req: &Request, ctx: &FlowCtx) -> (Verdict, usize) {
        for (i, mb) in self.boxes.iter().enumerate() {
            match mb.process_request(req, ctx) {
                Verdict::Forward => continue,
                other => return (other, i),
            }
        }
        (Verdict::Forward, self.boxes.len())
    }

    /// Present the request to box `i` alone — the event core's per-hop
    /// entry point. Returns `None` when `i` is past the end of the
    /// chain. Dispatching hop-by-hop through this accessor visits boxes
    /// in exactly the order [`Chain::run_request`] does, so the two
    /// paths render identical verdicts and side effects.
    pub(crate) fn request_at(&self, i: usize, req: &Request, ctx: &FlowCtx) -> Option<Verdict> {
        self.boxes.get(i).map(|mb| mb.process_request(req, ctx))
    }

    /// Run a response back through the first `upto` boxes, in reverse.
    pub fn run_response(
        &self,
        req: &Request,
        mut resp: Response,
        ctx: &FlowCtx,
        upto: usize,
    ) -> Response {
        for mb in self.boxes[..upto.min(self.boxes.len())].iter().rev() {
            resp = mb.process_response(req, resp, ctx);
        }
        resp
    }
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chain")
            .field("boxes", &self.names())
            .finish()
    }
}

/// A wrapper that makes a middlebox *flap*: with probability
/// `fail_open_prob` a given flow bypasses the inner box entirely — the
/// filter "fails open", as the paper's Yemeni Netsweeper deployment did
/// when its license pool was exhausted (§4.4).
///
/// The fail-open decision is a pure function of `(seed, url, virtual
/// time)` rather than a draw from a shared RNG stream, for two reasons:
/// the request and response halves of a flow must agree on whether the
/// box was bypassed, and wrapping a box must not perturb any other
/// subsystem's random stream. Re-fetching the same URL at a different
/// virtual time re-rolls the decision, which is exactly the flapping
/// behaviour retries need to ride out.
pub struct Flapping {
    name: String,
    inner: std::sync::Arc<dyn Middlebox>,
    fail_open_prob: f64,
    seed: u64,
}

impl Flapping {
    /// Wrap `inner` so each flow fails open with `fail_open_prob`.
    ///
    /// # Errors
    /// When the probability is outside `[0, 1]`.
    pub fn try_new(
        inner: std::sync::Arc<dyn Middlebox>,
        fail_open_prob: f64,
        seed: u64,
    ) -> Result<Self, crate::fault::FaultProfileError> {
        if !fail_open_prob.is_finite() || !(0.0..=1.0).contains(&fail_open_prob) {
            return Err(crate::fault::FaultProfileError::BadProbability {
                field: "fail_open_prob",
                value: fail_open_prob,
            });
        }
        Ok(Flapping {
            name: format!("{}~flapping", inner.name()),
            inner,
            fail_open_prob,
            seed,
        })
    }

    /// Whether this flow bypasses the inner box (deterministic per
    /// `(seed, url, now)`).
    fn fails_open(&self, req: &Request, ctx: &FlowCtx) -> bool {
        if self.fail_open_prob <= 0.0 {
            return false;
        }
        if self.fail_open_prob >= 1.0 {
            return true;
        }
        let h = crate::rng::mix(
            self.seed,
            &format!("flap/{}/{}|{}", self.name, req.url, ctx.now.secs()),
        );
        // Top 53 bits → uniform f64 in [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.fail_open_prob
    }
}

impl Middlebox for Flapping {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_request(&self, req: &Request, ctx: &FlowCtx) -> Verdict {
        if self.fails_open(req, ctx) {
            Verdict::Forward
        } else {
            self.inner.process_request(req, ctx)
        }
    }

    fn process_response(&self, req: &Request, resp: Response, ctx: &FlowCtx) -> Response {
        // Same pure draw as the request half, so a bypassed flow's
        // response is also untouched.
        if self.fails_open(req, ctx) {
            resp
        } else {
            self.inner.process_response(req, resp, ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_http::{Status, Url};
    use std::sync::Arc;

    struct Tagger(&'static str);

    impl Middlebox for Tagger {
        fn name(&self) -> &str {
            self.0
        }
        fn process_request(&self, _req: &Request, _ctx: &FlowCtx) -> Verdict {
            Verdict::Forward
        }
        fn process_response(&self, _req: &Request, resp: Response, _ctx: &FlowCtx) -> Response {
            resp.with_header(&format!("X-Via-{}", self.0), "1")
        }
    }

    struct Blocker;

    impl Middlebox for Blocker {
        fn name(&self) -> &str {
            "blocker"
        }
        fn process_request(&self, req: &Request, _ctx: &FlowCtx) -> Verdict {
            if req.url.host().contains("banned") {
                Verdict::respond(Response::text(Status::FORBIDDEN, "blocked"))
            } else {
                Verdict::Forward
            }
        }
    }

    fn ctx() -> FlowCtx {
        FlowCtx {
            now: SimTime::ZERO,
            client_ip: "5.0.0.1".parse().unwrap(),
        }
    }

    fn req(host: &str) -> Request {
        Request::get(Url::parse(&format!("http://{host}/")).unwrap())
    }

    #[test]
    fn empty_chain_forwards() {
        let chain = Chain::new();
        let (verdict, passed) = chain.run_request(&req("x.example"), &ctx());
        assert_eq!(verdict, Verdict::Forward);
        assert_eq!(passed, 0);
    }

    #[test]
    fn first_decider_wins() {
        let mut chain = Chain::new();
        chain.push(Arc::new(Tagger("a")));
        chain.push(Arc::new(Blocker));
        chain.push(Arc::new(Tagger("never")));
        let (verdict, passed) = chain.run_request(&req("banned.example"), &ctx());
        assert!(matches!(verdict, Verdict::Respond(_)));
        assert_eq!(passed, 1);
    }

    #[test]
    fn response_traverses_reverse_prefix() {
        let mut chain = Chain::new();
        chain.push(Arc::new(Tagger("outer")));
        chain.push(Arc::new(Tagger("inner")));
        let r = req("ok.example");
        let (verdict, passed) = chain.run_request(&r, &ctx());
        assert_eq!(verdict, Verdict::Forward);
        let resp = chain.run_response(&r, Response::new(Status::OK), &ctx(), passed);
        assert!(resp.headers.contains("X-Via-outer"));
        assert!(resp.headers.contains("X-Via-inner"));
    }

    #[test]
    fn blocked_flow_only_reverses_through_earlier_boxes() {
        let mut chain = Chain::new();
        chain.push(Arc::new(Tagger("before")));
        chain.push(Arc::new(Blocker));
        chain.push(Arc::new(Tagger("after")));
        let r = req("banned.example");
        let (verdict, passed) = chain.run_request(&r, &ctx());
        let Verdict::Respond(block_page) = verdict else {
            panic!("expected block")
        };
        let resp = chain.run_response(&r, *block_page, &ctx(), passed);
        assert!(resp.headers.contains("X-Via-before"));
        assert!(!resp.headers.contains("X-Via-after"));
    }

    #[test]
    fn flapping_fails_open_consistently_per_flow() {
        let flap = Flapping::try_new(Arc::new(Blocker), 0.5, 11).unwrap();
        assert_eq!(flap.name(), "blocker~flapping");
        let r = req("banned.example");
        let mut opened = 0;
        let mut blocked = 0;
        for secs in 0..200u64 {
            let ctx = FlowCtx {
                now: SimTime::from_secs(secs),
                client_ip: "5.0.0.1".parse().unwrap(),
            };
            let first = flap.process_request(&r, &ctx);
            // Same (url, time) → same decision, request and response
            // halves agree.
            assert_eq!(flap.process_request(&r, &ctx), first);
            match first {
                Verdict::Forward => opened += 1,
                Verdict::Respond(_) => blocked += 1,
                other => panic!("unexpected verdict {other:?}"),
            }
        }
        assert!((60..=140).contains(&opened), "opened {opened}");
        assert!(blocked > 0);
    }

    #[test]
    fn flapping_extremes_and_validation() {
        let always = Flapping::try_new(Arc::new(Blocker), 1.0, 3).unwrap();
        let never = Flapping::try_new(Arc::new(Blocker), 0.0, 3).unwrap();
        let r = req("banned.example");
        assert_eq!(always.process_request(&r, &ctx()), Verdict::Forward);
        assert!(matches!(
            never.process_request(&r, &ctx()),
            Verdict::Respond(_)
        ));
        assert!(Flapping::try_new(Arc::new(Blocker), 1.5, 3).is_err());
        assert!(Flapping::try_new(Arc::new(Blocker), f64::NAN, 3).is_err());
    }

    #[test]
    fn names_in_order() {
        let mut chain = Chain::new();
        chain.push(Arc::new(Tagger("a")));
        chain.push(Arc::new(Blocker));
        assert_eq!(chain.names(), vec!["a", "blocker"]);
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
    }
}
