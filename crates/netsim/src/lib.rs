//! A deterministic simulated Internet.
//!
//! The paper's measurements ran against the real 2012–2013 Internet —
//! Shodan crawls, in-country vantage points, vendor middleboxes deployed
//! in national ISPs. None of that is available to a reproduction, so this
//! crate provides the substitute substrate: a **single-process,
//! deterministic model of the Internet** with just enough fidelity for
//! every step of the methodology to run unchanged:
//!
//! * an IPv4 address space carved into prefixes owned by autonomous
//!   systems ([`registry`]), each located in a country;
//! * DNS ([`dns`]) mapping hostnames to addresses;
//! * hosts running HTTP [`service`]s on ports — origin sites, admin
//!   consoles, vendor portals;
//! * networks (ISPs) whose egress traffic traverses a chain of
//!   [`middlebox`]es — this is where `filterwatch-products` plugs in its
//!   URL filters;
//! * vantage points ([`vantage`]) — "testers" attached to a network, from
//!   which URL fetches originate (the field clients and the Toronto lab);
//! * a virtual [`clock`](time) measured in seconds/days, so
//!   submit-and-retest-in-3-days protocols run instantly;
//! * seeded randomness and per-network [`fault`] injection (packet drop,
//!   TCP reset, transient DNS failure, truncation, latency jitter and
//!   deterministic outage windows on the virtual clock), reproducing the
//!   flaky measurement conditions of §4.4.
//!
//! Everything is deterministic: construct [`Internet::new`] with a seed
//! and the same experiment produces byte-identical results.
//!
//! # Concurrency model
//!
//! Fetches take `&self` — services and middleboxes use interior
//! mutability where they are stateful — so a scanner may probe the
//! simulated address space from many threads. Topology changes
//! (adding hosts, registering domains) take `&mut self`.
//!
//! # Example
//!
//! ```
//! use filterwatch_netsim::{Internet, NetworkSpec, service::StaticSite};
//! use filterwatch_http::Url;
//!
//! let mut net = Internet::new(42);
//! net.registry_mut().register_country("CA", "Canada", "ca");
//! let asn = net.registry_mut().register_as(7777, "EXAMPLE-NET", "CA");
//! let prefix = net.registry_mut().allocate_prefix(asn, 8).unwrap();
//! let isp = net.add_network(NetworkSpec::new("example-isp", asn, "CA").with_cidr(prefix));
//! let ip = net.alloc_ip(isp).unwrap();
//! net.add_host(ip, isp, &["www.example.ca"]);
//! net.add_service(ip, 80, Box::new(StaticSite::new("Hello", "<p>hi</p>")));
//! let vp = net.add_vantage("tester", isp);
//!
//! let outcome = net.fetch(vp, &Url::parse("http://www.example.ca/").unwrap());
//! assert!(outcome.response().unwrap().status.is_success());
//! ```

pub mod dns;
pub mod event;
pub mod fault;
pub mod flowlog;
pub mod internet;
pub mod ip;
pub mod kernel;
pub mod middlebox;
pub mod outcome;
pub mod registry;
pub mod rng;
pub mod service;
pub mod time;
pub mod timer;
pub mod vantage;

pub use dns::Dns;
pub use event::{EventId, EventQueue};
pub use fault::{Fault, FaultProfile, FaultProfileError, OutageWindow};
pub use flowlog::{FlowDisposition, FlowRecord};
pub use internet::{FetchPath, Internet, Network, NetworkId, NetworkSpec};
pub use ip::{Cidr, IpAddr};
pub use kernel::{EventKind, EventRecord, FlowId};
pub use middlebox::{Flapping, FlowCtx, Middlebox, Verdict};
pub use outcome::FetchOutcome;
pub use registry::{Asn, CountryCode, Registry};
pub use service::{Service, ServiceCtx};
pub use time::SimTime;
pub use timer::TimerWheel;
pub use vantage::{Vantage, VantageId};
