//! The flow log: a record of every fetch the simulation carried.
//!
//! Real measurement campaigns keep raw logs of every request for later
//! auditing (the paper's data release is exactly such a log). The
//! simulator can do the same: when enabled, every `fetch_as` appends a
//! [`FlowRecord`] — who asked for what, what happened, and which
//! middlebox (if any) rendered the verdict. Experiments and reports can
//! then reconstruct their own history instead of re-measuring.
//!
//! Records encode to a *stable* tab-separated line format that parses
//! back losslessly ([`FlowRecord::to_line`] / [`FlowRecord::parse_line`]),
//! so logs survive being written to disk and read by other tools:
//!
//! ```text
//! day 2 00:00:00\t5.0.0.9\tetisalat\thttp://x.info/\tintercepted:smartfilter:403
//! ```
//!
//! Dispositions are single colon-joined tokens (`origin:200`,
//! `dropped:<name>`, `pathfault:timeout`, `dnsfail`, …); free-text
//! fields use the same `\\`/`\t`/`\n` escaping as the telemetry event
//! log.

use crate::ip::IpAddr;
use crate::time::SimTime;
use filterwatch_telemetry::event::{escape, unescape};

/// How a logged flow ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowDisposition {
    /// Origin answered; status code attached.
    Origin(u16),
    /// A middlebox answered (block page / redirect); its name and the
    /// status it served.
    Intercepted { middlebox: String, status: u16 },
    /// A middlebox silently dropped the flow.
    DroppedBy(String),
    /// A middlebox reset the flow.
    ResetBy(String),
    /// The access path failed before any middlebox decision.
    PathFault(&'static str),
    /// The hostname did not resolve.
    DnsFailure,
    /// The resolver failed transiently (injected fault) — the name *is*
    /// registered; a retry may succeed.
    InjectedDnsFailure,
    /// No service listened at the destination.
    ConnectFailed,
    /// The path was inside a deterministic outage window; the token
    /// carries the virtual second at which the window closes.
    Outage {
        /// Virtual time (in seconds) when the path comes back.
        resumes_at_secs: u64,
    },
    /// The response was truncated mid-transfer.
    Truncated,
    /// A measurement client skipped the fetch because its circuit
    /// breaker for this vantage was open; the name is the vantage label.
    BreakerSkip(String),
}

impl FlowDisposition {
    /// Whether the flow was answered by a middlebox rather than the
    /// origin.
    pub fn was_intercepted(&self) -> bool {
        matches!(
            self,
            FlowDisposition::Intercepted { .. }
                | FlowDisposition::DroppedBy(_)
                | FlowDisposition::ResetBy(_)
        )
    }

    /// Encode as a single stable token.
    pub fn to_token(&self) -> String {
        match self {
            FlowDisposition::Origin(status) => format!("origin:{status}"),
            FlowDisposition::Intercepted { middlebox, status } => {
                format!("intercepted:{}:{status}", escape(middlebox))
            }
            FlowDisposition::DroppedBy(name) => format!("dropped:{}", escape(name)),
            FlowDisposition::ResetBy(name) => format!("reset:{}", escape(name)),
            FlowDisposition::PathFault(kind) => format!("pathfault:{kind}"),
            FlowDisposition::DnsFailure => "dnsfail".to_string(),
            FlowDisposition::InjectedDnsFailure => "dnsfail:injected".to_string(),
            FlowDisposition::ConnectFailed => "connectfail".to_string(),
            FlowDisposition::Outage { resumes_at_secs } => format!("outage:{resumes_at_secs}"),
            FlowDisposition::Truncated => "truncated".to_string(),
            FlowDisposition::BreakerSkip(vantage) => format!("breaker-skip:{}", escape(vantage)),
        }
    }

    /// Parse a token produced by [`FlowDisposition::to_token`].
    pub fn parse_token(token: &str) -> Result<Self, String> {
        let unescape_name = |name: &str| {
            unescape(name).ok_or_else(|| format!("bad escape in middlebox name {name:?}"))
        };
        if let Some(status) = token.strip_prefix("origin:") {
            let status = status
                .parse()
                .map_err(|e| format!("bad status in {token:?}: {e}"))?;
            return Ok(FlowDisposition::Origin(status));
        }
        if let Some(rest) = token.strip_prefix("intercepted:") {
            // The status is the last colon field, so middlebox names may
            // themselves contain colons.
            let (middlebox, status) = rest
                .rsplit_once(':')
                .ok_or_else(|| format!("missing status in {token:?}"))?;
            let status = status
                .parse()
                .map_err(|e| format!("bad status in {token:?}: {e}"))?;
            return Ok(FlowDisposition::Intercepted {
                middlebox: unescape_name(middlebox)?,
                status,
            });
        }
        if let Some(name) = token.strip_prefix("dropped:") {
            return Ok(FlowDisposition::DroppedBy(unescape_name(name)?));
        }
        if let Some(name) = token.strip_prefix("reset:") {
            return Ok(FlowDisposition::ResetBy(unescape_name(name)?));
        }
        if let Some(secs) = token.strip_prefix("outage:") {
            let resumes_at_secs = secs
                .parse()
                .map_err(|e| format!("bad resume time in {token:?}: {e}"))?;
            return Ok(FlowDisposition::Outage { resumes_at_secs });
        }
        if let Some(vantage) = token.strip_prefix("breaker-skip:") {
            return Ok(FlowDisposition::BreakerSkip(unescape_name(vantage)?));
        }
        match token {
            "pathfault:timeout" => Ok(FlowDisposition::PathFault("timeout")),
            "pathfault:reset" => Ok(FlowDisposition::PathFault("reset")),
            "dnsfail" => Ok(FlowDisposition::DnsFailure),
            "dnsfail:injected" => Ok(FlowDisposition::InjectedDnsFailure),
            "connectfail" => Ok(FlowDisposition::ConnectFailed),
            "truncated" => Ok(FlowDisposition::Truncated),
            _ => Err(format!("unknown disposition token {token:?}")),
        }
    }
}

/// One logged flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// Virtual time of the request.
    pub at: SimTime,
    /// Client address originating the flow.
    pub client: IpAddr,
    /// Network the client egressed through (by name).
    pub network: String,
    /// The requested URL (text form).
    pub url: String,
    /// How the flow ended.
    pub disposition: FlowDisposition,
}

impl FlowRecord {
    /// Render as a stable, machine-parseable log line (tab-separated:
    /// time, client, network, URL, disposition token).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}",
            self.at,
            self.client,
            escape(&self.network),
            escape(&self.url),
            self.disposition.to_token()
        )
    }

    /// Parse a line produced by [`FlowRecord::to_line`].
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let fields: Vec<&str> = line.split('\t').collect();
        let [at, client, network, url, token] = fields.as_slice() else {
            return Err(format!(
                "expected 5 tab-separated fields, got {}: {line:?}",
                fields.len()
            ));
        };
        Ok(FlowRecord {
            at: at.parse()?,
            client: client
                .parse()
                .map_err(|e| format!("bad client address {client:?}: {e}"))?,
            network: unescape(network).ok_or_else(|| format!("bad escape in {network:?}"))?,
            url: unescape(url).ok_or_else(|| format!("bad escape in {url:?}"))?,
            disposition: FlowDisposition::parse_token(token)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disposition_classification() {
        assert!(FlowDisposition::Intercepted {
            middlebox: "sf".into(),
            status: 403
        }
        .was_intercepted());
        assert!(FlowDisposition::DroppedBy("x".into()).was_intercepted());
        assert!(!FlowDisposition::Origin(200).was_intercepted());
        assert!(!FlowDisposition::DnsFailure.was_intercepted());
    }

    #[test]
    fn log_line_contains_fields() {
        let rec = FlowRecord {
            at: SimTime::from_days(2),
            client: "5.0.0.9".parse().unwrap(),
            network: "etisalat".into(),
            url: "http://x.info/".into(),
            disposition: FlowDisposition::Origin(200),
        };
        let line = rec.to_line();
        assert!(line.contains("day 2"));
        assert!(line.contains("5.0.0.9"));
        assert!(line.contains("etisalat"));
        assert!(line.contains("http://x.info/"));
        assert!(line.ends_with("origin:200"));
    }

    #[test]
    fn every_disposition_token_round_trips() {
        let cases = [
            FlowDisposition::Origin(200),
            FlowDisposition::Intercepted {
                middlebox: "smartfilter".into(),
                status: 403,
            },
            FlowDisposition::Intercepted {
                middlebox: "odd:name\twith\ttabs".into(),
                status: 302,
            },
            FlowDisposition::DroppedBy("netsweeper".into()),
            FlowDisposition::ResetBy("bluecoat".into()),
            FlowDisposition::PathFault("timeout"),
            FlowDisposition::PathFault("reset"),
            FlowDisposition::DnsFailure,
            FlowDisposition::InjectedDnsFailure,
            FlowDisposition::ConnectFailed,
            FlowDisposition::Outage {
                resumes_at_secs: 172_861,
            },
            FlowDisposition::Truncated,
            FlowDisposition::BreakerSkip("field:ae".into()),
        ];
        for d in cases {
            let token = d.to_token();
            assert!(!token.contains('\t'), "token must be tab-free: {token:?}");
            assert_eq!(FlowDisposition::parse_token(&token).unwrap(), d, "{token}");
        }
    }

    #[test]
    fn record_line_round_trips() {
        let rec = FlowRecord {
            at: SimTime::from_days(3).plus_secs(61),
            client: "5.0.0.9".parse().unwrap(),
            network: "a net\twith tab".into(),
            url: "http://x.info/a\tb?c=1".into(),
            disposition: FlowDisposition::Intercepted {
                middlebox: "smartfilter".into(),
                status: 403,
            },
        };
        assert_eq!(FlowRecord::parse_line(&rec.to_line()).unwrap(), rec);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(FlowRecord::parse_line("").is_err());
        assert!(FlowRecord::parse_line("day 0 00:00:00\t1.2.3.4\tnet\turl").is_err());
        assert!(
            FlowRecord::parse_line("day 0 00:00:00\tnot-an-ip\tnet\thttp://u/\torigin:200")
                .is_err()
        );
        assert!(
            FlowRecord::parse_line("day 0 00:00:00\t1.2.3.4\tnet\thttp://u/\torigin:xx").is_err()
        );
        assert!(
            FlowRecord::parse_line("day 0 00:00:00\t1.2.3.4\tnet\thttp://u/\tpathfault:flood")
                .is_err()
        );
        assert!(FlowRecord::parse_line("day 0 00:00:00\t1.2.3.4\tnet\thttp://u/\tnope").is_err());
        assert!(
            FlowRecord::parse_line("day 0 00:00:00\t1.2.3.4\tnet\thttp://u/\toutage:soon").is_err()
        );
    }

    #[test]
    fn injected_dns_token_is_distinct_from_plain_dnsfail() {
        assert_eq!(
            FlowDisposition::parse_token("dnsfail").unwrap(),
            FlowDisposition::DnsFailure
        );
        assert_eq!(
            FlowDisposition::parse_token("dnsfail:injected").unwrap(),
            FlowDisposition::InjectedDnsFailure
        );
        assert!(!FlowDisposition::InjectedDnsFailure.was_intercepted());
        assert!(!FlowDisposition::BreakerSkip("v".into()).was_intercepted());
    }
}
