//! The flow log: a record of every fetch the simulation carried.
//!
//! Real measurement campaigns keep raw logs of every request for later
//! auditing (the paper's data release is exactly such a log). The
//! simulator can do the same: when enabled, every `fetch_as` appends a
//! [`FlowRecord`] — who asked for what, what happened, and which
//! middlebox (if any) rendered the verdict. Experiments and reports can
//! then reconstruct their own history instead of re-measuring.

use crate::ip::IpAddr;
use crate::time::SimTime;

/// How a logged flow ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowDisposition {
    /// Origin answered; status code attached.
    Origin(u16),
    /// A middlebox answered (block page / redirect); its name and the
    /// status it served.
    Intercepted { middlebox: String, status: u16 },
    /// A middlebox silently dropped the flow.
    DroppedBy(String),
    /// A middlebox reset the flow.
    ResetBy(String),
    /// The access path failed before any middlebox decision.
    PathFault(&'static str),
    /// The hostname did not resolve.
    DnsFailure,
    /// No service listened at the destination.
    ConnectFailed,
}

impl FlowDisposition {
    /// Whether the flow was answered by a middlebox rather than the
    /// origin.
    pub fn was_intercepted(&self) -> bool {
        matches!(
            self,
            FlowDisposition::Intercepted { .. }
                | FlowDisposition::DroppedBy(_)
                | FlowDisposition::ResetBy(_)
        )
    }
}

/// One logged flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Virtual time of the request.
    pub at: SimTime,
    /// Client address originating the flow.
    pub client: IpAddr,
    /// Network the client egressed through (by name).
    pub network: String,
    /// The requested URL (text form).
    pub url: String,
    /// How the flow ended.
    pub disposition: FlowDisposition,
}

impl FlowRecord {
    /// Render as a log line (tab-separated).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{:?}",
            self.at, self.client, self.network, self.url, self.disposition
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disposition_classification() {
        assert!(FlowDisposition::Intercepted {
            middlebox: "sf".into(),
            status: 403
        }
        .was_intercepted());
        assert!(FlowDisposition::DroppedBy("x".into()).was_intercepted());
        assert!(!FlowDisposition::Origin(200).was_intercepted());
        assert!(!FlowDisposition::DnsFailure.was_intercepted());
    }

    #[test]
    fn log_line_contains_fields() {
        let rec = FlowRecord {
            at: SimTime::from_days(2),
            client: "5.0.0.9".parse().unwrap(),
            network: "etisalat".into(),
            url: "http://x.info/".into(),
            disposition: FlowDisposition::Origin(200),
        };
        let line = rec.to_line();
        assert!(line.contains("day 2"));
        assert!(line.contains("5.0.0.9"));
        assert!(line.contains("etisalat"));
        assert!(line.contains("http://x.info/"));
    }
}
