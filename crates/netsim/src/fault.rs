//! Per-network fault injection.
//!
//! Real measurement campaigns fight flaky paths: timeouts, resets,
//! variable latency. §4.4 of the paper hinges on exactly this — Yemeni
//! filtering went "offline" intermittently, forcing repeated runs. Each
//! simulated network carries a [`FaultProfile`]; every fetch samples it
//! from the world's seeded RNG, so flakiness is reproducible.
//!
//! The v2 profile models the full fault taxonomy campaigns see in the
//! wild:
//!
//! * **probabilistic transport faults** — packet drop ([`Fault::Timeout`]),
//!   TCP reset ([`Fault::Reset`]), resolver failure ([`Fault::DnsFailure`])
//!   and truncated transfers ([`Fault::Truncated`]), each with its own
//!   probability;
//! * **latency jitter** — a per-flow latency sample around the base path
//!   latency, which retry engines use to advance the virtual clock;
//! * **deterministic outage windows** — the path is down for `[from,
//!   until)` on the virtual clock, reproducing §4.4's "the filtering
//!   ... went offline for stretches". Outages are pure functions of the
//!   clock, not the RNG, so they strike identically across runs.
//!
//! Probabilities are validated at construction ([`FaultProfile::try_new`])
//! so a malformed profile fails fast instead of panicking mid-campaign.

use rand::Rng;

use crate::time::SimTime;

/// A transport-level failure injected into a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The request (or its response) was silently dropped.
    Timeout,
    /// The connection was reset mid-flight.
    Reset,
    /// The resolver failed transiently (SERVFAIL), despite the name
    /// being registered.
    DnsFailure,
    /// The response was cut off mid-transfer; the partial body is
    /// unusable.
    Truncated,
    /// The path is inside a deterministic outage window; the flow times
    /// out. Carries the window's end so clients know when to retry.
    Outage {
        /// Virtual time at which the outage window closes.
        resumes_at: SimTime,
    },
}

/// A deterministic outage: the path is down for `[from, until)` on the
/// virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// First second of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

impl OutageWindow {
    /// A window covering `[from, until)`.
    ///
    /// # Errors
    /// When the window is empty or inverted.
    pub fn try_new(from: SimTime, until: SimTime) -> Result<Self, FaultProfileError> {
        if from >= until {
            return Err(FaultProfileError::EmptyOutage { from, until });
        }
        Ok(OutageWindow { from, until })
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }

    /// Window length in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.until.secs() - self.from.secs()
    }
}

/// Why a [`FaultProfile`] could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultProfileError {
    /// A probability field was outside `[0, 1]` (or not finite).
    BadProbability {
        /// Which field was rejected.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An outage window was empty or inverted.
    EmptyOutage {
        /// Claimed start.
        from: SimTime,
        /// Claimed end.
        until: SimTime,
    },
}

impl std::fmt::Display for FaultProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultProfileError::BadProbability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            FaultProfileError::EmptyOutage { from, until } => {
                write!(f, "outage window [{from}, {until}) is empty")
            }
        }
    }
}

impl std::error::Error for FaultProfileError {}

/// Probabilistic fault model for a network's access path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultProfile {
    /// Probability a flow times out.
    pub drop_prob: f64,
    /// Probability a flow is reset (sampled after drop).
    pub reset_prob: f64,
    /// Probability resolution fails transiently (sampled before drop;
    /// DNS happens first on a real path).
    pub dns_fail_prob: f64,
    /// Probability the response is truncated mid-transfer (sampled after
    /// reset).
    pub truncate_prob: f64,
    /// Base path latency in milliseconds. Fetches do not advance the
    /// virtual clock themselves; retry engines read the sampled latency
    /// to advance it per attempt.
    pub base_latency_ms: u32,
    /// Maximum additional latency jitter in milliseconds (uniform in
    /// `0..=jitter_ms`, drawn per flow when non-zero).
    pub jitter_ms: u32,
    /// Deterministic outage windows on the virtual clock, checked before
    /// any probabilistic draw.
    pub outages: Vec<OutageWindow>,
}

fn check_prob(field: &'static str, value: f64) -> Result<(), FaultProfileError> {
    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
        return Err(FaultProfileError::BadProbability { field, value });
    }
    Ok(())
}

impl FaultProfile {
    /// A perfectly clean path.
    pub const fn clean() -> Self {
        FaultProfile {
            drop_prob: 0.0,
            reset_prob: 0.0,
            dns_fail_prob: 0.0,
            truncate_prob: 0.0,
            base_latency_ms: 20,
            jitter_ms: 0,
            outages: Vec::new(),
        }
    }

    /// A validated profile. Every probability must lie in `[0, 1]`; this
    /// is the constructor release campaigns should use, so malformed
    /// configuration surfaces as an error instead of a mid-run panic.
    pub fn try_new(
        drop_prob: f64,
        reset_prob: f64,
        dns_fail_prob: f64,
        truncate_prob: f64,
    ) -> Result<Self, FaultProfileError> {
        check_prob("drop_prob", drop_prob)?;
        check_prob("reset_prob", reset_prob)?;
        check_prob("dns_fail_prob", dns_fail_prob)?;
        check_prob("truncate_prob", truncate_prob)?;
        Ok(FaultProfile {
            drop_prob,
            reset_prob,
            dns_fail_prob,
            truncate_prob,
            ..FaultProfile::clean()
        })
    }

    /// Validate every probability field of an already-built profile
    /// (useful after struct-literal construction).
    pub fn validate(&self) -> Result<(), FaultProfileError> {
        check_prob("drop_prob", self.drop_prob)?;
        check_prob("reset_prob", self.reset_prob)?;
        check_prob("dns_fail_prob", self.dns_fail_prob)?;
        check_prob("truncate_prob", self.truncate_prob)?;
        for w in &self.outages {
            OutageWindow::try_new(w.from, w.until)?;
        }
        Ok(())
    }

    /// A lossy path with the given drop probability.
    ///
    /// # Panics
    /// When `drop_prob` is outside `[0, 1]` — use [`FaultProfile::try_new`]
    /// when the rate comes from configuration.
    pub fn lossy(drop_prob: f64) -> Self {
        FaultProfile::try_new(drop_prob, 0.0, 0.0, 0.0).expect("invalid drop probability")
    }

    /// A mixed chaos profile for resilience campaigns: `rate` is the
    /// total transient-fault probability, split 40/20/20/20 across
    /// drops, resets, DNS failures and truncation, with latency jitter.
    ///
    /// # Errors
    /// When `rate` is outside `[0, 1]`.
    pub fn chaotic(rate: f64) -> Result<Self, FaultProfileError> {
        check_prob("rate", rate)?;
        Ok(
            FaultProfile::try_new(rate * 0.4, rate * 0.2, rate * 0.2, rate * 0.2)?
                .with_latency(20, 80),
        )
    }

    /// Builder-style: set the reset probability (validated).
    pub fn try_with_resets(mut self, reset_prob: f64) -> Result<Self, FaultProfileError> {
        check_prob("reset_prob", reset_prob)?;
        self.reset_prob = reset_prob;
        Ok(self)
    }

    /// Builder-style: set the transient DNS failure probability
    /// (validated).
    pub fn try_with_dns_failures(mut self, dns_fail_prob: f64) -> Result<Self, FaultProfileError> {
        check_prob("dns_fail_prob", dns_fail_prob)?;
        self.dns_fail_prob = dns_fail_prob;
        Ok(self)
    }

    /// Builder-style: set the truncation probability (validated).
    pub fn try_with_truncation(mut self, truncate_prob: f64) -> Result<Self, FaultProfileError> {
        check_prob("truncate_prob", truncate_prob)?;
        self.truncate_prob = truncate_prob;
        Ok(self)
    }

    /// Builder-style: set base latency and jitter.
    pub fn with_latency(mut self, base_ms: u32, jitter_ms: u32) -> Self {
        self.base_latency_ms = base_ms;
        self.jitter_ms = jitter_ms;
        self
    }

    /// Builder-style: add a deterministic outage window `[from, until)`.
    ///
    /// # Errors
    /// When the window is empty or inverted.
    pub fn try_with_outage(
        mut self,
        from: SimTime,
        until: SimTime,
    ) -> Result<Self, FaultProfileError> {
        self.outages.push(OutageWindow::try_new(from, until)?);
        Ok(self)
    }

    /// The outage window covering `now`, if any.
    pub fn outage_at(&self, now: SimTime) -> Option<&OutageWindow> {
        self.outages.iter().find(|w| w.contains(now))
    }

    /// Whether this profile can never inject a fault.
    pub fn is_clean(&self) -> bool {
        self.drop_prob == 0.0
            && self.reset_prob == 0.0
            && self.dns_fail_prob == 0.0
            && self.truncate_prob == 0.0
            && self.outages.is_empty()
    }

    /// Sample the profile once at virtual time `now`: does this flow
    /// fail, and how?
    ///
    /// Deterministic outage windows are checked first and consume no RNG
    /// draws; probability fields draw only when non-zero, so enabling a
    /// new fault class never perturbs the stream of a profile that does
    /// not use it.
    pub fn sample_at<R: Rng>(&self, now: SimTime, rng: &mut R) -> Option<Fault> {
        if let Some(window) = self.outage_at(now) {
            return Some(Fault::Outage {
                resumes_at: window.until,
            });
        }
        if self.dns_fail_prob > 0.0 && rng.gen_bool(self.dns_fail_prob) {
            return Some(Fault::DnsFailure);
        }
        if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob) {
            return Some(Fault::Timeout);
        }
        if self.reset_prob > 0.0 && rng.gen_bool(self.reset_prob) {
            return Some(Fault::Reset);
        }
        if self.truncate_prob > 0.0 && rng.gen_bool(self.truncate_prob) {
            return Some(Fault::Truncated);
        }
        None
    }

    /// Sample the profile at the epoch (compatibility shim for callers
    /// without a clock; outage windows starting at time zero still fire).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<Fault> {
        self.sample_at(SimTime::ZERO, rng)
    }

    /// Sample this flow's one-way path latency in milliseconds: the base
    /// latency plus uniform jitter. Draws from the RNG only when jitter
    /// is configured.
    pub fn sample_latency_ms<R: Rng>(&self, rng: &mut R) -> u32 {
        if self.jitter_ms == 0 {
            self.base_latency_ms
        } else {
            self.base_latency_ms + rng.gen_range(0..=self.jitter_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clean_profile_never_fails() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = FaultProfile::clean();
        for _ in 0..1000 {
            assert_eq!(p.sample(&mut rng), None);
        }
        assert!(p.is_clean());
    }

    #[test]
    fn always_drop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = FaultProfile::lossy(1.0);
        assert_eq!(p.sample(&mut rng), Some(Fault::Timeout));
    }

    #[test]
    fn reset_only_profile() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = FaultProfile {
            drop_prob: 0.0,
            reset_prob: 1.0,
            base_latency_ms: 10,
            ..FaultProfile::clean()
        };
        assert_eq!(p.sample(&mut rng), Some(Fault::Reset));
    }

    #[test]
    fn dns_and_truncate_faults_fire() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let dns = FaultProfile::clean().try_with_dns_failures(1.0).unwrap();
        assert_eq!(dns.sample(&mut rng), Some(Fault::DnsFailure));
        let trunc = FaultProfile::clean().try_with_truncation(1.0).unwrap();
        assert_eq!(trunc.sample(&mut rng), Some(Fault::Truncated));
    }

    #[test]
    fn lossy_rate_is_roughly_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let p = FaultProfile::lossy(0.3);
        let fails = (0..10_000).filter(|_| p.sample(&mut rng).is_some()).count();
        assert!((2_500..3_500).contains(&fails), "observed {fails}");
    }

    #[test]
    #[should_panic]
    fn lossy_rejects_out_of_range() {
        let _ = FaultProfile::lossy(1.5);
    }

    #[test]
    fn try_new_validates_every_probability() {
        assert!(FaultProfile::try_new(0.1, 0.2, 0.3, 0.4).is_ok());
        for (i, bad) in [
            FaultProfile::try_new(1.5, 0.0, 0.0, 0.0),
            FaultProfile::try_new(0.0, -0.1, 0.0, 0.0),
            FaultProfile::try_new(0.0, 0.0, f64::NAN, 0.0),
            FaultProfile::try_new(0.0, 0.0, 0.0, 2.0),
        ]
        .into_iter()
        .enumerate()
        {
            let err = bad.expect_err(&format!("case {i} should fail"));
            assert!(
                matches!(err, FaultProfileError::BadProbability { .. }),
                "{err}"
            );
        }
        // reset_prob is now validated exactly like drop_prob.
        let err = FaultProfile::try_new(0.0, 7.0, 0.0, 0.0).unwrap_err();
        assert_eq!(
            err.to_string(),
            "reset_prob must be a probability in [0, 1], got 7"
        );
    }

    #[test]
    fn validate_checks_struct_literals() {
        let mut p = FaultProfile::clean();
        assert!(p.validate().is_ok());
        p.reset_prob = 3.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn outage_windows_are_deterministic_and_rng_free() {
        let p = FaultProfile::clean()
            .try_with_outage(SimTime::from_secs(100), SimTime::from_secs(200))
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(p.sample_at(SimTime::from_secs(99), &mut rng), None);
        assert_eq!(
            p.sample_at(SimTime::from_secs(100), &mut rng),
            Some(Fault::Outage {
                resumes_at: SimTime::from_secs(200)
            })
        );
        assert_eq!(
            p.sample_at(SimTime::from_secs(199), &mut rng),
            Some(Fault::Outage {
                resumes_at: SimTime::from_secs(200)
            })
        );
        assert_eq!(p.sample_at(SimTime::from_secs(200), &mut rng), None);
        // No RNG draws happened during outage checks: a fresh generator
        // observes the identical stream afterwards.
        let mut fresh = rand::rngs::StdRng::seed_from_u64(1);
        use rand::Rng as _;
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
    }

    #[test]
    fn outage_rejects_empty_window() {
        let err = OutageWindow::try_new(SimTime::from_secs(5), SimTime::from_secs(5)).unwrap_err();
        assert!(matches!(err, FaultProfileError::EmptyOutage { .. }));
        assert!(FaultProfile::clean()
            .try_with_outage(SimTime::from_secs(9), SimTime::from_secs(3))
            .is_err());
    }

    #[test]
    fn latency_jitter_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let flat = FaultProfile::clean();
        assert_eq!(flat.sample_latency_ms(&mut rng), 20);
        let jittery = FaultProfile::clean().with_latency(50, 30);
        for _ in 0..200 {
            let l = jittery.sample_latency_ms(&mut rng);
            assert!((50..=80).contains(&l), "{l}");
        }
    }
}
