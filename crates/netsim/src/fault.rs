//! Per-network fault injection.
//!
//! Real measurement campaigns fight flaky paths: timeouts, resets,
//! variable latency. §4.4 of the paper hinges on exactly this — Yemeni
//! filtering went "offline" intermittently, forcing repeated runs. Each
//! simulated network carries a [`FaultProfile`]; every fetch samples it
//! from the world's seeded RNG, so flakiness is reproducible.

use rand::Rng;

/// A transport-level failure injected into a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The request (or its response) was silently dropped.
    Timeout,
    /// The connection was reset mid-flight.
    Reset,
}

/// Probabilistic fault model for a network's access path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability a flow times out.
    pub drop_prob: f64,
    /// Probability a flow is reset (sampled after drop).
    pub reset_prob: f64,
    /// Base path latency in milliseconds (bookkeeping only; the virtual
    /// clock is advanced explicitly by experiments, not by fetches).
    pub base_latency_ms: u32,
}

impl FaultProfile {
    /// A perfectly clean path.
    pub const fn clean() -> Self {
        FaultProfile {
            drop_prob: 0.0,
            reset_prob: 0.0,
            base_latency_ms: 20,
        }
    }

    /// A lossy path with the given drop probability.
    pub fn lossy(drop_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob));
        FaultProfile {
            drop_prob,
            ..FaultProfile::clean()
        }
    }

    /// Sample the profile once: does this flow fail, and how?
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<Fault> {
        if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob) {
            return Some(Fault::Timeout);
        }
        if self.reset_prob > 0.0 && rng.gen_bool(self.reset_prob) {
            return Some(Fault::Reset);
        }
        None
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clean_profile_never_fails() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = FaultProfile::clean();
        for _ in 0..1000 {
            assert_eq!(p.sample(&mut rng), None);
        }
    }

    #[test]
    fn always_drop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = FaultProfile::lossy(1.0);
        assert_eq!(p.sample(&mut rng), Some(Fault::Timeout));
    }

    #[test]
    fn reset_only_profile() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = FaultProfile {
            drop_prob: 0.0,
            reset_prob: 1.0,
            base_latency_ms: 10,
        };
        assert_eq!(p.sample(&mut rng), Some(Fault::Reset));
    }

    #[test]
    fn lossy_rate_is_roughly_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let p = FaultProfile::lossy(0.3);
        let fails = (0..10_000).filter(|_| p.sample(&mut rng).is_some()).count();
        assert!((2_500..3_500).contains(&fails), "observed {fails}");
    }

    #[test]
    #[should_panic]
    fn lossy_rejects_out_of_range() {
        let _ = FaultProfile::lossy(1.5);
    }
}
