//! The discrete-event core: a deterministic event queue on virtual time.
//!
//! Everything that *happens* in the simulated Internet — DNS lookups,
//! fault draws, middlebox hops, origin replies, parked orchestrator
//! deadlines — is an entry in an [`EventQueue`]: a `(time, seq)`-ordered
//! priority queue where `seq` is a monotone insertion sequence. Two
//! events at the same virtual instant always pop in the order they were
//! scheduled, which is the tie-break that makes identical seeds replay
//! byte-identically no matter how many flows are in flight.
//!
//! The queue never moves the clock itself: callers pop events (or pop
//! everything due up to an externally advanced `now`) and dispatch them.
//! Cancellation is exact — a cancelled event is removed immediately, not
//! tombstoned — so `len()` always equals the number of live events and
//! `next_deadline()` never reports a dead one.

use std::collections::{BTreeMap, BTreeSet};

use crate::time::SimTime;

/// Stable handle for a scheduled event; doubles as the deterministic
/// tie-break (it is the insertion sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The underlying sequence number.
    pub const fn value(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ev{}", self.0)
    }
}

/// A deterministic `(time, seq)`-ordered event queue.
///
/// `schedule` returns an [`EventId`] that can later be cancelled;
/// `pop` yields the earliest live event, breaking timestamp ties by
/// insertion order. The representation is a sorted key set plus a
/// payload map (rather than a binary heap with tombstones) so that
/// cancellation is O(log n) and exact, and iteration order is fully
/// specified on every platform.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Live events in pop order.
    order: BTreeSet<(SimTime, u64)>,
    /// Payloads keyed by sequence number, with their deadline.
    payloads: BTreeMap<u64, (SimTime, T)>,
    /// Monotone insertion sequence; never reused, even after cancel.
    seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            order: BTreeSet::new(),
            payloads: BTreeMap::new(),
            seq: 0,
        }
    }

    /// Number of live (scheduled, not yet popped or cancelled) events.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no events are live.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Schedule `payload` to fire at `at`. Deadlines already in the
    /// past are legal: they simply pop first.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventId {
        let seq = self.seq;
        self.seq += 1;
        self.order.insert((at, seq));
        self.payloads.insert(seq, (at, payload));
        EventId(seq)
    }

    /// Cancel a scheduled event. Returns `true` if it was still live
    /// (and is now removed), `false` if it had already fired or been
    /// cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.payloads.remove(&id.0) {
            Some((at, _)) => {
                self.order.remove(&(at, id.0));
                true
            }
            None => false,
        }
    }

    /// The deadline of a still-live event.
    pub fn deadline_of(&self, id: EventId) -> Option<SimTime> {
        self.payloads.get(&id.0).map(|(at, _)| *at)
    }

    /// The earliest live deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.order.iter().next().map(|&(at, _)| at)
    }

    /// Remove and return the earliest live event as
    /// `(deadline, id, payload)`, breaking timestamp ties by insertion
    /// sequence.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, T)> {
        let &(at, seq) = self.order.iter().next()?;
        self.order.remove(&(at, seq));
        let (_, payload) = self.payloads.remove(&seq)?;
        Some((at, EventId(seq), payload))
    }

    /// Remove and return every payload whose deadline is `<= now`,
    /// ordered by `(deadline, insertion seq)`.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<T> {
        let mut due = Vec::new();
        while let Some(at) = self.next_deadline() {
            if at > now {
                break;
            }
            if let Some((_, _, payload)) = self.pop() {
                due.push(payload);
            }
        }
        due
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_insertion_tie_break() {
        let mut q = EventQueue::new();
        let _c = q.schedule(SimTime::from_secs(30), "c");
        let _a1 = q.schedule(SimTime::from_secs(10), "a1");
        let _b = q.schedule(SimTime::from_secs(20), "b");
        let _a2 = q.schedule(SimTime::from_secs(10), "a2");
        assert_eq!(q.len(), 4);
        assert_eq!(q.next_deadline(), Some(SimTime::from_secs(10)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a1", "a2", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_exactly_once() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(5), "a");
        let b = q.schedule(SimTime::from_secs(5), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports dead");
        assert_eq!(q.len(), 1);
        assert_eq!(q.deadline_of(b), Some(SimTime::from_secs(5)));
        assert_eq!(q.deadline_of(a), None);
        let (at, id, p) = q.pop().expect("b is live");
        assert_eq!((at, id, p), (SimTime::from_secs(5), b, "b"));
        assert!(!q.cancel(b), "cancel after pop reports dead");
    }

    #[test]
    fn pop_due_respects_now_and_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 30);
        q.schedule(SimTime::from_secs(1), 10);
        q.schedule(SimTime::from_secs(2), 20);
        q.schedule(SimTime::from_secs(1), 11);
        assert_eq!(q.pop_due(SimTime::from_secs(2)), vec![10, 11, 20]);
        assert_eq!(q.pop_due(SimTime::from_secs(2)), Vec::<i32>::new());
        assert_eq!(q.pop_due(SimTime::from_secs(3)), vec![30]);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::ZERO, ());
        q.cancel(a);
        let b = q.schedule(SimTime::ZERO, ());
        assert_ne!(a, b);
        assert!(b.value() > a.value());
    }

    #[test]
    fn past_deadlines_pop_first() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_days(2), "future");
        q.schedule(SimTime::ZERO, "past");
        let (_, _, first) = q.pop().expect("non-empty");
        assert_eq!(first, "past");
    }
}
