//! Property-based tests for the simulated-Internet substrate.

use filterwatch_http::{Request, Response, Url};
use filterwatch_netsim::middlebox::Chain;
use filterwatch_netsim::service::StaticSite;
use filterwatch_netsim::{
    Cidr, Dns, Fault, FaultProfile, FlowCtx, FlowDisposition, FlowRecord, Internet, IpAddr,
    Middlebox, NetworkSpec, SimTime, Verdict,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Any flow disposition, middlebox names included.
fn any_disposition() -> impl Strategy<Value = FlowDisposition> {
    let name = "[a-z][a-z0-9:._-]{0,12}";
    prop_oneof![
        (100u16..600).prop_map(FlowDisposition::Origin),
        (name, 100u16..600)
            .prop_map(|(middlebox, status)| FlowDisposition::Intercepted { middlebox, status }),
        name.prop_map(FlowDisposition::DroppedBy),
        name.prop_map(FlowDisposition::ResetBy),
        Just(FlowDisposition::PathFault("timeout")),
        Just(FlowDisposition::PathFault("reset")),
        Just(FlowDisposition::DnsFailure),
        Just(FlowDisposition::InjectedDnsFailure),
        Just(FlowDisposition::ConnectFailed),
        any::<u64>().prop_map(|resumes_at_secs| FlowDisposition::Outage { resumes_at_secs }),
        Just(FlowDisposition::Truncated),
        name.prop_map(FlowDisposition::BreakerSkip),
    ]
}

/// A middlebox that tags responses with its index; optionally the one
/// that blocks.
struct Tagged {
    name: String,
    blocks: bool,
}

impl Middlebox for Tagged {
    fn name(&self) -> &str {
        &self.name
    }
    fn process_request(&self, _req: &Request, _ctx: &FlowCtx) -> Verdict {
        if self.blocks {
            Verdict::respond(Response::text(
                filterwatch_http::Status::FORBIDDEN,
                "blocked",
            ))
        } else {
            Verdict::Forward
        }
    }
    fn process_response(&self, _req: &Request, mut resp: Response, _ctx: &FlowCtx) -> Response {
        resp.headers.append("X-Chain", self.name.clone());
        resp
    }
}

proptest! {
    /// IP display → parse is the identity.
    #[test]
    fn ip_round_trip(v in any::<u32>()) {
        let ip = IpAddr(v);
        let reparsed: IpAddr = ip.to_string().parse().unwrap();
        prop_assert_eq!(ip, reparsed);
    }

    /// A CIDR contains exactly `size()` addresses, its first and last,
    /// and nothing just outside.
    #[test]
    fn cidr_bounds(v in any::<u32>(), len in 20u8..=32) {
        let cidr = Cidr::new(IpAddr(v), len);
        prop_assert!(cidr.contains(cidr.first()));
        prop_assert!(cidr.contains(cidr.last()));
        prop_assert_eq!(cidr.iter().count() as u64, cidr.size());
        if cidr.first().value() > 0 {
            prop_assert!(!cidr.contains(IpAddr(cidr.first().value() - 1)));
        }
        if cidr.last().value() < u32::MAX {
            prop_assert!(!cidr.contains(IpAddr(cidr.last().value() + 1)));
        }
    }

    /// CIDR display → parse round-trips.
    #[test]
    fn cidr_round_trip(v in any::<u32>(), len in 0u8..=32) {
        let cidr = Cidr::new(IpAddr(v), len);
        let reparsed: Cidr = cidr.to_string().parse().unwrap();
        prop_assert_eq!(cidr, reparsed);
    }

    /// DNS: registered names resolve; unregistered don't (no aliasing).
    #[test]
    fn dns_exactness(names in proptest::collection::btree_set("[a-z]{1,8}\\.[a-z]{2,4}", 1..8)) {
        let mut dns = Dns::new();
        let names: Vec<String> = names.into_iter().collect();
        for (i, name) in names.iter().enumerate() {
            dns.register(name, IpAddr(i as u32 + 1));
        }
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(dns.resolve(name), Some(IpAddr(i as u32 + 1)));
        }
        prop_assert_eq!(dns.resolve("definitely-not-registered.example"), None);
    }

    /// Flow-log lines are stable and lossless: `parse_line(to_line(r))`
    /// is the identity, including tabs and backslashes in free text.
    #[test]
    fn flow_record_line_round_trips(
        d in 0u64..10_000,
        s in 0u64..86_400,
        client in any::<u32>(),
        network in "[a-z][a-z \t\\\\.-]{0,16}",
        path in "(/[a-z0-9]{0,6}){0,3}",
        disposition in any_disposition(),
    ) {
        let record = FlowRecord {
            at: SimTime::from_days(d).plus_secs(s),
            client: IpAddr(client),
            network,
            url: format!("http://site.xx{path}"),
            disposition,
        };
        let line = record.to_line();
        prop_assert_eq!(line.split('\t').count(), 5, "{}", line);
        let reparsed = FlowRecord::parse_line(&line).unwrap();
        prop_assert_eq!(reparsed, record);
    }

    /// SimTime display → parse is the identity.
    #[test]
    fn simtime_round_trips(d in 0u64..10_000, s in 0u64..86_400) {
        let t = SimTime::from_days(d).plus_secs(s);
        let reparsed: SimTime = t.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, t);
    }

    /// SimTime arithmetic: days/secs agree.
    #[test]
    fn simtime_arithmetic(d in 0u64..10_000, s in 0u64..86_400) {
        let t = SimTime::from_days(d).plus_secs(s);
        prop_assert_eq!(t.days(), d);
        prop_assert_eq!(t.secs(), d * 86_400 + s);
        prop_assert_eq!(t.plus_days(1).days(), d + 1);
    }

    /// Fault sampling frequency tracks the configured probability.
    #[test]
    fn fault_rate_tracks_probability(prob in 0.0f64..=1.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let profile = FaultProfile::lossy(prob);
        let n = 2_000;
        let fails = (0..n).filter(|_| profile.sample(&mut rng).is_some()).count();
        let observed = fails as f64 / n as f64;
        prop_assert!((observed - prob).abs() < 0.08, "prob {prob} observed {observed}");
    }

    /// Outage windows are pure functions of the virtual clock: inside
    /// `[from, until)` every sample is an outage, outside none is (on an
    /// otherwise-clean profile), regardless of the RNG seed.
    #[test]
    fn outage_windows_pure(
        from in 0u64..100_000,
        len in 1u64..100_000,
        t in 0u64..300_000,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let until = from + len;
        let profile = FaultProfile::clean()
            .try_with_outage(SimTime::from_secs(from), SimTime::from_secs(until))
            .unwrap();
        let fault = profile.sample_at(SimTime::from_secs(t), &mut rng);
        if (from..until).contains(&t) {
            prop_assert_eq!(fault, Some(Fault::Outage { resumes_at: SimTime::from_secs(until) }));
        } else {
            prop_assert_eq!(fault, None);
        }
    }

    /// `try_new` accepts exactly the unit interval, in every position.
    #[test]
    fn try_new_accepts_exactly_unit_interval(p in -1.0f64..2.0) {
        let ok = (0.0..=1.0).contains(&p);
        prop_assert_eq!(FaultProfile::try_new(p, 0.0, 0.0, 0.0).is_ok(), ok);
        prop_assert_eq!(FaultProfile::try_new(0.0, p, 0.0, 0.0).is_ok(), ok);
        prop_assert_eq!(FaultProfile::try_new(0.0, 0.0, p, 0.0).is_ok(), ok);
        prop_assert_eq!(FaultProfile::try_new(0.0, 0.0, 0.0, p).is_ok(), ok);
    }

    /// Registry prefix allocations never overlap, and every allocated
    /// address geolocates to its AS's country.
    #[test]
    fn registry_allocations_disjoint(sizes in proptest::collection::vec(0u32..3, 1..8)) {
        let mut net = Internet::new(0);
        net.registry_mut().register_country("XX", "Testland", "xx");
        let mut cidrs = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let asn = net.registry_mut().register_as(1000 + i as u32, "TEST", "XX");
            let cidr = net.registry_mut().allocate_prefix(asn, 1 << sz).unwrap();
            cidrs.push((cidr, asn));
        }
        for (i, &(a, asn_a)) in cidrs.iter().enumerate() {
            prop_assert_eq!(net.registry().asn_of(a.first()), Some(asn_a));
            prop_assert_eq!(net.registry().asn_of(a.last()), Some(asn_a));
            for &(b, _) in &cidrs[i + 1..] {
                prop_assert!(!a.contains(b.first()) && !b.contains(a.first()),
                             "{a} overlaps {b}");
            }
        }
    }

    /// alloc_ip hands out distinct in-prefix addresses until exhaustion.
    #[test]
    fn alloc_ip_unique(n in 1usize..60) {
        let mut net = Internet::new(0);
        net.registry_mut().register_country("XX", "Testland", "xx");
        let asn = net.registry_mut().register_as(64512, "TEST", "XX");
        let prefix = net.registry_mut().allocate_prefix(asn, 1).unwrap();
        let netid = net.add_network(NetworkSpec::new("t", asn, "XX").with_cidr(prefix));
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..n {
            let ip = net.alloc_ip(netid).unwrap();
            prop_assert!(prefix.contains(ip));
            prop_assert!(seen.insert(ip), "duplicate {ip}");
            net.add_host(ip, netid, &[]);
        }
    }

    /// A fetch for a registered static site always succeeds from a clean
    /// network, regardless of path.
    #[test]
    fn clean_fetch_always_succeeds(path in "(/[a-z0-9]{0,6}){0,3}") {
        let mut net = Internet::new(0);
        net.registry_mut().register_country("XX", "Testland", "xx");
        let asn = net.registry_mut().register_as(64512, "TEST", "XX");
        let prefix = net.registry_mut().allocate_prefix(asn, 1).unwrap();
        let netid = net.add_network(NetworkSpec::new("t", asn, "XX").with_cidr(prefix));
        let ip = net.alloc_ip(netid).unwrap();
        net.add_host(ip, netid, &["site.xx"]);
        net.add_service(ip, 80, Box::new(StaticSite::new("T", "<p>x</p>")));
        let vp = net.add_vantage("v", netid);
        let path = if path.is_empty() { "/".to_string() } else { path };
        let url = Url::parse(&format!("http://site.xx{path}")).unwrap();
        let out = net.fetch(vp, &url);
        prop_assert!(out.is_ok(), "{out:?}");
    }
}

proptest! {
    /// The event queue against a sorted reference model, under
    /// arbitrary interleavings of schedule / cancel / pop: every pop
    /// returns the minimum live `(time, seq)` key, cancellation is
    /// exact (true once, false forever after), and a final drain yields
    /// the remaining events in nondecreasing `(time, seq)` order.
    #[test]
    fn event_queue_matches_reference_under_schedule_cancel(
        ops in proptest::collection::vec((0u8..10, 0u64..1_000), 1..200)
    ) {
        use filterwatch_netsim::{EventId, EventQueue};
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut live: Vec<(EventId, u64)> = Vec::new();
        for &(choice, t) in &ops {
            match choice {
                // Schedule (weighted so queues actually grow).
                0..=5 => {
                    let id = q.schedule(SimTime::from_secs(t), t);
                    live.push((id, t));
                }
                // Cancel a pseudo-random live event.
                6..=7 => {
                    if !live.is_empty() {
                        let i = (t as usize) % live.len();
                        let (id, _) = live.remove(i);
                        prop_assert!(q.cancel(id), "live event must cancel");
                        prop_assert!(!q.cancel(id), "second cancel must report dead");
                    }
                }
                // Pop: must be the minimum live (time, seq).
                _ => {
                    let expect = live.iter().map(|&(id, tt)| (tt, id.value())).min();
                    match q.pop() {
                        Some((at, id, payload)) => {
                            prop_assert_eq!(Some((at.secs(), id.value())), expect);
                            prop_assert_eq!(payload, at.secs());
                            live.retain(|&(lid, _)| lid != id);
                        }
                        None => prop_assert!(expect.is_none(), "queue empty but model is not"),
                    }
                }
            }
            prop_assert_eq!(q.len(), live.len());
            prop_assert_eq!(q.next_deadline().map(|d| d.secs()),
                            live.iter().map(|&(_, tt)| tt).min());
        }
        // Drain: everything left pops in exact (time, seq) order.
        let mut expect: Vec<(u64, u64)> = live.iter().map(|&(id, tt)| (tt, id.value())).collect();
        expect.sort();
        let mut drained = Vec::new();
        while let Some((at, id, _)) = q.pop() {
            drained.push((at.secs(), id.value()));
        }
        prop_assert_eq!(drained, expect);
        prop_assert!(q.is_empty());
    }

    /// The event core and the legacy direct-call path are
    /// observationally identical: same outcomes and byte-identical flow
    /// logs over arbitrary worlds — clean or lossy fault profiles,
    /// with or without a blocking middlebox, resolving and
    /// non-resolving names.
    #[test]
    fn event_and_direct_paths_agree(
        seed in any::<u64>(),
        hosts in proptest::collection::btree_set("[a-z]{1,6}", 1..5),
        drop_prob in 0.0f64..=1.0,
        block_at in proptest::option::of(0usize..3),
    ) {
        use filterwatch_netsim::FetchPath;
        let hosts: Vec<String> = hosts.into_iter().collect();
        // Two worlds from the same recipe (so the shared fault RNG
        // streams start identical), one per path.
        let run = |path: FetchPath| {
            let mut net = Internet::new(seed);
            net.registry_mut().register_country("XX", "Testland", "xx");
            let asn = net.registry_mut().register_as(64512, "TEST", "XX");
            let prefix = net.registry_mut().allocate_prefix(asn, 1).unwrap();
            let netid = net
                .add_network(NetworkSpec::new("t", asn, "XX")
                .with_cidr(prefix)
                .with_faults(FaultProfile::lossy(drop_prob)));
            for (i, h) in hosts.iter().enumerate() {
                let ip = net.alloc_ip(netid).unwrap();
                net.add_host(ip, netid, &[&format!("{h}.xx")]);
                // Every other host actually serves, so connect failures
                // are exercised too.
                if i % 2 == 0 {
                    net.add_service(ip, 80, Box::new(StaticSite::new(h, "<p>x</p>")));
                }
            }
            for i in 0..3 {
                net.attach_middlebox(netid, Arc::new(Tagged {
                    name: format!("box{i}"),
                    blocks: block_at == Some(i),
                }));
            }
            net.set_flow_log(true);
            net.set_fetch_path(path);
            let vp = net.add_vantage("v", netid);
            let mut outcomes = Vec::new();
            for h in &hosts {
                let url = Url::parse(&format!("http://{h}.xx/")).unwrap();
                outcomes.push(format!("{:?}", net.fetch(vp, &url)));
            }
            // A name that never resolves.
            let url = Url::parse("http://unregistered.example/").unwrap();
            outcomes.push(format!("{:?}", net.fetch(vp, &url)));
            let log: Vec<String> = net.flow_log().iter().map(FlowRecord::to_line).collect();
            (outcomes, log)
        };
        let event = run(FetchPath::Event);
        let direct = run(FetchPath::DirectReference);
        prop_assert_eq!(event, direct);
    }
}

proptest! {
    /// Chain invariant: a response traverses exactly the boxes *before*
    /// the decider, in reverse order — no matter where the decider sits.
    #[test]
    fn chain_reverse_prefix_invariant(n in 1usize..8, block_at in proptest::option::of(0usize..8)) {
        let block_at = block_at.map(|b| b % n);
        let mut chain = Chain::new();
        for i in 0..n {
            chain.push(Arc::new(Tagged {
                name: format!("box{i}"),
                blocks: block_at == Some(i),
            }));
        }
        let ctx = FlowCtx {
            now: SimTime::ZERO,
            client_ip: IpAddr(1),
        };
        let req = Request::get(Url::parse("http://x.example/").unwrap());
        let (verdict, passed) = chain.run_request(&req, &ctx);
        match block_at {
            Some(b) => {
                prop_assert_eq!(passed, b);
                prop_assert!(matches!(verdict, Verdict::Respond(_)));
            }
            None => {
                prop_assert_eq!(passed, n);
                prop_assert_eq!(verdict, Verdict::Forward);
            }
        }
        let resp = chain.run_response(&req, Response::text(filterwatch_http::Status::OK, ""), &ctx, passed);
        let tags = resp.headers.get_all("X-Chain");
        let expect: Vec<String> = (0..passed).rev().map(|i| format!("box{i}")).collect();
        prop_assert_eq!(tags, expect.iter().map(String::as_str).collect::<Vec<_>>());
    }
}
