//! Property-based tests for the measurement-client building blocks.

use filterwatch_measure::blockpage::BlockPageLibrary;
use filterwatch_measure::body_similarity;
use filterwatch_measure::stats::{to_csv, RunSummary};
use filterwatch_measure::verdict::{UrlVerdict, Verdict};
use proptest::prelude::*;

fn any_verdict() -> impl Strategy<Value = Verdict> {
    prop_oneof![
        Just(Verdict::Accessible),
        "[a-z]{1,10}".prop_map(|p| Verdict::Blocked(filterwatch_measure::BlockMatch {
            product: Some(p),
            evidence: "sig".into(),
        })),
        Just(Verdict::Blocked(filterwatch_measure::BlockMatch {
            product: None,
            evidence: "generic".into(),
        })),
        (0.0f64..0.5).prop_map(|similarity| Verdict::Modified { similarity }),
        Just(Verdict::Inaccessible {
            field_error: "timeout".into()
        }),
        Just(Verdict::Unavailable {
            lab_error: "dns-failure".into()
        }),
        "[a-z ]{1,20}".prop_map(|reason| Verdict::Inconclusive { reason }),
    ]
}

proptest! {
    /// Similarity is symmetric, bounded, and 1 on identical inputs.
    #[test]
    fn similarity_axioms(a in "\\PC{0,120}", b in "\\PC{0,120}") {
        let sab = body_similarity(&a, &b);
        let sba = body_similarity(&b, &a);
        prop_assert!((sab - sba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&sab));
        prop_assert_eq!(body_similarity(&a, &a), 1.0);
    }

    /// Whitespace-only perturbations never change similarity.
    #[test]
    fn similarity_ignores_whitespace(words in proptest::collection::vec("[a-z]{1,8}", 1..20)) {
        let single = words.join(" ");
        let padded = words.join("  \n\t ");
        prop_assert_eq!(body_similarity(&single, &padded), 1.0);
    }

    /// Summary class counts always partition the tested total.
    #[test]
    fn summary_partitions(verdicts in proptest::collection::vec(any_verdict(), 0..40)) {
        let list: Vec<UrlVerdict> = verdicts
            .into_iter()
            .enumerate()
            .map(|(i, verdict)| UrlVerdict {
                url: format!("http://u{i}.example/"),
                verdict,
            })
            .collect();
        let s = RunSummary::from_verdicts(&list);
        prop_assert_eq!(
            s.accessible + s.blocked + s.modified + s.inaccessible + s.unavailable
                + s.inconclusive,
            s.tested
        );
        let attributed: usize = s.by_product.values().sum();
        prop_assert_eq!(attributed, s.blocked);
        prop_assert!(s.block_rate() <= 1.0);
    }

    /// CSV export always yields header + one row per verdict, and every
    /// row starts with the URL.
    #[test]
    fn csv_shape(verdicts in proptest::collection::vec(any_verdict(), 0..20)) {
        let list: Vec<UrlVerdict> = verdicts
            .into_iter()
            .enumerate()
            .map(|(i, verdict)| UrlVerdict {
                url: format!("http://u{i}.example/"),
                verdict,
            })
            .collect();
        let csv = to_csv(&list);
        let lines: Vec<&str> = csv.lines().collect();
        prop_assert_eq!(lines.len(), list.len() + 1);
        for (line, v) in lines[1..].iter().zip(&list) {
            prop_assert!(line.starts_with(&v.url), "{line}");
        }
    }

    /// Backoff is a pure function of (seed, label, attempt) and stays in
    /// `[exp, exp * (1 + jitter_frac)]` where `exp` is the capped
    /// exponential wait.
    #[test]
    fn backoff_bounds(attempt in 1u32..12, seed in any::<u64>(), frac in 0.0f64..1.0) {
        use filterwatch_measure::RetryPolicy;
        let p = RetryPolicy {
            max_attempts: 12,
            base_backoff_secs: 2,
            backoff_cap_secs: 64,
            jitter_frac: frac,
            budget: None,
        };
        let w = p.backoff_secs(attempt, seed, "vantage/http://u.example/");
        prop_assert_eq!(w, p.backoff_secs(attempt, seed, "vantage/http://u.example/"));
        let exp = 2u64.saturating_mul(1 << u64::from(attempt - 1)).min(64);
        prop_assert!(w >= exp, "{w} < {exp}");
        let ceiling = exp + (exp as f64 * frac).ceil() as u64;
        prop_assert!(w <= ceiling, "{w} > {ceiling}");
    }

    /// The breaker opens after exactly `threshold` consecutive failures
    /// and any success resets the count.
    #[test]
    fn breaker_threshold_exact(threshold in 1u32..8, pre in 0u32..8) {
        use filterwatch_measure::{BreakerConfig, BreakerState, CircuitBreaker};
        use filterwatch_netsim::SimTime;
        let b = CircuitBreaker::new(BreakerConfig { failure_threshold: threshold, cooldown_secs: 10 });
        // `pre` failures short of the threshold, then a success: still closed.
        for _ in 0..pre.min(threshold - 1) {
            b.record_failure(SimTime::ZERO);
        }
        b.record_success();
        prop_assert_eq!(b.state(), BreakerState::Closed);
        for i in 0..threshold {
            prop_assert_eq!(b.state(), BreakerState::Closed, "open after {} of {}", i, threshold);
            b.record_failure(SimTime::ZERO);
        }
        prop_assert_eq!(b.state(), BreakerState::Open);
        prop_assert_eq!(b.trips(), 1);
    }

    /// The block-page library never classifies arbitrary text that lacks
    /// both vendor markers and denial wording... and never panics.
    #[test]
    fn blockpage_classifier_total(text in "[a-z0-9 .:/<>-]{0,200}") {
        let lib = BlockPageLibrary::standard();
        let _ = lib.classify(&text);
        // Clean marker-free text definitely does not classify.
        let clean = text
            .replace("cfru", "")
            .replace("cfauth", "")
            .replace("webadmin", "")
            .replace("netsweeper", "")
            .replace("websense", "")
            .replace("15871", "")
            .replace("blocked", "")
            .replace("denied", "")
            .replace("mcafee", "")
            .replace("via-proxy", "")
            .replace("blue coat", "")
            .replace("access restricted by network policy", "");
        prop_assert!(lib.classify(&clean).is_none(), "{clean:?}");
    }
}
