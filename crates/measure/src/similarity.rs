//! Field/lab content comparison.
//!
//! Beyond block pages, in-path equipment can *rewrite* content — the
//! comparison step of §4.1 ("the results of the Web page accesses in the
//! field and lab are compared") catches that too when the two copies
//! diverge. The metric here is Jaccard similarity over visible-text
//! tokens: robust to whitespace and header noise, sensitive to injected
//! or removed passages.

use std::collections::BTreeSet;

use filterwatch_http::html;

/// Similarity below which two copies of a page are considered modified.
pub const MODIFIED_THRESHOLD: f64 = 0.5;

/// Jaccard similarity of the visible-text token sets of two HTML bodies.
/// Ranges over `0..=1`; two empty documents count as identical.
pub fn body_similarity(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let intersection = ta.intersection(&tb).count();
    let union = ta.union(&tb).count();
    intersection as f64 / union as f64
}

fn tokens(body: &str) -> BTreeSet<String> {
    html::visible_text(body)
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_bodies_score_one() {
        let doc = "<html><body><p>same words here</p></body></html>";
        assert_eq!(body_similarity(doc, doc), 1.0);
    }

    #[test]
    fn markup_noise_is_ignored() {
        let a = "<html><body><p>the quick brown fox</p></body></html>";
        let b = "<div><span>THE</span> quick   brown fox</div>";
        assert_eq!(body_similarity(a, b), 1.0);
    }

    #[test]
    fn disjoint_bodies_score_zero() {
        assert_eq!(
            body_similarity("<p>alpha beta</p>", "<p>gamma delta</p>"),
            0.0
        );
    }

    #[test]
    fn partial_overlap_in_between() {
        let s = body_similarity("<p>one two three four</p>", "<p>one two five six</p>");
        assert!(s > 0.0 && s < 1.0, "{s}");
    }

    #[test]
    fn empty_documents_identical() {
        assert_eq!(body_similarity("", ""), 1.0);
        assert_eq!(body_similarity("<p>x</p>", ""), 0.0);
    }

    #[test]
    fn injected_banner_lowers_similarity() {
        let original = "<p>independent reporting on the protests</p>";
        let tampered = "<p>independent reporting on the protests</p>\
                        <div>state notice: this content is subject to review \
                        by the telecommunications authority effective today</div>";
        let s = body_similarity(original, tampered);
        assert!(s < 0.5, "{s}");
    }
}
