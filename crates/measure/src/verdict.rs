//! Per-URL accessibility verdicts.

use crate::blockpage::BlockMatch;

/// The comparison of a field observation against the lab control.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Reachable in the field, content consistent with the lab.
    Accessible,
    /// The field saw an explicit block page.
    Blocked(BlockMatch),
    /// Reachable in the field but the content differs substantially from
    /// the lab's copy without matching any block-page signature —
    /// in-path tampering rather than overt blocking.
    Modified {
        /// Token-level similarity between field and lab bodies (0..=1).
        similarity: f64,
    },
    /// The field failed (timeout/reset/connect) while the lab succeeded —
    /// the ambiguous censorship styles the paper avoids relying on.
    Inaccessible { field_error: String },
    /// The lab itself could not fetch the URL; no conclusion possible.
    Unavailable { lab_error: String },
    /// The measurement machinery could not reach a trustworthy verdict:
    /// quorum trials disagreed, or a circuit breaker skipped the vantage
    /// entirely. Replaces silent misclassification under flaky paths.
    Inconclusive { reason: String },
}

impl Verdict {
    /// Whether this verdict is an explicit block.
    pub fn is_blocked(&self) -> bool {
        matches!(self, Verdict::Blocked(_))
    }

    /// Whether this verdict is covert content modification.
    pub fn is_modified(&self) -> bool {
        matches!(self, Verdict::Modified { .. })
    }

    /// Whether the URL was cleanly accessible.
    pub fn is_accessible(&self) -> bool {
        matches!(self, Verdict::Accessible)
    }

    /// The product attributed by the block-page signature, if blocked
    /// and identifiable.
    pub fn blocked_by(&self) -> Option<&str> {
        match self {
            Verdict::Blocked(m) => m.product.as_deref(),
            _ => None,
        }
    }

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Accessible => "accessible",
            Verdict::Blocked(_) => "blocked",
            Verdict::Modified { .. } => "modified",
            Verdict::Inaccessible { .. } => "inaccessible",
            Verdict::Unavailable { .. } => "unavailable",
            Verdict::Inconclusive { .. } => "inconclusive",
        }
    }

    /// Whether the measurement machinery declined to render a verdict.
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Verdict::Inconclusive { .. })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Blocked(m) => write!(
                f,
                "blocked ({})",
                m.product.as_deref().unwrap_or("unattributed")
            ),
            other => f.write_str(other.label()),
        }
    }
}

/// The label half of a [`Verdict`], as it appears on the wire.
///
/// Verdict lines drop the payload (evidence, similarity, reasons), so
/// parsing a line back recovers the label, not the full [`Verdict`].
/// This enum is the parse-side counterpart of [`Verdict::label`]: one
/// variant per label, so adding a verdict kind without a parse arm is
/// caught by the `w1-wire-pair` lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictLabel {
    /// `accessible`
    Accessible,
    /// `blocked`
    Blocked,
    /// `modified`
    Modified,
    /// `inaccessible`
    Inaccessible,
    /// `unavailable`
    Unavailable,
    /// `inconclusive`
    Inconclusive,
}

impl VerdictLabel {
    /// Parse a wire label produced by [`Verdict::label`].
    pub fn parse_label(label: &str) -> Result<VerdictLabel, String> {
        match label {
            "accessible" => Ok(VerdictLabel::Accessible),
            "blocked" => Ok(VerdictLabel::Blocked),
            "modified" => Ok(VerdictLabel::Modified),
            "inaccessible" => Ok(VerdictLabel::Inaccessible),
            "unavailable" => Ok(VerdictLabel::Unavailable),
            "inconclusive" => Ok(VerdictLabel::Inconclusive),
            other => Err(format!("unknown verdict label {other:?}")),
        }
    }

    /// The wire label, identical to [`Verdict::label`] for the
    /// corresponding variant.
    pub fn as_str(&self) -> &'static str {
        match self {
            VerdictLabel::Accessible => "accessible",
            VerdictLabel::Blocked => "blocked",
            VerdictLabel::Modified => "modified",
            VerdictLabel::Inaccessible => "inaccessible",
            VerdictLabel::Unavailable => "unavailable",
            VerdictLabel::Inconclusive => "inconclusive",
        }
    }
}

/// A verdict attached to the URL it concerns.
#[derive(Debug, Clone, PartialEq)]
pub struct UrlVerdict {
    /// The tested URL (as text).
    pub url: String,
    /// The comparison outcome.
    pub verdict: Verdict,
}

/// One [`UrlVerdict::to_line`] line read back from a report: the
/// fields the wire format actually carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedVerdictLine {
    /// The tested URL (as text).
    pub url: String,
    /// The verdict label.
    pub label: VerdictLabel,
    /// The attributed product, when blocked and identified.
    pub product: Option<String>,
}

impl UrlVerdict {
    /// One stable tab-separated line: URL, verdict label, and the
    /// attributed product (`-` when none). Error/reason strings are
    /// deliberately excluded — they may carry timing-dependent detail —
    /// so differential runners and metamorphic invariants can byte-
    /// compare verdict sweeps across configurations.
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}",
            self.url,
            self.verdict.label(),
            self.verdict.blocked_by().unwrap_or("-")
        )
    }

    /// Parse a [`UrlVerdict::to_line`] line back into its wire fields.
    pub fn parse_line(line: &str) -> Result<ParsedVerdictLine, String> {
        let mut fields = line.split('\t');
        let (Some(url), Some(label), Some(product), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(format!(
                "verdict line needs 3 tab-separated fields: {line:?}"
            ));
        };
        Ok(ParsedVerdictLine {
            url: url.to_string(),
            label: VerdictLabel::parse_label(label)?,
            product: match product {
                "-" => None,
                p => Some(p.to_string()),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let blocked = Verdict::Blocked(BlockMatch {
            product: Some("netsweeper".into()),
            evidence: "sig".into(),
        });
        assert!(blocked.is_blocked());
        assert_eq!(blocked.blocked_by(), Some("netsweeper"));
        assert!(!blocked.is_accessible());
        assert!(Verdict::Accessible.is_accessible());
        assert_eq!(Verdict::Accessible.blocked_by(), None);
    }

    #[test]
    fn modified_accessors() {
        let m = Verdict::Modified { similarity: 0.3 };
        assert!(m.is_modified());
        assert!(!m.is_blocked());
        assert_eq!(m.label(), "modified");
    }

    #[test]
    fn display() {
        let anon = Verdict::Blocked(BlockMatch {
            product: None,
            evidence: "generic".into(),
        });
        assert_eq!(anon.to_string(), "blocked (unattributed)");
        assert_eq!(
            Verdict::Inaccessible {
                field_error: "timeout".into()
            }
            .to_string(),
            "inaccessible"
        );
    }

    #[test]
    fn stable_line_excludes_noise() {
        let blocked = UrlVerdict {
            url: "http://a.example/".into(),
            verdict: Verdict::Blocked(BlockMatch {
                product: Some("netsweeper".into()),
                evidence: "sig".into(),
            }),
        };
        assert_eq!(blocked.to_line(), "http://a.example/\tblocked\tnetsweeper");
        let inconclusive = UrlVerdict {
            url: "http://b.example/".into(),
            verdict: Verdict::Inconclusive {
                reason: "breaker open until t=1234".into(),
            },
        };
        // The reason (timing detail) must not leak into the line.
        assert_eq!(inconclusive.to_line(), "http://b.example/\tinconclusive\t-");
    }

    #[test]
    fn lines_round_trip() {
        let cases = vec![
            UrlVerdict {
                url: "http://a.example/".into(),
                verdict: Verdict::Blocked(BlockMatch {
                    product: Some("netsweeper".into()),
                    evidence: "sig".into(),
                }),
            },
            UrlVerdict {
                url: "http://b.example/".into(),
                verdict: Verdict::Accessible,
            },
            UrlVerdict {
                url: "http://c.example/".into(),
                verdict: Verdict::Modified { similarity: 0.4 },
            },
            UrlVerdict {
                url: "http://d.example/".into(),
                verdict: Verdict::Inaccessible {
                    field_error: "reset".into(),
                },
            },
            UrlVerdict {
                url: "http://e.example/".into(),
                verdict: Verdict::Unavailable {
                    lab_error: "dns".into(),
                },
            },
            UrlVerdict {
                url: "http://f.example/".into(),
                verdict: Verdict::Inconclusive {
                    reason: "no quorum".into(),
                },
            },
        ];
        for uv in cases {
            let parsed = UrlVerdict::parse_line(&uv.to_line()).unwrap();
            assert_eq!(parsed.url, uv.url);
            assert_eq!(parsed.label.as_str(), uv.verdict.label());
            assert_eq!(parsed.product.as_deref(), uv.verdict.blocked_by());
        }
    }

    #[test]
    fn parse_line_rejects_malformed_input() {
        assert!(UrlVerdict::parse_line("only-two\tfields").is_err());
        assert!(UrlVerdict::parse_line("u\tblocked\tx\textra").is_err());
        assert!(UrlVerdict::parse_line("u\tbogus-label\t-").is_err());
        assert!(VerdictLabel::parse_label("Accessible").is_err());
    }

    #[test]
    fn inconclusive_accessors() {
        let v = Verdict::Inconclusive {
            reason: "no quorum".into(),
        };
        assert!(v.is_inconclusive());
        assert!(!v.is_blocked());
        assert!(!v.is_accessible());
        assert_eq!(v.label(), "inconclusive");
        assert_eq!(v.to_string(), "inconclusive");
        assert!(!Verdict::Accessible.is_inconclusive());
    }
}
