//! The dual-vantage measurement client.

use filterwatch_http::{Response, Url};
use filterwatch_netsim::{FetchOutcome, FlowDisposition, Internet, VantageId};
use filterwatch_trace::{ScopeId, StepKind};

use crate::blockpage::BlockPageLibrary;
use crate::resilience::{
    CircuitBreaker, FaultClass, MeasurementQuality, QualityCounters, ResilienceConfig, RetryPolicy,
};
use crate::similarity::{body_similarity, MODIFIED_THRESHOLD};
use crate::verdict::{UrlVerdict, Verdict};

/// The hops of one redirect-following fetch.
#[derive(Debug, Clone)]
pub struct FetchTrace {
    /// `(url, outcome)` per hop, in order.
    pub hops: Vec<(Url, FetchOutcome)>,
}

impl FetchTrace {
    /// The final hop's outcome.
    pub fn final_outcome(&self) -> &FetchOutcome {
        &self.hops.last().expect("trace has at least one hop").1
    }

    /// The final hop's response, if one arrived.
    pub fn final_response(&self) -> Option<&Response> {
        self.final_outcome().response()
    }

    /// All text a block-page classifier should see: every hop's URL,
    /// banner and body.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for (url, outcome) in &self.hops {
            out.push_str(&url.to_string());
            out.push('\n');
            if let Some(resp) = outcome.response() {
                out.push_str(&resp.banner());
                out.push('\n');
                out.push_str(&resp.body_text());
                out.push('\n');
            }
        }
        out
    }
}

/// What one vantage observed for one URL.
#[derive(Debug, Clone)]
pub enum Observation {
    /// An HTTP response was ultimately received.
    Reached {
        /// Final status code.
        status: u16,
        /// The full trace (for classification and logs).
        trace: FetchTrace,
    },
    /// The fetch failed at the transport layer.
    Failed {
        /// `timeout`, `reset`, `dns-failure` or `connect-failed`.
        error: String,
    },
}

impl Observation {
    /// Whether a response arrived.
    pub fn reached(&self) -> bool {
        matches!(self, Observation::Reached { .. })
    }
}

/// The §4.1 measurement client: field + lab vantage points.
///
/// By default the client is single-shot. [`with_resilience`]
/// (`MeasurementClient::with_resilience`) layers on retries with
/// backoff, per-vantage circuit breakers and quorum verdicts — all of
/// [`test_url`](MeasurementClient::test_url) and the list helpers then
/// route through the resilient path transparently.
pub struct MeasurementClient {
    field: VantageId,
    lab: VantageId,
    library: BlockPageLibrary,
    max_redirects: usize,
    resilience: ResilienceConfig,
    field_breaker: Option<CircuitBreaker>,
    lab_breaker: Option<CircuitBreaker>,
    quality: QualityCounters,
    retries_used: std::sync::atomic::AtomicU64,
}

impl MeasurementClient {
    /// A client testing from `field`, controlled against `lab`.
    pub fn new(field: VantageId, lab: VantageId) -> Self {
        MeasurementClient {
            field,
            lab,
            library: BlockPageLibrary::standard(),
            max_redirects: 5,
            resilience: ResilienceConfig::default(),
            field_breaker: None,
            lab_breaker: None,
            quality: QualityCounters::default(),
            retries_used: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Builder-style: record classifier latency (and any future client
    /// metrics) on `telemetry`.
    pub fn with_telemetry(mut self, telemetry: filterwatch_telemetry::TelemetryHandle) -> Self {
        self.library = self.library.with_telemetry(telemetry);
        self
    }

    /// Builder-style: enable retry/breaker/quorum behaviour.
    pub fn with_resilience(mut self, config: ResilienceConfig) -> Self {
        self.field_breaker = config.breaker.map(CircuitBreaker::new);
        self.lab_breaker = config.breaker.map(CircuitBreaker::new);
        self.resilience = config;
        self
    }

    /// The active resilience configuration.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// Snapshot the measurement-quality counters accumulated so far.
    pub fn quality(&self) -> MeasurementQuality {
        let trips = self.field_breaker.as_ref().map_or(0, |b| b.trips())
            + self.lab_breaker.as_ref().map_or(0, |b| b.trips());
        self.quality.snapshot(trips)
    }

    /// The field vantage.
    pub fn field(&self) -> VantageId {
        self.field
    }

    /// The lab vantage.
    pub fn lab(&self) -> VantageId {
        self.lab
    }

    /// Fetch a URL from one vantage, following redirects.
    pub fn fetch(&self, net: &Internet, vantage: VantageId, url: &Url) -> Observation {
        let tracer = net.tracer();
        let scope = if tracer.is_enabled() {
            tracer.open(
                StepKind::Fetch,
                net.now().secs(),
                &[
                    ("vantage", &net.vantage(vantage).name),
                    ("url", &url.to_string()),
                ],
            )
        } else {
            ScopeId::NONE
        };
        let obs = self.fetch_inner(net, vantage, url);
        if tracer.is_enabled() {
            let outcome = match &obs {
                Observation::Reached { status, .. } => status.to_string(),
                Observation::Failed { error } => error.clone(),
            };
            tracer.close(scope, net.now().secs(), &[("outcome", &outcome)]);
        }
        obs
    }

    fn fetch_inner(&self, net: &Internet, vantage: VantageId, url: &Url) -> Observation {
        let mut hops = Vec::new();
        let mut current = url.clone();
        for _ in 0..=self.max_redirects {
            let outcome = net.fetch(vantage, &current);
            let next = match &outcome {
                FetchOutcome::Ok(resp) if resp.status.is_redirect() => resp
                    .location()
                    .and_then(|loc| self.resolve_location(&current, loc)),
                FetchOutcome::Ok(_) => None,
                _failure => {
                    hops.push((current, outcome));
                    return self.finish(hops);
                }
            };
            match next {
                Some(next_url) => {
                    if net.tracer().recording() {
                        net.tracer().point(
                            StepKind::Redirect,
                            net.now().secs(),
                            &[("to", &next_url.to_string())],
                        );
                    }
                    // Hand the hop its URL by value instead of cloning
                    // it: `current` moves into `hops` as `next_url`
                    // takes its place.
                    hops.push((std::mem::replace(&mut current, next_url), outcome));
                }
                None => {
                    hops.push((current, outcome));
                    return self.finish(hops);
                }
            }
        }
        self.finish(hops)
    }

    fn resolve_location(&self, base: &Url, location: &str) -> Option<Url> {
        if location.starts_with("http://") || location.starts_with("https://") {
            Url::parse(location).ok()
        } else if location.starts_with('/') {
            Some(base.with_path(location))
        } else {
            None
        }
    }

    fn finish(&self, hops: Vec<(Url, FetchOutcome)>) -> Observation {
        let trace = FetchTrace { hops };
        match trace.final_outcome() {
            FetchOutcome::Ok(resp) => Observation::Reached {
                status: resp.status.code(),
                trace,
            },
            failure => Observation::Failed {
                error: failure.label().to_string(),
            },
        }
    }

    /// Fetch a URL from one vantage with the configured retry policy:
    /// retryable transport failures back off (advancing the virtual
    /// clock, which is what lets retries outlast outage windows) and
    /// re-fetch, up to the attempt limit and retry budget. With the
    /// default single-attempt policy this is exactly [`fetch`]
    /// (`MeasurementClient::fetch`) — no clock movement, no extra work.
    pub fn fetch_with_retries(&self, net: &Internet, vantage: VantageId, url: &Url) -> Observation {
        use std::sync::atomic::Ordering;
        let policy = &self.resilience.retry;
        // The backoff label is a pure function of the vantage and URL;
        // render it at most once across all attempts.
        let mut backoff_label: Option<String> = None;
        let mut attempt = 1u32;
        loop {
            QualityCounters::bump(&self.quality.fetch_attempts);
            let obs = self.fetch(net, vantage, url);
            let Observation::Failed { error } = &obs else {
                return obs;
            };
            if attempt >= policy.max_attempts || RetryPolicy::classify(error) == FaultClass::Fatal {
                return obs;
            }
            if let Some(budget) = policy.budget {
                if self.retries_used.load(Ordering::Relaxed) >= budget {
                    return obs;
                }
            }
            let label = backoff_label
                .get_or_insert_with(|| format!("{}/{}", net.vantage(vantage).name, url));
            let wait = policy.backoff_secs(attempt, net.seed(), label);
            if net.tracer().recording() {
                net.tracer().point(
                    StepKind::Retry,
                    net.now().secs(),
                    &[
                        ("attempt", &attempt.to_string()),
                        ("wait-secs", &wait.to_string()),
                        ("error", error),
                    ],
                );
            }
            net.advance_secs(wait);
            if net.telemetry().is_enabled() {
                net.telemetry().counter_add("retry.attempt", error, 1);
            }
            QualityCounters::bump(&self.quality.retries);
            self.retries_used.fetch_add(1, Ordering::Relaxed);
            attempt += 1;
        }
    }

    /// Test one URL: fetch from the field and from the lab, compare
    /// (§4.1), and classify any explicit block page. With resilience
    /// enabled this becomes N quorum trials of breaker-guarded,
    /// retry-backed fetches.
    pub fn test_url(&self, net: &Internet, url: &Url) -> UrlVerdict {
        let tracer = net.tracer();
        let scope = if tracer.is_enabled() {
            tracer.open(
                StepKind::UrlTest,
                net.now().secs(),
                &[("url", &url.to_string())],
            )
        } else {
            ScopeId::NONE
        };
        let verdict = if self.resilience.is_passthrough() {
            let field = self.fetch(net, self.field, url);
            let lab = self.fetch(net, self.lab, url);
            self.compare(&field, &lab)
        } else {
            self.test_url_quorum(net, url)
        };
        QualityCounters::bump(&self.quality.verdicts);
        if verdict.is_inconclusive() {
            QualityCounters::bump(&self.quality.inconclusive);
        }
        if tracer.recording() {
            tracer.point(
                StepKind::Verdict,
                net.now().secs(),
                &[
                    ("verdict", verdict.label()),
                    ("product", verdict.blocked_by().unwrap_or("-")),
                ],
            );
        }
        tracer.close(scope, net.now().secs(), &[]);
        UrlVerdict {
            url: url.to_string(),
            verdict,
        }
    }

    /// One breaker-guarded, retry-backed field/lab comparison.
    fn test_url_trial(&self, net: &Internet, url: &Url) -> Verdict {
        // Breaker check first: a vantage known to be down is skipped
        // without burning retry budget, and the skip is auditable in the
        // flow log.
        for (vantage, breaker) in [
            (self.field, &self.field_breaker),
            (self.lab, &self.lab_breaker),
        ] {
            if let Some(b) = breaker {
                if !b.allows(net.now()) {
                    let name = net.vantage(vantage).name.clone();
                    QualityCounters::bump(&self.quality.breaker_skips);
                    if net.tracer().recording() {
                        net.tracer().point(
                            StepKind::BreakerOpen,
                            net.now().secs(),
                            &[("vantage", &name)],
                        );
                    }
                    net.log_vantage_event(vantage, url, FlowDisposition::BreakerSkip(name.clone()));
                    return Verdict::Inconclusive {
                        reason: format!("circuit breaker open for vantage {name}"),
                    };
                }
            }
        }
        let field = self.fetch_with_retries(net, self.field, url);
        if let Some(b) = &self.field_breaker {
            match &field {
                Observation::Reached { .. } => b.record_success(),
                Observation::Failed { .. } => b.record_failure(net.now()),
            }
        }
        let lab = self.fetch_with_retries(net, self.lab, url);
        if let Some(b) = &self.lab_breaker {
            match &lab {
                Observation::Reached { .. } => b.record_success(),
                Observation::Failed { .. } => b.record_failure(net.now()),
            }
        }
        self.compare(&field, &lab)
    }

    /// Run quorum trials and aggregate: the most common verdict wins if
    /// it reaches the quorum, otherwise the URL is `Inconclusive`.
    fn test_url_quorum(&self, net: &Internet, url: &Url) -> Verdict {
        let tracer = net.tracer();
        let quorum = self.resilience.quorum;
        let mut verdicts: Vec<(Verdict, u32)> = Vec::new();
        for n in 0..quorum.trials {
            QualityCounters::bump(&self.quality.quorum_trials);
            let scope = if tracer.is_enabled() {
                tracer.open(
                    StepKind::Trial,
                    net.now().secs(),
                    &[("n", &(n + 1).to_string())],
                )
            } else {
                ScopeId::NONE
            };
            let v = self.test_url_trial(net, url);
            tracer.close(scope, net.now().secs(), &[("verdict", v.label())]);
            match verdicts.iter_mut().find(|(seen, _)| Self::agree(seen, &v)) {
                Some((_, count)) => *count += 1,
                None => verdicts.push((v, 1)),
            }
        }
        // Ties resolve to the earliest-seen verdict — trial order is
        // deterministic, so so is the aggregate.
        let (best, count) = verdicts
            .iter()
            .max_by_key(|(_, count)| *count)
            .expect("at least one trial");
        if tracer.recording() {
            tracer.point(
                StepKind::Quorum,
                net.now().secs(),
                &[
                    ("best", best.label()),
                    ("count", &count.to_string()),
                    ("trials", &quorum.trials.to_string()),
                    ("need", &quorum.quorum.to_string()),
                ],
            );
        }
        if *count >= quorum.quorum {
            best.clone()
        } else {
            Verdict::Inconclusive {
                reason: format!(
                    "no quorum: best {count}/{} trials agreed on {} (need {})",
                    quorum.trials,
                    best.label(),
                    quorum.quorum
                ),
            }
        }
    }

    /// Whether two trial verdicts corroborate each other for quorum
    /// purposes. Labels must match; blocks must also attribute the same
    /// product (a Netsweeper page and a SmartFilter page are different
    /// findings, not two votes for "blocked").
    fn agree(a: &Verdict, b: &Verdict) -> bool {
        match (a, b) {
            (Verdict::Blocked(x), Verdict::Blocked(y)) => x.product == y.product,
            _ => a.label() == b.label(),
        }
    }

    /// Compare a field observation against the lab control.
    pub fn compare(&self, field: &Observation, lab: &Observation) -> Verdict {
        // Lab failure first: no control, no conclusion.
        let Observation::Reached {
            trace: lab_trace, ..
        } = lab
        else {
            let Observation::Failed { error } = lab else {
                unreachable!()
            };
            return Verdict::Unavailable {
                lab_error: error.clone(),
            };
        };

        match field {
            Observation::Failed { error } => Verdict::Inaccessible {
                field_error: error.clone(),
            },
            Observation::Reached { trace, .. } => {
                // A block page in the field that is absent in the lab.
                match self.library.classify(&trace.text()) {
                    Some(block) if self.library.classify(&lab_trace.text()).is_none() => {
                        Verdict::Blocked(block)
                    }
                    _ => {
                        // No explicit denial: compare content. A strong
                        // divergence between the two copies is covert
                        // in-path tampering.
                        let field_body = trace
                            .final_response()
                            .map(|r| r.body_text())
                            .unwrap_or_default();
                        let lab_body = lab_trace
                            .final_response()
                            .map(|r| r.body_text())
                            .unwrap_or_default();
                        let similarity = body_similarity(&field_body, &lab_body);
                        if similarity < MODIFIED_THRESHOLD {
                            Verdict::Modified { similarity }
                        } else {
                            Verdict::Accessible
                        }
                    }
                }
            }
        }
    }

    /// Test a list of URLs in order.
    pub fn test_list(&self, net: &Internet, urls: &[Url]) -> Vec<UrlVerdict> {
        urls.iter().map(|u| self.test_url(net, u)).collect()
    }

    /// Repeat a list test `runs` times (Challenge 2: inconsistent
    /// blocking needs repetition). Returns one verdict vector per run.
    pub fn test_list_repeated(
        &self,
        net: &Internet,
        urls: &[Url],
        runs: usize,
    ) -> Vec<Vec<UrlVerdict>> {
        (0..runs).map(|_| self.test_list(net, urls)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_http::{Request, Status};
    use filterwatch_netsim::service::StaticSite;
    use filterwatch_netsim::{FlowCtx, Middlebox, NetworkSpec, Verdict as MbVerdict};
    use std::sync::Arc;

    /// A toy filter that redirects requests for hosts containing
    /// "blocked" to an in-ISP deny host.
    struct RedirectBlocker {
        deny_url: String,
    }

    impl Middlebox for RedirectBlocker {
        fn name(&self) -> &str {
            "redirect-blocker"
        }
        fn process_request(&self, req: &Request, _ctx: &FlowCtx) -> MbVerdict {
            if req.url.host().contains("blocked") {
                MbVerdict::respond(Response::redirect(&self.deny_url))
            } else {
                MbVerdict::Forward
            }
        }
    }

    fn world() -> (Internet, MeasurementClient) {
        let mut net = Internet::new(3);
        net.registry_mut().register_country("CA", "Canada", "ca");
        net.registry_mut().register_country("YE", "Yemen", "ye");
        let lab_as = net.registry_mut().register_as(239, "UTORONTO", "CA");
        let isp_as = net.registry_mut().register_as(12486, "YEMENNET", "YE");
        let lab_p = net.registry_mut().allocate_prefix(lab_as, 1).unwrap();
        let isp_p = net.registry_mut().allocate_prefix(isp_as, 1).unwrap();
        let lab = net.add_network(NetworkSpec::new("lab", lab_as, "CA").with_cidr(lab_p));
        let isp = net.add_network(NetworkSpec::new("isp", isp_as, "YE").with_cidr(isp_p));

        // Origin site (outside the ISP).
        let site_ip = net.alloc_ip(lab).unwrap();
        net.add_host(site_ip, lab, &["www.blocked-news.org"]);
        net.add_service(
            site_ip,
            80,
            Box::new(StaticSite::new("News", "<p>stories</p>")),
        );
        let ok_ip = net.alloc_ip(lab).unwrap();
        net.add_host(ok_ip, lab, &["www.fine.org"]);
        net.add_service(ok_ip, 80, Box::new(StaticSite::new("Fine", "<p>ok</p>")));

        // Deny host inside the ISP.
        let deny_ip = net.alloc_ip(isp).unwrap();
        net.add_host(deny_ip, isp, &["deny.isp.ye"]);
        net.add_service(
            deny_ip,
            8080,
            Box::new(StaticSite::new(
                "Web Page Blocked",
                "<p>netsweeper deny</p>",
            )),
        );
        net.attach_middlebox(
            isp,
            Arc::new(RedirectBlocker {
                deny_url: "http://deny.isp.ye:8080/webadmin/deny?dpid=36".into(),
            }),
        );

        let field = net.add_vantage("field", isp);
        let lab_vp = net.add_vantage("lab", lab);
        let client = MeasurementClient::new(field, lab_vp);
        (net, client)
    }

    #[test]
    fn blocked_url_follows_redirect_and_classifies() {
        let (net, client) = world();
        let v = client.test_url(&net, &Url::parse("http://www.blocked-news.org/").unwrap());
        assert!(v.verdict.is_blocked(), "{:?}", v.verdict);
        assert_eq!(v.verdict.blocked_by(), Some("netsweeper"));
    }

    #[test]
    fn accessible_url_matches_lab() {
        let (net, client) = world();
        let v = client.test_url(&net, &Url::parse("http://www.fine.org/").unwrap());
        assert!(v.verdict.is_accessible(), "{:?}", v.verdict);
    }

    #[test]
    fn unresolvable_url_is_unavailable() {
        let (net, client) = world();
        let v = client.test_url(&net, &Url::parse("http://no-such-host.example/").unwrap());
        // Lab can't reach it either → no conclusion.
        assert!(
            matches!(v.verdict, Verdict::Unavailable { .. }),
            "{:?}",
            v.verdict
        );
    }

    #[test]
    fn trace_records_hops() {
        let (net, client) = world();
        let obs = client.fetch(
            &net,
            client.field(),
            &Url::parse("http://www.blocked-news.org/").unwrap(),
        );
        let Observation::Reached { status, trace } = obs else {
            panic!("expected reach");
        };
        assert_eq!(status, Status::OK.code());
        assert_eq!(trace.hops.len(), 2);
        assert!(trace.text().contains("webadmin/deny"));
    }

    /// A middlebox that covertly rewrites pages from a target host
    /// instead of blocking them.
    struct Tamperer;

    impl Middlebox for Tamperer {
        fn name(&self) -> &str {
            "tamperer"
        }
        fn process_request(&self, _req: &Request, _ctx: &FlowCtx) -> MbVerdict {
            MbVerdict::Forward
        }
        fn process_response(&self, req: &Request, resp: Response, _ctx: &FlowCtx) -> Response {
            if req.url.host().contains("tampered") {
                Response::html(
                    "<html><body>replacement narrative entirely different words                      official statement supersedes prior material</body></html>",
                )
            } else {
                resp
            }
        }
    }

    #[test]
    fn covert_tampering_is_detected_as_modified() {
        let (mut net, _) = world();
        let isp = net.network_by_name("isp").unwrap().id;
        let lab = net.network_by_name("lab").unwrap().id;
        net.attach_middlebox(isp, Arc::new(Tamperer));
        let site_ip = net.alloc_ip(lab).unwrap();
        net.add_host(site_ip, lab, &["www.tampered-news.org"]);
        net.add_service(
            site_ip,
            80,
            Box::new(StaticSite::new(
                "News",
                "<p>independent reporting with many original words</p>",
            )),
        );
        let field = net.add_vantage("field2", isp);
        let lab_vp = net.add_vantage("lab2", lab);
        let client = MeasurementClient::new(field, lab_vp);
        let v = client.test_url(&net, &Url::parse("http://www.tampered-news.org/").unwrap());
        let Verdict::Modified { similarity } = v.verdict else {
            panic!("expected modified, got {:?}", v.verdict);
        };
        assert!(similarity < 0.5, "{similarity}");
        // The untouched site still reads accessible through the same path.
        let ok = client.test_url(&net, &Url::parse("http://www.fine.org/").unwrap());
        assert!(ok.verdict.is_accessible(), "{:?}", ok.verdict);
    }

    #[test]
    fn test_list_preserves_order() {
        let (net, client) = world();
        let urls = [
            Url::parse("http://www.fine.org/").unwrap(),
            Url::parse("http://www.blocked-news.org/").unwrap(),
        ];
        let verdicts = client.test_list(&net, &urls);
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[0].verdict.is_accessible());
        assert!(verdicts[1].verdict.is_blocked());
    }

    #[test]
    fn repeated_runs_return_each_run() {
        let (net, client) = world();
        let urls = [Url::parse("http://www.fine.org/").unwrap()];
        let runs = client.test_list_repeated(&net, &urls, 3);
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn default_client_is_passthrough_and_inert() {
        let (net, client) = world();
        let before = net.now();
        let v = client.test_url(&net, &Url::parse("http://www.fine.org/").unwrap());
        assert!(v.verdict.is_accessible());
        assert_eq!(net.now(), before, "no clock movement without resilience");
        let q = client.quality();
        assert_eq!(q.fetch_attempts, 0, "plain path bypasses the retry engine");
        assert_eq!(q.retries, 0);
        assert_eq!(q.verdicts, 1);
        assert_eq!(q.inconclusive, 0);
    }

    #[test]
    fn retries_ride_out_an_outage_window() {
        use filterwatch_netsim::{FaultProfile, SimTime};
        let (mut net, client) = world();
        let isp = net.network_by_name("isp").unwrap().id;
        net.set_network_faults(
            isp,
            FaultProfile::clean()
                .try_with_outage(SimTime::ZERO, SimTime::from_secs(20))
                .unwrap(),
        );
        let client = client.with_resilience(crate::resilience::ResilienceConfig::chaos());

        let obs = client.fetch_with_retries(
            &net,
            client.field(),
            &Url::parse("http://www.fine.org/").unwrap(),
        );
        assert!(obs.reached(), "retries should outlast the outage: {obs:?}");
        assert!(net.now() >= SimTime::from_secs(20), "backoff advanced time");
        let q = client.quality();
        assert!(q.retries >= 1, "{q:?}");
        assert_eq!(q.fetch_attempts, q.retries + 1);
    }

    #[test]
    fn breaker_skips_dead_vantage_and_yields_inconclusive() {
        let (mut net, client) = world();
        let isp = net.network_by_name("isp").unwrap().id;
        net.set_network_faults(isp, filterwatch_netsim::FaultProfile::lossy(1.0));
        net.set_flow_log(true);
        let client = client.with_resilience(crate::resilience::ResilienceConfig::chaos());

        // First URL: every trial fails end-to-end; the third consecutive
        // failure trips the field breaker. The verdict is an honest
        // Inaccessible (lab reached it, field never did).
        let v1 = client.test_url(&net, &Url::parse("http://www.fine.org/").unwrap());
        assert_eq!(v1.verdict.label(), "inaccessible", "{:?}", v1.verdict);

        // Second URL: the breaker is open, all trials are skipped, and
        // the verdict is Inconclusive — not a false Accessible.
        let v2 = client.test_url(&net, &Url::parse("http://www.blocked-news.org/").unwrap());
        assert!(v2.verdict.is_inconclusive(), "{:?}", v2.verdict);

        let q = client.quality();
        assert_eq!(q.breaker_trips, 1, "{q:?}");
        assert_eq!(q.breaker_skips, 3, "one per skipped trial: {q:?}");
        assert_eq!(q.inconclusive, 1);
        assert_eq!(q.verdicts, 2);

        let skips: Vec<_> = net
            .flow_log()
            .into_iter()
            .filter(|r| matches!(r.disposition, FlowDisposition::BreakerSkip(_)))
            .collect();
        assert_eq!(skips.len(), 3);
        assert!(skips
            .iter()
            .all(|r| r.url == "http://www.blocked-news.org/"));
    }

    /// A filter that cycles block / forward / drop per request, so three
    /// quorum trials each see a different verdict.
    struct CyclingFilter(std::sync::atomic::AtomicUsize);

    impl Middlebox for CyclingFilter {
        fn name(&self) -> &str {
            "cycler"
        }
        fn process_request(&self, req: &Request, _ctx: &FlowCtx) -> MbVerdict {
            if !req.url.host().contains("flappy") {
                return MbVerdict::Forward;
            }
            match self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % 3 {
                0 => MbVerdict::respond(Response::text(
                    filterwatch_http::Status::FORBIDDEN,
                    "netsweeper deny webadmin",
                )),
                1 => MbVerdict::Forward,
                _ => MbVerdict::Drop,
            }
        }
    }

    #[test]
    fn quorum_disagreement_is_inconclusive() {
        let (mut net, _) = world();
        let isp = net.network_by_name("isp").unwrap().id;
        let lab = net.network_by_name("lab").unwrap().id;
        net.attach_middlebox(isp, Arc::new(CyclingFilter(Default::default())));
        let site_ip = net.alloc_ip(lab).unwrap();
        net.add_host(site_ip, lab, &["www.flappy.org"]);
        net.add_service(site_ip, 80, Box::new(StaticSite::new("F", "<p>x</p>")));
        let field = net.add_vantage("field3", isp);
        let lab_vp = net.add_vantage("lab3", lab);
        // No retries (a Drop would otherwise be retried into the next
        // cycle phase); quorum of 3 with no two trials agreeing.
        let config = crate::resilience::ResilienceConfig {
            retry: crate::resilience::RetryPolicy::single(),
            breaker: None,
            quorum: crate::resilience::QuorumPolicy::majority(3),
        };
        let client = MeasurementClient::new(field, lab_vp).with_resilience(config);
        let v = client.test_url(&net, &Url::parse("http://www.flappy.org/").unwrap());
        let Verdict::Inconclusive { reason } = &v.verdict else {
            panic!("expected inconclusive, got {:?}", v.verdict);
        };
        assert!(reason.contains("no quorum"), "{reason}");
        let q = client.quality();
        assert_eq!(q.quorum_trials, 3);
        assert_eq!(q.inconclusive, 1);
    }
}
