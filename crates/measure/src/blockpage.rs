//! Vendor block-page signatures.
//!
//! §5: "Manual analysis identified regular expressions corresponding to
//! the vendors' block pages and automated analysis identified all URLs
//! which matched a given block page regular expression." The library
//! here is that regex set, expressed with `filterwatch_pattern`. It is
//! deliberately *independent* of the products crate — like the paper's
//! analysts, it matches what deployments actually emit, not what the
//! vendor source code says.
//!
//! The library is query-compiled: both signature tiers are
//! [`CompiledPatternSet`]s, so a classify call case-folds the trace
//! text **once** and answers every literal signature in a single
//! automaton pass (wildcard signatures ride the verified fallback
//! tier). Per-call latency can be recorded into a telemetry histogram
//! via [`BlockPageLibrary::with_telemetry`].

use filterwatch_pattern::{CompiledPatternSet, Pattern, PatternSet};
use filterwatch_telemetry::TelemetryHandle;

/// Histogram metric recording wall nanoseconds per classify call.
pub const CLASSIFY_LATENCY_METRIC: &str = "classify.wall_nanos";

/// Bucket bounds (ns) for [`CLASSIFY_LATENCY_METRIC`].
const CLASSIFY_LATENCY_BUCKETS: &[f64] = &[
    250.0,
    1_000.0,
    4_000.0,
    16_000.0,
    64_000.0,
    256_000.0,
    1_024_000.0,
];

/// A classified block observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMatch {
    /// The vendor the block page was attributed to, if identifiable
    /// (`None` = explicit block page with no recognizable vendor
    /// signature — e.g. a branding-stripped deployment).
    pub product: Option<String>,
    /// The signature that fired.
    pub evidence: String,
}

/// The vendor block-page signature library.
#[derive(Debug, Clone)]
pub struct BlockPageLibrary {
    vendors: CompiledPatternSet,
    generic: CompiledPatternSet,
    telemetry: TelemetryHandle,
}

impl Default for BlockPageLibrary {
    fn default() -> Self {
        BlockPageLibrary::standard()
    }
}

impl BlockPageLibrary {
    /// The standard library covering the four studied products plus a
    /// generic explicit-denial fallback.
    pub fn standard() -> Self {
        let mut vendors = PatternSet::new();
        // McAfee SmartFilter / Web Gateway.
        vendors.insert("smartfilter", Pattern::literal("mcafee web gateway"));
        vendors.insert("smartfilter", Pattern::literal("via-proxy"));
        // Blue Coat: the cfauth redirect or the WebFilter portal page.
        vendors.insert("bluecoat", Pattern::literal("www.cfauth.com"));
        vendors.insert("bluecoat", Pattern::literal("cfru="));
        vendors.insert("bluecoat", Pattern::literal("blue coat webfilter"));
        // Netsweeper: the deny URL and the deny page wording.
        vendors.insert("netsweeper", Pattern::literal("webadmin/deny"));
        vendors.insert(
            "netsweeper",
            Pattern::parse("web page blocked*netsweeper").expect("static"),
        );
        // Websense: the 15871 block-page URL or page branding.
        vendors.insert(
            "websense",
            Pattern::parse(":15871/*blockpage.cgi").expect("static"),
        );
        vendors.insert("websense", Pattern::literal("websense"));

        let mut generic = PatternSet::new();
        generic.insert("generic", Pattern::literal("has been blocked"));
        generic.insert(
            "generic",
            Pattern::parse("access denied|access to this site is blocked").expect("static"),
        );
        generic.insert(
            "generic",
            Pattern::literal("access restricted by network policy"),
        );

        BlockPageLibrary {
            vendors: CompiledPatternSet::compile(vendors),
            generic: CompiledPatternSet::compile(generic),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Builder-style: record a per-call latency histogram
    /// ([`CLASSIFY_LATENCY_METRIC`]) on `telemetry`.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        telemetry.register_histogram(CLASSIFY_LATENCY_METRIC, CLASSIFY_LATENCY_BUCKETS);
        self.telemetry = telemetry;
        self
    }

    /// Classify a fetch trace (concatenated URLs, banners and bodies of
    /// every hop). Vendor signatures win over the generic fallback.
    pub fn classify(&self, trace_text: &str) -> Option<BlockMatch> {
        self.telemetry
            .observe_timed(CLASSIFY_LATENCY_METRIC, "", || {
                self.classify_inner(trace_text)
            })
    }

    fn classify_inner(&self, trace_text: &str) -> Option<BlockMatch> {
        // One case-folding pass serves both tiers: every automaton and
        // fallback pattern below matches against the pre-lowered text.
        let lower = trace_text.to_ascii_lowercase();
        if let Some(&index) = self
            .vendors
            .matching_indices_prefolded(trace_text, &lower)
            .first()
        {
            let (name, pattern) = self.vendors.set().get(index).expect("index in range");
            return Some(BlockMatch {
                product: Some(name.to_string()),
                evidence: format!("vendor signature /{pattern}/"),
            });
        }
        if let Some(&index) = self
            .generic
            .matching_indices_prefolded(trace_text, &lower)
            .first()
        {
            let (_, pattern) = self.generic.set().get(index).expect("index in range");
            return Some(BlockMatch {
                product: None,
                evidence: format!("generic denial /{pattern}/"),
            });
        }
        None
    }

    /// Number of vendor signatures loaded.
    pub fn vendor_signature_count(&self) -> usize {
        self.vendors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_each_vendor() {
        let lib = BlockPageLibrary::standard();
        let cases = [
            ("redirected to http://www.cfauth.com/?cfru=Zm9v", "bluecoat"),
            (
                "http://gw:8080/webadmin/deny?dpid=36 <title>Web Page Blocked</title>",
                "netsweeper",
            ),
            (
                "http://gw:15871/cgi-bin/blockpage.cgi?ws-session=3 websense content gateway",
                "websense",
            ),
            (
                "<title>McAfee Web Gateway - Notification</title> URL Blocked",
                "smartfilter",
            ),
        ];
        for (text, expected) in cases {
            let m = lib
                .classify(text)
                .unwrap_or_else(|| panic!("no match for {expected}"));
            assert_eq!(m.product.as_deref(), Some(expected), "{text}");
        }
    }

    #[test]
    fn generic_denial_without_branding() {
        let lib = BlockPageLibrary::standard();
        let m = lib
            .classify("<h1>Access Denied</h1><p>the page has been blocked.</p>")
            .unwrap();
        assert_eq!(m.product, None);
    }

    #[test]
    fn ordinary_pages_do_not_match() {
        let lib = BlockPageLibrary::standard();
        assert!(lib
            .classify("<title>Free Web Proxy</title> surf anonymously")
            .is_none());
        assert!(lib.classify("<title>News of the day</title>").is_none());
    }

    #[test]
    fn vendor_beats_generic() {
        let lib = BlockPageLibrary::standard();
        let m = lib
            .classify("Access Denied ... Blue Coat WebFilter policy")
            .unwrap();
        assert_eq!(m.product.as_deref(), Some("bluecoat"));
    }

    #[test]
    fn library_size() {
        assert!(BlockPageLibrary::standard().vendor_signature_count() >= 8);
    }

    #[test]
    fn evidence_strings_are_stable() {
        let lib = BlockPageLibrary::standard();
        let m = lib.classify("Server: ProxySG cfru=x").unwrap();
        assert_eq!(m.evidence, "vendor signature /cfru=/");
        let g = lib.classify("access denied by policy").unwrap();
        assert_eq!(
            g.evidence,
            "generic denial /access denied|access to this site is blocked/"
        );
    }

    #[test]
    fn telemetry_records_classify_latency() {
        let telemetry = TelemetryHandle::enabled();
        let lib = BlockPageLibrary::standard().with_telemetry(telemetry.clone());
        lib.classify("Server: ProxySG");
        lib.classify("nothing to see");
        let snapshot = telemetry.snapshot();
        let histogram = snapshot
            .histogram_named(CLASSIFY_LATENCY_METRIC)
            .expect("classify latency histogram");
        assert_eq!(histogram.total, 2);
        assert_eq!(histogram.bounds, CLASSIFY_LATENCY_BUCKETS.to_vec());
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let lib = BlockPageLibrary::standard();
        lib.classify("Server: ProxySG");
        // No handle attached: nothing to snapshot, and no panic.
        assert!(TelemetryHandle::disabled().snapshot().is_empty());
    }
}
