//! Vendor block-page signatures.
//!
//! §5: "Manual analysis identified regular expressions corresponding to
//! the vendors' block pages and automated analysis identified all URLs
//! which matched a given block page regular expression." The library
//! here is that regex set, expressed with `filterwatch_pattern`. It is
//! deliberately *independent* of the products crate — like the paper's
//! analysts, it matches what deployments actually emit, not what the
//! vendor source code says.

use filterwatch_pattern::{Pattern, PatternSet};

/// A classified block observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMatch {
    /// The vendor the block page was attributed to, if identifiable
    /// (`None` = explicit block page with no recognizable vendor
    /// signature — e.g. a branding-stripped deployment).
    pub product: Option<String>,
    /// The signature that fired.
    pub evidence: String,
}

/// The vendor block-page signature library.
#[derive(Debug, Clone)]
pub struct BlockPageLibrary {
    vendors: PatternSet,
    generic: Vec<Pattern>,
}

impl Default for BlockPageLibrary {
    fn default() -> Self {
        BlockPageLibrary::standard()
    }
}

impl BlockPageLibrary {
    /// The standard library covering the four studied products plus a
    /// generic explicit-denial fallback.
    pub fn standard() -> Self {
        let mut vendors = PatternSet::new();
        // McAfee SmartFilter / Web Gateway.
        vendors.insert("smartfilter", Pattern::literal("mcafee web gateway"));
        vendors.insert("smartfilter", Pattern::literal("via-proxy"));
        // Blue Coat: the cfauth redirect or the WebFilter portal page.
        vendors.insert("bluecoat", Pattern::literal("www.cfauth.com"));
        vendors.insert("bluecoat", Pattern::literal("cfru="));
        vendors.insert("bluecoat", Pattern::literal("blue coat webfilter"));
        // Netsweeper: the deny URL and the deny page wording.
        vendors.insert("netsweeper", Pattern::literal("webadmin/deny"));
        vendors.insert(
            "netsweeper",
            Pattern::parse("web page blocked*netsweeper").expect("static"),
        );
        // Websense: the 15871 block-page URL or page branding.
        vendors.insert(
            "websense",
            Pattern::parse(":15871/*blockpage.cgi").expect("static"),
        );
        vendors.insert("websense", Pattern::literal("websense"));

        let generic = vec![
            Pattern::literal("has been blocked"),
            Pattern::parse("access denied|access to this site is blocked").expect("static"),
            Pattern::literal("access restricted by network policy"),
        ];
        BlockPageLibrary { vendors, generic }
    }

    /// Classify a fetch trace (concatenated URLs, banners and bodies of
    /// every hop). Vendor signatures win over the generic fallback.
    pub fn classify(&self, trace_text: &str) -> Option<BlockMatch> {
        let lower = trace_text.to_ascii_lowercase();
        let hits = self.vendors.matches(&lower);
        if let Some(hit) = hits.first() {
            return Some(BlockMatch {
                product: Some(hit.name.to_string()),
                evidence: format!("vendor signature /{}/", hit.pattern),
            });
        }
        for p in &self.generic {
            if p.is_match(&lower) {
                return Some(BlockMatch {
                    product: None,
                    evidence: format!("generic denial /{p}/"),
                });
            }
        }
        None
    }

    /// Number of vendor signatures loaded.
    pub fn vendor_signature_count(&self) -> usize {
        self.vendors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_each_vendor() {
        let lib = BlockPageLibrary::standard();
        let cases = [
            ("redirected to http://www.cfauth.com/?cfru=Zm9v", "bluecoat"),
            (
                "http://gw:8080/webadmin/deny?dpid=36 <title>Web Page Blocked</title>",
                "netsweeper",
            ),
            (
                "http://gw:15871/cgi-bin/blockpage.cgi?ws-session=3 websense content gateway",
                "websense",
            ),
            (
                "<title>McAfee Web Gateway - Notification</title> URL Blocked",
                "smartfilter",
            ),
        ];
        for (text, expected) in cases {
            let m = lib
                .classify(text)
                .unwrap_or_else(|| panic!("no match for {expected}"));
            assert_eq!(m.product.as_deref(), Some(expected), "{text}");
        }
    }

    #[test]
    fn generic_denial_without_branding() {
        let lib = BlockPageLibrary::standard();
        let m = lib
            .classify("<h1>Access Denied</h1><p>the page has been blocked.</p>")
            .unwrap();
        assert_eq!(m.product, None);
    }

    #[test]
    fn ordinary_pages_do_not_match() {
        let lib = BlockPageLibrary::standard();
        assert!(lib
            .classify("<title>Free Web Proxy</title> surf anonymously")
            .is_none());
        assert!(lib.classify("<title>News of the day</title>").is_none());
    }

    #[test]
    fn vendor_beats_generic() {
        let lib = BlockPageLibrary::standard();
        let m = lib
            .classify("Access Denied ... Blue Coat WebFilter policy")
            .unwrap();
        assert_eq!(m.product.as_deref(), Some("bluecoat"));
    }

    #[test]
    fn library_size() {
        assert!(BlockPageLibrary::standard().vendor_signature_count() >= 8);
    }
}
