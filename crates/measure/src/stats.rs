//! Aggregation over measurement runs.
//!
//! Campaign-scale measurement produces thousands of per-URL verdicts;
//! analysts work from summaries and exports. [`RunSummary`] rolls a
//! verdict list up into the four outcome classes plus per-product
//! attribution counts; [`to_csv`] exports verdicts in a spreadsheet-
//! friendly form (the paper's released data is a table of exactly this
//! shape).

use std::collections::BTreeMap;

use crate::verdict::{UrlVerdict, Verdict};

/// Aggregate view of one measurement run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// URLs tested.
    pub tested: usize,
    /// Cleanly accessible.
    pub accessible: usize,
    /// Explicitly blocked.
    pub blocked: usize,
    /// Covertly modified in the field (content tampering).
    pub modified: usize,
    /// Field-side transport failures (ambiguous).
    pub inaccessible: usize,
    /// Lab-side failures (no conclusion).
    pub unavailable: usize,
    /// Verdicts the machinery declined to render (quorum disagreement,
    /// breaker skips).
    pub inconclusive: usize,
    /// Blocked counts per attributed product (`"(unattributed)"` for
    /// generic block pages).
    pub by_product: BTreeMap<String, usize>,
}

impl RunSummary {
    /// Summarize a verdict list.
    pub fn from_verdicts(verdicts: &[UrlVerdict]) -> Self {
        let mut s = RunSummary {
            tested: verdicts.len(),
            ..RunSummary::default()
        };
        for v in verdicts {
            match &v.verdict {
                Verdict::Accessible => s.accessible += 1,
                Verdict::Blocked(m) => {
                    s.blocked += 1;
                    let key = m
                        .product
                        .clone()
                        .unwrap_or_else(|| "(unattributed)".to_string());
                    *s.by_product.entry(key).or_default() += 1;
                }
                Verdict::Modified { .. } => s.modified += 1,
                Verdict::Inaccessible { .. } => s.inaccessible += 1,
                Verdict::Unavailable { .. } => s.unavailable += 1,
                Verdict::Inconclusive { .. } => s.inconclusive += 1,
            }
        }
        s
    }

    /// Fraction of tested URLs blocked (0 when nothing was tested).
    pub fn block_rate(&self) -> f64 {
        if self.tested == 0 {
            0.0
        } else {
            self.blocked as f64 / self.tested as f64
        }
    }

    /// One-line rendering for logs.
    pub fn to_line(&self) -> String {
        format!(
            "tested={} accessible={} blocked={} modified={} inaccessible={} unavailable={} inconclusive={} products={:?}",
            self.tested, self.accessible, self.blocked, self.modified, self.inaccessible, self.unavailable, self.inconclusive, self.by_product
        )
    }
}

/// Export verdicts as CSV (`url,verdict,product,detail`). Fields are
/// quoted when they contain commas or quotes.
pub fn to_csv(verdicts: &[UrlVerdict]) -> String {
    fn field(text: &str) -> String {
        if text.contains(',') || text.contains('"') || text.contains('\n') {
            format!("\"{}\"", text.replace('"', "\"\""))
        } else {
            text.to_string()
        }
    }
    let mut out = String::from("url,verdict,product,detail\n");
    for v in verdicts {
        let (label, product, detail) = match &v.verdict {
            Verdict::Accessible => ("accessible", String::new(), String::new()),
            Verdict::Blocked(m) => (
                "blocked",
                m.product.clone().unwrap_or_default(),
                m.evidence.clone(),
            ),
            Verdict::Modified { similarity } => (
                "modified",
                String::new(),
                format!("similarity={similarity:.2}"),
            ),
            Verdict::Inaccessible { field_error } => {
                ("inaccessible", String::new(), field_error.clone())
            }
            Verdict::Unavailable { lab_error } => ("unavailable", String::new(), lab_error.clone()),
            Verdict::Inconclusive { reason } => ("inconclusive", String::new(), reason.clone()),
        };
        out.push_str(&format!(
            "{},{},{},{}\n",
            field(&v.url),
            label,
            field(&product),
            field(&detail)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockpage::BlockMatch;

    fn verdicts() -> Vec<UrlVerdict> {
        vec![
            UrlVerdict {
                url: "http://a.example/".into(),
                verdict: Verdict::Accessible,
            },
            UrlVerdict {
                url: "http://b.example/".into(),
                verdict: Verdict::Blocked(BlockMatch {
                    product: Some("netsweeper".into()),
                    evidence: "sig, with comma".into(),
                }),
            },
            UrlVerdict {
                url: "http://c.example/".into(),
                verdict: Verdict::Blocked(BlockMatch {
                    product: None,
                    evidence: "generic".into(),
                }),
            },
            UrlVerdict {
                url: "http://d.example/".into(),
                verdict: Verdict::Inaccessible {
                    field_error: "timeout".into(),
                },
            },
            UrlVerdict {
                url: "http://e.example/".into(),
                verdict: Verdict::Unavailable {
                    lab_error: "dns-failure".into(),
                },
            },
            UrlVerdict {
                url: "http://f.example/".into(),
                verdict: Verdict::Inconclusive {
                    reason: "no quorum (1/3 best)".into(),
                },
            },
        ]
    }

    #[test]
    fn summary_counts() {
        let s = RunSummary::from_verdicts(&verdicts());
        assert_eq!(s.tested, 6);
        assert_eq!(s.accessible, 1);
        assert_eq!(s.blocked, 2);
        assert_eq!(s.inaccessible, 1);
        assert_eq!(s.unavailable, 1);
        assert_eq!(s.inconclusive, 1);
        assert_eq!(s.by_product["netsweeper"], 1);
        assert_eq!(s.by_product["(unattributed)"], 1);
        assert!((s.block_rate() - 2.0 / 6.0).abs() < 1e-9);
        assert!(s.to_line().contains("blocked=2"));
        assert!(s.to_line().contains("inconclusive=1"));
    }

    #[test]
    fn empty_summary() {
        let s = RunSummary::from_verdicts(&[]);
        assert_eq!(s.block_rate(), 0.0);
        assert_eq!(s.tested, 0);
    }

    #[test]
    fn csv_escapes_and_structures() {
        let csv = to_csv(&verdicts());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 7);
        assert_eq!(lines[0], "url,verdict,product,detail");
        assert!(lines[2].contains("netsweeper"));
        assert!(lines[2].contains("\"sig, with comma\""));
        assert!(lines[4].contains("inaccessible"));
        assert!(lines[6].contains("inconclusive"));
        assert!(lines[6].contains("no quorum"));
        // Every row has exactly four columns after unquoting logic:
        // quick check via the simple rows.
        assert_eq!(lines[1].split(',').count(), 4);
    }
}
