//! Retry, circuit-breaking and quorum policies for flaky paths.
//!
//! §4.4 of the paper is blunt about measurement reality: Yemen's
//! Netsweeper deployment filtered intermittently, and single-shot fetches
//! through it would have mislabeled blocked URLs as reachable. This
//! module gives the measurement client three layers of defence:
//!
//! * [`RetryPolicy`] — bounded re-fetching with exponential backoff and
//!   *deterministic* jitter (a pure hash of seed, vantage, URL and
//!   attempt number, so chaos campaigns replay byte-identically). Each
//!   backoff advances the simulation's virtual clock, which is exactly
//!   what lets retries ride out deterministic outage windows.
//! * [`CircuitBreaker`] — a per-vantage closed/open/half-open state
//!   machine on the virtual clock. A vantage whose fetches keep failing
//!   end-to-end stops consuming budget; skipped fetches surface as
//!   `Inconclusive` verdicts and `breaker-skip` flow-log records instead
//!   of false "reachable" results.
//! * [`QuorumPolicy`] — each URL verdict becomes N independent trials
//!   with a quorum rule; disagreement yields `Inconclusive` rather than
//!   silently trusting one noisy sample.
//!
//! All three default to **off** ([`ResilienceConfig::default`] is a
//! passthrough), so existing pinned-seed experiments are untouched;
//! chaos campaigns opt in via [`ResilienceConfig::chaos`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use filterwatch_netsim::rng::mix;
use filterwatch_netsim::SimTime;

/// Whether a failed fetch is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Transient transport faults: a later attempt may succeed.
    Retryable,
    /// Structural failures (nothing listens there): retrying is wasted
    /// budget.
    Fatal,
}

/// Bounded retries with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per fetch, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff_secs * 2^(n-1)`, capped.
    pub base_backoff_secs: u64,
    /// Upper bound on a single backoff (before jitter).
    pub backoff_cap_secs: u64,
    /// Jitter as a fraction of the backoff (`0.0` = none); the jitter
    /// sample is a pure function of `(seed, label, attempt)`.
    pub jitter_frac: f64,
    /// Optional global cap on retries across a client's lifetime (a
    /// retry *budget*); `None` = unlimited.
    pub budget: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::single()
    }
}

impl RetryPolicy {
    /// No retries: one attempt, no clock movement.
    pub fn single() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_secs: 0,
            backoff_cap_secs: 0,
            jitter_frac: 0.0,
            budget: None,
        }
    }

    /// The standard chaos-campaign policy: up to 6 attempts, 2 s base
    /// backoff doubling to a 60 s cap, half-backoff jitter. Cumulative
    /// worst-case wait (~60 s+) comfortably outlasts the short outage
    /// windows chaos profiles inject.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_secs: 2,
            backoff_cap_secs: 60,
            jitter_frac: 0.5,
            budget: None,
        }
    }

    /// Classify a transport failure label (as produced by
    /// `FetchOutcome::label`) for retry purposes. Timeouts, resets,
    /// truncations and DNS failures are transient; `connect-failed`
    /// means no service listens at the destination, which retrying
    /// cannot fix.
    pub fn classify(error: &str) -> FaultClass {
        match error {
            "timeout" | "reset" | "truncated" | "dns-failure" => FaultClass::Retryable,
            _ => FaultClass::Fatal,
        }
    }

    /// The wait before retry number `attempt` (1-based: the wait after
    /// the first failed attempt is `attempt = 1`). Deterministic: the
    /// jitter is a hash of `(seed, label, attempt)`, not an RNG draw.
    pub fn backoff_secs(&self, attempt: u32, seed: u64, label: &str) -> u64 {
        let doublings = attempt.saturating_sub(1).min(32);
        let exp = self
            .base_backoff_secs
            .saturating_mul(1u64 << doublings)
            .min(self.backoff_cap_secs);
        if self.jitter_frac <= 0.0 || exp == 0 {
            return exp;
        }
        let h = mix(seed, &format!("retry/{label}/{attempt}"));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        exp + (exp as f64 * self.jitter_frac * unit).round() as u64
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive end-to-end fetch failures (after retries) that trip
    /// the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open (virtual seconds) before allowing
    /// a half-open trial fetch.
    pub cooldown_secs: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_secs: 300,
        }
    }
}

/// Observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: fetches flow normally.
    Closed,
    /// Tripped: fetches are skipped until the cooldown passes.
    Open,
    /// Cooldown elapsed: exactly one trial fetch probes the path.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    open_until: SimTime,
}

/// A per-vantage circuit breaker on the virtual clock.
///
/// Closed → (threshold consecutive failures) → Open → (cooldown) →
/// HalfOpen → success closes it / failure re-opens it.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: SimTime::ZERO,
            }),
            trips: AtomicU64::new(0),
        }
    }

    /// Whether a fetch may proceed at virtual time `now`. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the caller as the trial fetch.
    pub fn allows(&self, now: SimTime) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open if now >= inner.open_until => {
                inner.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Record an end-to-end fetch success.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
    }

    /// Record an end-to-end fetch failure (after retries were exhausted)
    /// at virtual time `now`.
    pub fn record_failure(&self, now: SimTime) {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::HalfOpen => self.trip(&mut inner, now),
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    self.trip(&mut inner, now);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&self, inner: &mut BreakerInner, now: SimTime) {
        inner.state = BreakerState::Open;
        inner.open_until = now.plus_secs(self.config.cooldown_secs);
        inner.consecutive_failures = 0;
        self.trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Current state (without side effects).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }
}

/// Quorum rule for repeated URL trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumPolicy {
    /// Independent field/lab trials per URL.
    pub trials: u32,
    /// Minimum trials that must agree for a verdict; fewer yields
    /// `Inconclusive`.
    pub quorum: u32,
}

impl Default for QuorumPolicy {
    fn default() -> Self {
        QuorumPolicy {
            trials: 1,
            quorum: 1,
        }
    }
}

impl QuorumPolicy {
    /// A simple-majority rule over `trials` trials.
    pub fn majority(trials: u32) -> Self {
        QuorumPolicy {
            trials: trials.max(1),
            quorum: trials.max(1) / 2 + 1,
        }
    }

    /// A validated policy: at least one trial, and the quorum must be
    /// satisfiable.
    pub fn try_new(trials: u32, quorum: u32) -> Result<Self, String> {
        if trials == 0 {
            return Err("trials must be at least 1".into());
        }
        if quorum == 0 || quorum > trials {
            return Err(format!(
                "quorum {quorum} unsatisfiable with {trials} trials"
            ));
        }
        Ok(QuorumPolicy { trials, quorum })
    }
}

/// The complete resilience configuration for a measurement client.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Per-fetch retry policy.
    pub retry: RetryPolicy,
    /// Per-vantage circuit breaker (none = never skip).
    pub breaker: Option<BreakerConfig>,
    /// Per-URL quorum rule.
    pub quorum: QuorumPolicy,
}

impl ResilienceConfig {
    /// The standard chaos-campaign configuration: retries with backoff,
    /// a default breaker, and 3-trial majority quorum.
    pub fn chaos() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::standard(),
            breaker: Some(BreakerConfig::default()),
            quorum: QuorumPolicy::majority(3),
        }
    }

    /// Whether this configuration changes nothing relative to a plain
    /// single-shot client (the default).
    pub fn is_passthrough(&self) -> bool {
        self.retry.max_attempts <= 1 && self.breaker.is_none() && self.quorum.trials <= 1
    }
}

/// Aggregate measurement-quality counters for one client.
///
/// These feed campaign reports' "measurement quality" section: the noise
/// a chaos run absorbed is visible here, and *only* here — verdict
/// tables stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeasurementQuality {
    /// Individual fetch attempts issued (including retries).
    pub fetch_attempts: u64,
    /// Attempts that were retries of a failed fetch.
    pub retries: u64,
    /// Fetches skipped because a breaker was open.
    pub breaker_skips: u64,
    /// Times any breaker tripped open.
    pub breaker_trips: u64,
    /// Quorum trials run.
    pub quorum_trials: u64,
    /// URL verdicts that came back `Inconclusive`.
    pub inconclusive: u64,
    /// URL verdicts rendered in total.
    pub verdicts: u64,
}

impl MeasurementQuality {
    /// Merge another quality snapshot into this one.
    pub fn absorb(&mut self, other: &MeasurementQuality) {
        self.fetch_attempts += other.fetch_attempts;
        self.retries += other.retries;
        self.breaker_skips += other.breaker_skips;
        self.breaker_trips += other.breaker_trips;
        self.quorum_trials += other.quorum_trials;
        self.inconclusive += other.inconclusive;
        self.verdicts += other.verdicts;
    }

    /// Fraction of verdicts that were inconclusive (0 when none were
    /// rendered).
    pub fn inconclusive_rate(&self) -> f64 {
        if self.verdicts == 0 {
            0.0
        } else {
            self.inconclusive as f64 / self.verdicts as f64
        }
    }

    /// One-line rendering for logs and reports.
    pub fn to_line(&self) -> String {
        format!(
            "attempts={} retries={} breaker_trips={} breaker_skips={} quorum_trials={} inconclusive={}/{} ({:.1}%)",
            self.fetch_attempts,
            self.retries,
            self.breaker_trips,
            self.breaker_skips,
            self.quorum_trials,
            self.inconclusive,
            self.verdicts,
            self.inconclusive_rate() * 100.0,
        )
    }

    /// Invert [`MeasurementQuality::to_line`]. The trailing percentage
    /// is derived from the counters, so it is validated for shape but
    /// recomputed rather than trusted — campaign checkpoints embed
    /// these lines and must parse back to the exact counters.
    pub fn parse_line(line: &str) -> Result<MeasurementQuality, String> {
        let mut q = MeasurementQuality::default();
        let mut seen = 0u32;
        for field in line.split_ascii_whitespace() {
            if field.starts_with('(') {
                if !field.ends_with("%)") {
                    return Err(format!("bad rate field {field:?} in {line:?}"));
                }
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("bad field {field:?} in {line:?}"))?;
            let parse = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|e| format!("bad {key} in {line:?}: {e}"))
            };
            match key {
                "attempts" => q.fetch_attempts = parse(value)?,
                "retries" => q.retries = parse(value)?,
                "breaker_trips" => q.breaker_trips = parse(value)?,
                "breaker_skips" => q.breaker_skips = parse(value)?,
                "quorum_trials" => q.quorum_trials = parse(value)?,
                "inconclusive" => {
                    let (inc, total) = value
                        .split_once('/')
                        .ok_or_else(|| format!("bad inconclusive field in {line:?}"))?;
                    q.inconclusive = parse(inc)?;
                    q.verdicts = parse(total)?;
                }
                other => return Err(format!("unknown quality field {other:?} in {line:?}")),
            }
            seen += 1;
        }
        if seen != 6 {
            return Err(format!("expected 6 quality fields, got {seen} in {line:?}"));
        }
        Ok(q)
    }
}

/// Interior-mutable quality counters (the client updates them through
/// `&self`).
#[derive(Debug, Default)]
pub(crate) struct QualityCounters {
    pub(crate) fetch_attempts: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) breaker_skips: AtomicU64,
    pub(crate) quorum_trials: AtomicU64,
    pub(crate) inconclusive: AtomicU64,
    pub(crate) verdicts: AtomicU64,
}

impl QualityCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot, folding in breaker trip counts.
    pub(crate) fn snapshot(&self, breaker_trips: u64) -> MeasurementQuality {
        MeasurementQuality {
            fetch_attempts: self.fetch_attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            breaker_trips,
            quorum_trials: self.quorum_trials.load(Ordering::Relaxed),
            inconclusive: self.inconclusive.load(Ordering::Relaxed),
            verdicts: self.verdicts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(RetryPolicy::classify("timeout"), FaultClass::Retryable);
        assert_eq!(RetryPolicy::classify("reset"), FaultClass::Retryable);
        assert_eq!(RetryPolicy::classify("truncated"), FaultClass::Retryable);
        assert_eq!(RetryPolicy::classify("dns-failure"), FaultClass::Retryable);
        assert_eq!(RetryPolicy::classify("connect-failed"), FaultClass::Fatal);
        assert_eq!(RetryPolicy::classify("weird"), FaultClass::Fatal);
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff_secs: 2,
            backoff_cap_secs: 16,
            jitter_frac: 0.0,
            budget: None,
        };
        assert_eq!(p.backoff_secs(1, 5, "x"), 2);
        assert_eq!(p.backoff_secs(2, 5, "x"), 4);
        assert_eq!(p.backoff_secs(3, 5, "x"), 8);
        assert_eq!(p.backoff_secs(4, 5, "x"), 16);
        assert_eq!(p.backoff_secs(5, 5, "x"), 16, "capped");

        let jittery = RetryPolicy {
            jitter_frac: 0.5,
            ..p.clone()
        };
        let a = jittery.backoff_secs(2, 5, "vantage/url");
        let b = jittery.backoff_secs(2, 5, "vantage/url");
        assert_eq!(a, b, "jitter is a pure function");
        assert!((4..=6).contains(&a), "{a}");
        // Different labels / attempts spread.
        let c = jittery.backoff_secs(2, 5, "other/url");
        let d = jittery.backoff_secs(3, 5, "vantage/url");
        assert!((4..=6).contains(&c));
        assert!((8..=12).contains(&d));
    }

    #[test]
    fn single_policy_is_inert() {
        let p = RetryPolicy::single();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_secs(1, 0, "x"), 0);
        assert!(ResilienceConfig::default().is_passthrough());
        assert!(!ResilienceConfig::chaos().is_passthrough());
    }

    #[test]
    fn breaker_state_machine() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_secs: 100,
        });
        let t0 = SimTime::ZERO;
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(t0));
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allows(SimTime::from_secs(99)));
        // Cooldown elapsed → half-open trial allowed.
        assert!(b.allows(SimTime::from_secs(100)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Trial fails → re-open immediately.
        b.record_failure(SimTime::from_secs(100));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.allows(SimTime::from_secs(150)));
        // Second trial succeeds → closed, failure count reset.
        assert!(b.allows(SimTime::from_secs(200)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(SimTime::from_secs(201));
        assert_eq!(b.state(), BreakerState::Closed, "count was reset");
    }

    #[test]
    fn quorum_policies_validate() {
        assert_eq!(
            QuorumPolicy::majority(3),
            QuorumPolicy {
                trials: 3,
                quorum: 2
            }
        );
        assert_eq!(
            QuorumPolicy::majority(1),
            QuorumPolicy {
                trials: 1,
                quorum: 1
            }
        );
        assert!(QuorumPolicy::try_new(3, 2).is_ok());
        assert!(QuorumPolicy::try_new(0, 1).is_err());
        assert!(QuorumPolicy::try_new(3, 4).is_err());
        assert!(QuorumPolicy::try_new(3, 0).is_err());
    }

    #[test]
    fn quality_absorb_and_rate() {
        let mut a = MeasurementQuality {
            fetch_attempts: 10,
            retries: 2,
            inconclusive: 1,
            verdicts: 4,
            ..MeasurementQuality::default()
        };
        let b = MeasurementQuality {
            fetch_attempts: 5,
            verdicts: 4,
            ..MeasurementQuality::default()
        };
        a.absorb(&b);
        assert_eq!(a.fetch_attempts, 15);
        assert_eq!(a.verdicts, 8);
        assert!((a.inconclusive_rate() - 0.125).abs() < 1e-9);
        assert!(a.to_line().contains("retries=2"));
        assert_eq!(MeasurementQuality::default().inconclusive_rate(), 0.0);
    }

    #[test]
    fn quality_line_round_trips() {
        let q = MeasurementQuality {
            fetch_attempts: 15,
            retries: 2,
            breaker_trips: 1,
            breaker_skips: 3,
            quorum_trials: 9,
            inconclusive: 1,
            verdicts: 8,
        };
        assert_eq!(MeasurementQuality::parse_line(&q.to_line()), Ok(q));
        let zero = MeasurementQuality::default();
        assert_eq!(MeasurementQuality::parse_line(&zero.to_line()), Ok(zero));

        assert!(MeasurementQuality::parse_line("").is_err());
        assert!(MeasurementQuality::parse_line("attempts=1").is_err());
        assert!(MeasurementQuality::parse_line(
            "attempts=x retries=0 breaker_trips=0 breaker_skips=0 quorum_trials=0 inconclusive=0/0 (0.0%)"
        )
        .is_err());
        assert!(MeasurementQuality::parse_line(
            "attempts=1 retries=0 breaker_trips=0 breaker_skips=0 quorum_trials=0 inconclusive=00 (0.0%)"
        )
        .is_err());
        assert!(MeasurementQuality::parse_line(
            "attempts=1 retries=0 breaker_trips=0 breaker_skips=0 quorum_trials=0 inconclusive=0/0 (0.0"
        )
        .is_err());
    }
}
