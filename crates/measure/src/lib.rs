//! The in-network measurement client (§4.1).
//!
//! "Tests of Web page accessibility are performed using a measurement
//! client that accesses a specified list of URLs in the 'field' i.e.,
//! the location where censorship is suspected. This client software also
//! triggers the same set of URLs to be accessed from a server in our lab
//! at the University of Toronto ... The results of the Web page accesses
//! in the field and lab are compared to determine if the page was
//! blocked in the field location."
//!
//! The client follows redirects (vendor block pages are often served via
//! a redirect to a deny host) and classifies final responses against the
//! [`blockpage`] signature library — the "regular expressions
//! corresponding to the vendors' block pages" of §5. The per-URL verdict
//! distinguishes explicit blocking from ambiguous failures (timeouts,
//! resets), which the studied products avoid (§4.1) but the simulator
//! can still produce under fault injection. For measurements through
//! genuinely flaky paths (§4.4), the [`resilience`] module layers
//! retries with deterministic backoff, per-vantage circuit breakers and
//! quorum verdicts on top of the same client.

pub mod blockpage;
pub mod client;
pub mod resilience;
pub mod similarity;
pub mod stats;
pub mod verdict;

pub use blockpage::{BlockMatch, BlockPageLibrary};
pub use client::{FetchTrace, MeasurementClient, Observation};
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultClass, MeasurementQuality, QuorumPolicy,
    ResilienceConfig, RetryPolicy,
};
pub use similarity::body_similarity;
pub use stats::{to_csv, RunSummary};
pub use verdict::{UrlVerdict, Verdict};
