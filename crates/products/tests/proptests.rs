//! Property-based tests for the vendor-cloud invariants.

use filterwatch_http::Url;
use filterwatch_netsim::SimTime;
use filterwatch_products::{ProductKind, SubmitterProfile, VendorCloud};
use filterwatch_urllists::Category;
use proptest::prelude::*;

fn any_product() -> impl Strategy<Value = ProductKind> {
    prop_oneof![
        Just(ProductKind::BlueCoat),
        Just(ProductKind::SmartFilter),
        Just(ProductKind::Netsweeper),
        Just(ProductKind::Websense),
    ]
}

fn any_category() -> impl Strategy<Value = Category> {
    (0usize..40).prop_map(|i| Category::ALL[i])
}

proptest! {
    /// Monotonicity: once a key is visible at time T it stays visible at
    /// every later time.
    #[test]
    fn visibility_is_monotonic(product in any_product(), seed in any::<u64>(),
                               cat in any_category(), day in 0u64..30) {
        let cloud = VendorCloud::new(product, seed);
        cloud.register_site_profile("probe.info", cat);
        let url = Url::parse("http://probe.info/").unwrap();
        let receipt = cloud.submit(&url, SubmitterProfile::COVERT, SimTime::from_days(day));
        if let Some(at) = receipt.visible_after {
            prop_assert!(receipt.accepted);
            prop_assert!(cloud.lookup(&url, SimTime::from_secs(at.secs() - 1)).is_empty());
            for extra in [0u64, 1, 10, 100] {
                prop_assert!(!cloud.lookup(&url, at.plus_days(extra)).is_empty());
            }
        }
    }

    /// Review delays always land in the vendor's advertised window.
    #[test]
    fn review_delay_in_window(product in any_product(), seed in any::<u64>(), cat in any_category()) {
        let cloud = VendorCloud::new(product, seed);
        cloud.register_site_profile("window.info", cat);
        let now = SimTime::from_days(3);
        let receipt = cloud.submit(&Url::parse("http://window.info/").unwrap(), SubmitterProfile::COVERT, now);
        if let Some(at) = receipt.visible_after {
            let delay = at.days() - now.days();
            prop_assert!((2..=5).contains(&delay), "delay {delay} for {product:?}");
        }
    }

    /// Submissions are idempotent in outcome: the same domain submitted
    /// twice yields the same acceptance decision and category.
    #[test]
    fn submission_outcome_is_stable(product in any_product(), seed in any::<u64>(), cat in any_category()) {
        let cloud = VendorCloud::new(product, seed);
        cloud.register_site_profile("stable.info", cat);
        let url = Url::parse("http://stable.info/").unwrap();
        let a = cloud.submit(&url, SubmitterProfile::COVERT, SimTime::ZERO);
        let b = cloud.submit(&url, SubmitterProfile::COVERT, SimTime::ZERO);
        prop_assert_eq!(a.accepted, b.accepted);
        prop_assert_eq!(a.category, b.category);
    }

    /// Unknown domains are always rejected, never categorized.
    #[test]
    fn unknown_domains_rejected(product in any_product(), seed in any::<u64>(),
                                stem in "[a-z]{3,12}") {
        let cloud = VendorCloud::new(product, seed);
        let url = Url::parse(&format!("http://{stem}.info/")).unwrap();
        let receipt = cloud.submit(&url, SubmitterProfile::COVERT, SimTime::ZERO);
        prop_assert!(!receipt.accepted);
        prop_assert!(cloud.lookup(&url, SimTime::from_days(365)).is_empty());
    }

    /// The screening policy is exactly `is_flaggable`: covert always
    /// passes, any leaky profile always fails.
    #[test]
    fn screening_matches_flaggability(product in any_product(), seed in any::<u64>(),
                                      via_proxy in any::<bool>(), webmail in any::<bool>(),
                                      hosting in any::<bool>()) {
        let cloud = VendorCloud::new(product, seed);
        cloud.set_reject_flaggable(true);
        // Rule out ordinary review declines (Netsweeper's test-a-site is
        // imperfect): this property is about the screening gate only.
        cloud.set_acceptance_rate(1.0);
        cloud.register_site_profile("screen.info", Category::Pornography);
        let submitter = SubmitterProfile {
            via_proxy,
            webmail_address: webmail,
            popular_hosting: hosting,
        };
        let receipt = cloud.submit(&Url::parse("http://screen.info/").unwrap(), submitter, SimTime::ZERO);
        if submitter.is_flaggable() {
            prop_assert!(!receipt.accepted);
            prop_assert!(receipt.reason.contains("flagged"), "{}", receipt.reason);
        } else {
            prop_assert!(receipt.accepted, "{}", receipt.reason);
        }
    }

    /// Lookups at subdomains equal lookups at the registrable domain
    /// (hostname-granularity blocking, §4.6).
    #[test]
    fn hostname_granularity(product in any_product(), sub in "[a-z]{1,8}", cat in any_category()) {
        let cloud = VendorCloud::new(product, 1);
        cloud.register_site_profile("granular.info", cat);
        cloud.submit(&Url::parse("http://granular.info/").unwrap(), SubmitterProfile::COVERT, SimTime::ZERO);
        let later = SimTime::from_days(10);
        let root = cloud.lookup(&Url::parse("http://granular.info/").unwrap(), later);
        let deep = cloud.lookup(&Url::parse(&format!("http://{sub}.granular.info/a/b")).unwrap(), later);
        prop_assert_eq!(root, deep);
    }

    /// The crawl queue never produces categories for unprofiled hosts
    /// and never files duplicates.
    #[test]
    fn crawl_queue_safety(product in any_product(), seed in any::<u64>(), n in 1usize..6) {
        let cloud = VendorCloud::new(product, seed);
        cloud.register_site_profile("crawlme.info", Category::AnonymizersProxies);
        for _ in 0..n {
            cloud.queue_for_categorization("crawlme.info", SimTime::ZERO);
            cloud.queue_for_categorization("ghost.info", SimTime::ZERO);
        }
        let later = SimTime::from_days(30);
        prop_assert!(!cloud.lookup_host("crawlme.info", later).is_empty());
        prop_assert!(cloud.lookup_host("ghost.info", later).is_empty());
        let crawl_entries = cloud.intake_log().iter().filter(|r| r.source == "crawl").count();
        prop_assert_eq!(crawl_entries, 1);
    }
}
