//! Websense Web proxy gateways.
//!
//! Table 2 signatures: Shodan keywords `"blockpage.cgi"` and
//! `"gateway websense"`; WhatWeb validation via a `Location` header
//! redirecting to a host on **port 15871** with a `ws-session`
//! parameter. The product's history in the paper: ONI identified it in
//! Yemen, and in 2009 the vendor "discontinu\[ed\] support of their
//! product for the Yemen government" \[35\] — modelled as a frozen update
//! subscription.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use filterwatch_http::{html, Request, Response, Status};
use filterwatch_netsim::{FlowCtx, Middlebox, Service, ServiceCtx, SimTime, Verdict};

use crate::blockpage::explicit_block_page;
use crate::cloud::VendorCloud;
use crate::license::{effective_db_time, LicensePool};
use crate::policy::FilterPolicy;

/// The port Websense block pages are served on.
pub const BLOCKPAGE_PORT: u16 = 15871;

/// A Websense gateway deployment.
pub struct WebsenseBox {
    name: String,
    cloud: Arc<VendorCloud>,
    policy: FilterPolicy,
    /// Host (name or address text) serving the block pages on
    /// port 15871 — usually the gateway itself.
    gateway_host: String,
    license: Option<LicensePool>,
    strip_branding: bool,
    frozen_at: Option<SimTime>,
    session_counter: AtomicU64,
}

impl WebsenseBox {
    /// A deployment redirecting blocked requests to
    /// `http://{gateway_host}:15871/cgi-bin/blockpage.cgi`.
    pub fn new(
        name: &str,
        cloud: Arc<VendorCloud>,
        policy: FilterPolicy,
        gateway_host: &str,
    ) -> Self {
        WebsenseBox {
            name: name.to_string(),
            cloud,
            policy,
            gateway_host: gateway_host.to_string(),
            license: None,
            strip_branding: false,
            frozen_at: None,
            session_counter: AtomicU64::new(1),
        }
    }

    /// Limit filtering to a concurrent-user license pool (Yemen, §4.4).
    pub fn with_license_pool(mut self, pool: LicensePool) -> Self {
        self.license = Some(pool);
        self
    }

    /// Remove vendor branding (generic in-line block page).
    pub fn with_stripped_branding(mut self) -> Self {
        self.strip_branding = true;
        self
    }

    /// Freeze the categorization updates at `at` (vendor withdrew
    /// support, as in Yemen 2009).
    pub fn with_frozen_subscription(mut self, at: SimTime) -> Self {
        self.frozen_at = Some(at);
        self
    }

    /// The blocking policy in force.
    pub fn policy(&self) -> &FilterPolicy {
        &self.policy
    }
}

impl Middlebox for WebsenseBox {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_request(&self, req: &Request, ctx: &FlowCtx) -> Verdict {
        if let Some(pool) = &self.license {
            if pool.filtering_offline() {
                return Verdict::Forward;
            }
        }
        let as_of = effective_db_time(ctx.now, self.frozen_at);
        let cats = self.cloud.lookup(&req.url, as_of);
        match self.policy.decide(&req.url.registrable_domain(), &cats) {
            Some(category) => {
                if self.strip_branding {
                    return Verdict::respond(explicit_block_page(
                        "Access Denied",
                        "Access restricted by network policy",
                        &req.url.to_string(),
                        &category,
                    ));
                }
                let session = self.session_counter.fetch_add(1, Ordering::Relaxed);
                Verdict::respond(Response::redirect(&format!(
                    "http://{}:{}/cgi-bin/blockpage.cgi?ws-session={session}&cat={}&url={}",
                    self.gateway_host,
                    BLOCKPAGE_PORT,
                    category.replace(' ', "+"),
                    req.url
                )))
            }
            None => Verdict::Forward,
        }
    }
}

/// The block-page service bound on port 15871 of the gateway host.
#[derive(Debug, Clone, Default)]
pub struct WebsenseBlockpage;

impl Service for WebsenseBlockpage {
    fn handle(&self, req: &Request, _ctx: &ServiceCtx) -> Response {
        if req.url.path().starts_with("/cgi-bin/blockpage.cgi") {
            let category = req
                .url
                .query_param("cat")
                .unwrap_or("Restricted")
                .replace('+', " ");
            let url = req.url.query_param("url").unwrap_or("(unknown)");
            let session = req.url.query_param("ws-session").unwrap_or("0");
            return Response::html(html::page(
                "Content Gateway Websense - Access Denied",
                &format!(
                    "<h1>Access to this site is blocked</h1>\
                     <p>URL: <code>{}</code></p>\
                     <p>Category: <b>{}</b></p>\
                     <p class=\"footer\">Websense Content Gateway \
                     (ws-session {})</p>",
                    html::escape(url),
                    html::escape(&category),
                    html::escape(session)
                ),
            ))
            .with_status(Status::FORBIDDEN)
            .with_header("Server", "Websense-Content-Gateway");
        }
        // Banner for scanners probing the port directly.
        Response::html(html::page(
            "Content Gateway Websense",
            "<p>Websense Content Gateway block page service (blockpage.cgi).</p>",
        ))
        .with_header("Server", "Websense-Content-Gateway")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_http::Url;

    fn flow(now: SimTime) -> FlowCtx {
        FlowCtx {
            now,
            client_ip: "5.0.0.10".parse().unwrap(),
        }
    }

    fn svc_ctx() -> ServiceCtx {
        ServiceCtx {
            now: SimTime::ZERO,
            client_ip: "5.0.0.10".parse().unwrap(),
        }
    }

    fn cloud() -> Arc<VendorCloud> {
        let c = Arc::new(VendorCloud::new(crate::ProductKind::Websense, 5));
        c.seed_categorization("adultsite.example", "Adult Content");
        c
    }

    #[test]
    fn block_redirects_to_port_15871_with_session() {
        let ws = WebsenseBox::new(
            "ws",
            cloud(),
            FilterPolicy::blocking(["Adult Content"]),
            "gw.texas-util.us",
        );
        let Verdict::Respond(resp) = ws.process_request(
            &Request::get(Url::parse("http://adultsite.example/").unwrap()),
            &flow(SimTime::ZERO),
        ) else {
            panic!("expected block")
        };
        let loc = resp.location().unwrap();
        assert!(loc.contains(":15871/cgi-bin/blockpage.cgi"), "{loc}");
        assert!(loc.contains("ws-session=1"), "{loc}");
        // Session counter increments.
        let Verdict::Respond(resp2) = ws.process_request(
            &Request::get(Url::parse("http://adultsite.example/").unwrap()),
            &flow(SimTime::ZERO),
        ) else {
            panic!()
        };
        assert!(resp2.location().unwrap().contains("ws-session=2"));
    }

    #[test]
    fn frozen_subscription_reproduces_yemen_2009() {
        let c = cloud();
        // A site categorized after the vendor pulled updates.
        c.seed_categorization_at(
            "new-adult.example",
            "Adult Content",
            SimTime::from_days(100),
        );
        let ws = WebsenseBox::new(
            "ws@yemen",
            Arc::clone(&c),
            FilterPolicy::blocking(["Adult Content"]),
            "gw",
        )
        .with_frozen_subscription(SimTime::from_days(50));
        // Old entries still block…
        assert!(matches!(
            ws.process_request(
                &Request::get(Url::parse("http://adultsite.example/").unwrap()),
                &flow(SimTime::from_days(200)),
            ),
            Verdict::Respond(_)
        ));
        // …but nothing categorized after the freeze does.
        assert_eq!(
            ws.process_request(
                &Request::get(Url::parse("http://new-adult.example/").unwrap()),
                &flow(SimTime::from_days(200)),
            ),
            Verdict::Forward
        );
    }

    #[test]
    fn license_pool_causes_intermittent_filtering() {
        let ws = WebsenseBox::new(
            "ws",
            cloud(),
            FilterPolicy::blocking(["Adult Content"]),
            "gw",
        )
        .with_license_pool(LicensePool::new(5, 10, 3, "yemen-ws"));
        let req = Request::get(Url::parse("http://adultsite.example/").unwrap());
        let outcomes: Vec<bool> = (0..50)
            .map(|_| {
                matches!(
                    ws.process_request(&req, &flow(SimTime::ZERO)),
                    Verdict::Respond(_)
                )
            })
            .collect();
        assert!(outcomes.iter().any(|&b| b), "never blocked");
        assert!(outcomes.iter().any(|&b| !b), "never bypassed");
    }

    #[test]
    fn blockpage_service_signatures() {
        let resp = WebsenseBlockpage.handle(
            &Request::get(
                Url::parse("http://gw:15871/cgi-bin/blockpage.cgi?ws-session=7&cat=Adult+Content&url=http://x/")
                    .unwrap(),
            ),
            &svc_ctx(),
        );
        assert_eq!(resp.status, Status::FORBIDDEN);
        let lower = resp.body_text().to_ascii_lowercase();
        assert!(lower.contains("websense"));
        assert!(lower.contains("adult content"));
        let banner_probe = WebsenseBlockpage.handle(
            &Request::get(Url::parse("http://gw:15871/").unwrap()),
            &svc_ctx(),
        );
        let text = format!(
            "{}{}",
            banner_probe.banner().to_ascii_lowercase(),
            banner_probe.body_text().to_ascii_lowercase()
        );
        assert!(text.contains("blockpage.cgi"));
        assert!(text.contains("gateway websense"));
    }

    #[test]
    fn stripped_branding_blocks_inline() {
        let ws = WebsenseBox::new(
            "ws",
            cloud(),
            FilterPolicy::blocking(["Adult Content"]),
            "gw",
        )
        .with_stripped_branding();
        let Verdict::Respond(resp) = ws.process_request(
            &Request::get(Url::parse("http://adultsite.example/").unwrap()),
            &flow(SimTime::ZERO),
        ) else {
            panic!()
        };
        assert!(resp.location().is_none());
        assert!(!resp.body_text().to_ascii_lowercase().contains("websense"));
    }
}
