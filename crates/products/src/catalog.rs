//! The product inventory (Table 1).

/// One of the four URL filtering products the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProductKind {
    /// Blue Coat ProxySG (Web proxy) and Blue Coat WebFilter.
    BlueCoat,
    /// McAfee SmartFilter (enterprise Web content filtering).
    SmartFilter,
    /// Netsweeper Content Filtering.
    Netsweeper,
    /// Websense Web proxy gateways.
    Websense,
}

/// Static facts about a product, as summarized in Table 1.
#[derive(Debug, Clone)]
pub struct ProductInfo {
    /// The product.
    pub kind: ProductKind,
    /// Vendor company name.
    pub company: &'static str,
    /// Corporate headquarters.
    pub headquarters: &'static str,
    /// Short product description.
    pub description: &'static str,
    /// Countries where prior ONI work had observed the product
    /// (ISO country codes).
    pub previously_observed: &'static [&'static str],
}

impl ProductKind {
    /// All four products, in Table 1 order.
    pub const ALL: [ProductKind; 4] = [
        ProductKind::BlueCoat,
        ProductKind::SmartFilter,
        ProductKind::Netsweeper,
        ProductKind::Websense,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProductKind::BlueCoat => "Blue Coat",
            ProductKind::SmartFilter => "McAfee SmartFilter",
            ProductKind::Netsweeper => "Netsweeper",
            ProductKind::Websense => "Websense",
        }
    }

    /// Short identifier used in logs and simulated hostnames.
    pub fn slug(&self) -> &'static str {
        match self {
            ProductKind::BlueCoat => "bluecoat",
            ProductKind::SmartFilter => "smartfilter",
            ProductKind::Netsweeper => "netsweeper",
            ProductKind::Websense => "websense",
        }
    }

    /// The Table 1 row for this product.
    pub fn info(&self) -> ProductInfo {
        match self {
            ProductKind::BlueCoat => ProductInfo {
                kind: *self,
                company: "Blue Coat",
                headquarters: "Sunnyvale, CA, USA",
                description: "Web proxy (ProxySG) and URL Filter (WebFilter)",
                previously_observed: &["KW", "MM", "EG", "QA", "SA", "SY", "AE"],
            },
            ProductKind::SmartFilter => ProductInfo {
                kind: *self,
                company: "McAfee",
                headquarters: "Santa Clara, CA, USA",
                description: "Filtering of Web content for enterprises",
                previously_observed: &["KW", "BH", "IR", "SA", "OM", "TN", "AE"],
            },
            ProductKind::Netsweeper => ProductInfo {
                kind: *self,
                company: "Netsweeper",
                headquarters: "Guelph, ON, Canada",
                description: "Netsweeper Content Filtering",
                previously_observed: &["QA", "AE", "YE"],
            },
            ProductKind::Websense => ProductInfo {
                kind: *self,
                company: "Websense",
                headquarters: "San Diego, CA, USA",
                description: "Web proxy gateways including corporate data leakage monitoring",
                previously_observed: &["YE"],
            },
        }
    }
}

impl std::fmt::Display for ProductKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_products() {
        assert_eq!(ProductKind::ALL.len(), 4);
    }

    #[test]
    fn table1_facts() {
        let bc = ProductKind::BlueCoat.info();
        assert_eq!(bc.headquarters, "Sunnyvale, CA, USA");
        assert!(bc.previously_observed.contains(&"SY"));

        let ns = ProductKind::Netsweeper.info();
        assert_eq!(ns.company, "Netsweeper");
        assert!(ns.headquarters.contains("Canada"));
        assert_eq!(ns.previously_observed, &["QA", "AE", "YE"]);

        let ws = ProductKind::Websense.info();
        assert_eq!(ws.previously_observed, &["YE"]);

        let sf = ProductKind::SmartFilter.info();
        assert!(sf.previously_observed.contains(&"TN")); // Tunisia 2005
    }

    #[test]
    fn slugs_unique() {
        let slugs: std::collections::BTreeSet<&str> =
            ProductKind::ALL.iter().map(|p| p.slug()).collect();
        assert_eq!(slugs.len(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(ProductKind::SmartFilter.to_string(), "McAfee SmartFilter");
    }
}
