//! Behavioural models of the four URL filtering products.
//!
//! Table 1 of the paper studies four commercial products: **Blue Coat**
//! (ProxySG proxy + WebFilter), **McAfee SmartFilter**, **Netsweeper**
//! and **Websense**. This crate implements each as a
//! [`Middlebox`](filterwatch_netsim::Middlebox) that plugs into a
//! simulated ISP's egress path, together with the vendor-side
//! infrastructure the methodology interacts with:
//!
//! * [`catalog`] — the static product inventory (Table 1);
//! * [`taxonomy`] — each vendor's category scheme and how the 40 ONI
//!   content categories map onto it (including Netsweeper's 66 numbered
//!   categories);
//! * [`cloud`] — the vendor cloud: master categorization database,
//!   user-submission review pipeline (the §4.2 confirmation lever),
//!   Netsweeper-style in-country URL queueing, and the Table 5
//!   submission-rejection evasion policy;
//! * [`policy`] — per-deployment category blocking policy;
//! * [`smartfilter`], [`bluecoat`], [`netsweeper`], [`websense`] — the
//!   middleboxes plus their externally visible HTTP surfaces (admin
//!   consoles, deny pages, `blockpage.cgi`, the category test site),
//!   emitting exactly the signatures Table 2 keys on;
//! * [`blockpage`] — shared block-page rendering helpers.
//!
//! Deployment quirks from §4 are modelled explicitly: header-stripping
//! (branding removal), license-limited concurrency that turns filtering
//! off under load (Yemen's inconsistent blocking), frozen update
//! subscriptions (Websense post-2009 Yemen), and product stacking
//! (SmartFilter policy atop a Blue Coat proxy in Etisalat).

pub mod blockpage;
pub mod bluecoat;
pub mod catalog;
pub mod cloud;
pub mod license;
pub mod netsweeper;
pub mod policy;
pub mod portal;
pub mod smartfilter;
pub mod submit;
pub mod taxonomy;
pub mod websense;

pub use catalog::{ProductInfo, ProductKind};
pub use cloud::{SubmissionReceipt, VendorCloud};
pub use policy::FilterPolicy;
pub use portal::SubmissionPortal;
pub use submit::SubmitterProfile;
