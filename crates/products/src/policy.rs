//! Per-deployment blocking policy.
//!
//! A product ships a categorization database; the *operator* chooses
//! which categories to block. §4.3's Challenge 1 turns on exactly this
//! distinction: Saudi deployments had SmartFilter's proxy category
//! available but not enabled, while pornography was enabled.

use std::collections::BTreeSet;

/// The set of vendor categories a deployment blocks, plus operator
/// overrides for individual hosts.
#[derive(Debug, Clone, Default)]
pub struct FilterPolicy {
    blocked: BTreeSet<String>,
    always_allow: BTreeSet<String>,
    always_deny: BTreeSet<String>,
}

impl FilterPolicy {
    /// A policy blocking nothing.
    pub fn allow_all() -> Self {
        FilterPolicy::default()
    }

    /// A policy blocking the given vendor categories.
    pub fn blocking<I: IntoIterator<Item = S>, S: Into<String>>(categories: I) -> Self {
        FilterPolicy {
            blocked: categories.into_iter().map(Into::into).collect(),
            ..FilterPolicy::default()
        }
    }

    /// Builder-style: also block `category`.
    pub fn and_block(mut self, category: &str) -> Self {
        self.blocked.insert(category.to_string());
        self
    }

    /// Operator allowlist: never block this registrable domain.
    pub fn always_allow(&mut self, domain: &str) {
        self.always_allow.insert(domain.to_ascii_lowercase());
    }

    /// Operator denylist: always block this registrable domain,
    /// regardless of categorization.
    pub fn always_deny(&mut self, domain: &str) {
        self.always_deny.insert(domain.to_ascii_lowercase());
    }

    /// Whether the policy blocks `category`.
    pub fn blocks_category(&self, category: &str) -> bool {
        self.blocked.contains(category)
    }

    /// The blocked categories, sorted.
    pub fn blocked_categories(&self) -> impl Iterator<Item = &str> {
        self.blocked.iter().map(String::as_str)
    }

    /// Evaluate a request: given the vendor categories of the URL and
    /// its registrable domain, should it be blocked — and shown as what?
    ///
    /// Returns the category string to display on the block page.
    pub fn decide(&self, domain: &str, categories: &BTreeSet<String>) -> Option<String> {
        let domain = domain.to_ascii_lowercase();
        if self.always_allow.contains(&domain) {
            return None;
        }
        if self.always_deny.contains(&domain) {
            return Some("Locally Restricted".to_string());
        }
        categories
            .iter()
            .find(|c| self.blocked.contains(*c))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cats(list: &[&str]) -> BTreeSet<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn allow_all_blocks_nothing() {
        let p = FilterPolicy::allow_all();
        assert_eq!(p.decide("x.info", &cats(&["Pornography"])), None);
    }

    #[test]
    fn category_blocking() {
        let p = FilterPolicy::blocking(["Pornography", "Anonymizers"]);
        assert_eq!(
            p.decide("x.info", &cats(&["Pornography"])),
            Some("Pornography".to_string())
        );
        assert_eq!(p.decide("x.info", &cats(&["General News"])), None);
        assert!(p.blocks_category("Anonymizers"));
        assert!(!p.blocks_category("Games"));
    }

    #[test]
    fn first_blocked_category_in_sorted_order_is_reported() {
        let p = FilterPolicy::blocking(["Anonymizers", "Pornography"]);
        // BTreeSet iteration is sorted, so "Anonymizers" wins.
        assert_eq!(
            p.decide("x.info", &cats(&["Pornography", "Anonymizers"])),
            Some("Anonymizers".to_string())
        );
    }

    #[test]
    fn operator_overrides() {
        let mut p = FilterPolicy::blocking(["Pornography"]);
        p.always_allow("ok.info");
        p.always_deny("bad.info");
        assert_eq!(p.decide("OK.info", &cats(&["Pornography"])), None);
        assert_eq!(
            p.decide("bad.info", &cats(&[])),
            Some("Locally Restricted".to_string())
        );
    }

    #[test]
    fn builder_chain() {
        let p = FilterPolicy::allow_all()
            .and_block("Gambling")
            .and_block("Drugs");
        assert_eq!(
            p.blocked_categories().collect::<Vec<_>>(),
            vec!["Drugs", "Gambling"]
        );
    }
}
