//! Vendor category schemes and the ONI→vendor category mappings.
//!
//! Each product ships its own categorization taxonomy; deployments then
//! choose which vendor categories to block. The confirmation methodology
//! depends on knowing these schemes ("the methods in Section 4 require
//! that we identify which categories are blocked in each ISP"), and the
//! §5 characterization depends on how protected content classes land in
//! vendor categories.
//!
//! The mapping here is a total function from the 40 ONI content
//! categories to each vendor's scheme. Category names follow the vendors'
//! public documentation of the era; Netsweeper's scheme is numeric — the
//! paper probes `denypagetests.netsweeper.com/category/catno/23` for
//! pornography — so the full 66-entry numbered list is modelled, with
//! catno 23 = "Pornography" pinned to match the paper.

use filterwatch_urllists::Category;

use crate::catalog::ProductKind;

/// Map an ONI content category to the vendor's category name.
pub fn vendor_category(product: ProductKind, cat: Category) -> &'static str {
    match product {
        ProductKind::SmartFilter => smartfilter(cat),
        ProductKind::BlueCoat => bluecoat(cat),
        ProductKind::Netsweeper => netsweeper(cat),
        ProductKind::Websense => websense(cat),
    }
}

/// The distinct vendor categories reachable from the ONI taxonomy,
/// in first-use order.
pub fn vendor_categories(product: ProductKind) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for cat in Category::ALL {
        let v = vendor_category(product, cat);
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

fn smartfilter(cat: Category) -> &'static str {
    use Category::*;
    match cat {
        Pornography | ProvocativeAttire => "Pornography",
        SexEducation => "Sexual Materials",
        AnonymizersProxies | Vpn => "Anonymizers",
        Translation => "Anonymizing Utilities",
        Gambling => "Gambling",
        Drugs | Alcohol => "Drugs",
        Dating => "Dating/Social",
        Lgbt => "Lifestyle",
        ReligiousCriticism | MinorityFaiths | ReligiousConversion => "Religion/Ideology",
        MediaFreedom => "General News",
        HumanRights
        | PoliticalReform
        | OppositionParties
        | CriticismOfGovernment
        | PoliticalSatire
        | Corruption
        | Elections
        | WomensRights
        | MinorityGroups
        | EnvironmentalActivism
        | ForeignRelations
        | SecurityServices => "Politics/Opinion",
        EmailProviders => "Web Mail",
        Hosting => "Web Hosting",
        SearchEngines => "Search Engines",
        P2pFileSharing => "P2P/File Sharing",
        MultimediaSharing => "Media Sharing",
        SocialNetworking => "Social Networking",
        Hacking => "Malicious Sites",
        OnlineGaming => "Games",
        ArmedConflict | Extremism | Militancy | Terrorism => "Violence",
        Weapons => "Weapons",
    }
}

fn bluecoat(cat: Category) -> &'static str {
    use Category::*;
    match cat {
        Pornography | ProvocativeAttire => "Pornography",
        SexEducation => "Sex Education",
        AnonymizersProxies | Vpn | Translation => "Proxy Avoidance",
        Gambling => "Gambling",
        Drugs | Alcohol => "Controlled Substances",
        Dating => "Personals/Dating",
        Lgbt => "LGBT",
        ReligiousCriticism | MinorityFaiths | ReligiousConversion => "Religion",
        MediaFreedom => "News/Media",
        HumanRights
        | PoliticalReform
        | OppositionParties
        | CriticismOfGovernment
        | PoliticalSatire
        | Corruption
        | Elections
        | WomensRights
        | MinorityGroups
        | EnvironmentalActivism
        | ForeignRelations
        | SecurityServices => "Political/Social Advocacy",
        EmailProviders => "Email",
        Hosting => "Web Hosting",
        SearchEngines => "Search Engines/Portals",
        P2pFileSharing => "Peer-to-Peer (P2P)",
        MultimediaSharing => "Audio/Video Clips",
        SocialNetworking => "Social Networking",
        Hacking => "Hacking",
        OnlineGaming => "Games",
        ArmedConflict | Extremism | Militancy | Terrorism => "Violence/Hate/Racism",
        Weapons => "Weapons",
    }
}

fn netsweeper(cat: Category) -> &'static str {
    use Category::*;
    match cat {
        Pornography | ProvocativeAttire => "Pornography",
        SexEducation => "Sex Education",
        AnonymizersProxies | Vpn | Translation => "Proxy Anonymizer",
        Gambling => "Gambling",
        Drugs | Alcohol => "Substance Abuse",
        Dating => "Dating",
        Lgbt => "Alternative Lifestyles",
        ReligiousCriticism | MinorityFaiths | ReligiousConversion => "Religion",
        MediaFreedom => "News",
        HumanRights | WomensRights | MinorityGroups | EnvironmentalActivism => "Human Rights",
        PoliticalReform
        | OppositionParties
        | CriticismOfGovernment
        | PoliticalSatire
        | Corruption
        | Elections
        | ForeignRelations
        | SecurityServices => "Politics",
        EmailProviders => "Web Mail",
        Hosting => "Hosting Sites",
        SearchEngines => "Search Engines",
        P2pFileSharing => "File Sharing",
        MultimediaSharing => "Multimedia",
        SocialNetworking => "Social Networking",
        Hacking => "Hacking",
        OnlineGaming => "Games",
        ArmedConflict | Extremism | Militancy | Terrorism => "Extremism",
        Weapons => "Weapons",
    }
}

fn websense(cat: Category) -> &'static str {
    use Category::*;
    match cat {
        Pornography | ProvocativeAttire => "Adult Content",
        SexEducation => "Sex Education",
        AnonymizersProxies | Vpn | Translation => "Proxy Avoidance",
        Gambling => "Gambling",
        Drugs | Alcohol => "Drugs",
        Dating => "Personals and Dating",
        Lgbt => "Gay or Lesbian or Bisexual Interest",
        ReligiousCriticism | MinorityFaiths | ReligiousConversion => "Non-Traditional Religions",
        MediaFreedom => "News and Media",
        HumanRights
        | PoliticalReform
        | OppositionParties
        | CriticismOfGovernment
        | PoliticalSatire
        | Corruption
        | Elections
        | WomensRights
        | MinorityGroups
        | EnvironmentalActivism
        | ForeignRelations
        | SecurityServices => "Advocacy Groups",
        EmailProviders => "Web-based Email",
        Hosting => "Web Hosting",
        SearchEngines => "Search Engines and Portals",
        P2pFileSharing => "Peer-to-Peer File Sharing",
        MultimediaSharing => "Streaming Media",
        SocialNetworking => "Social Networking",
        Hacking => "Hacking",
        OnlineGaming => "Games",
        ArmedConflict | Extremism | Militancy | Terrorism => "Militancy and Extremist",
        Weapons => "Weapons",
    }
}

/// Netsweeper's numbered category scheme, indexed by `catno - 1`.
///
/// The first 40-odd entries are the names the ONI mapping above can
/// produce, padded with the rest of Netsweeper's stock scheme to the 66
/// categories the deny-page test site exposes (§4.4). Catno 23 is pinned
/// to "Pornography" to match the paper's example URL.
pub const NETSWEEPER_CATEGORIES: [&str; 66] = [
    "Adult Images",           // 1
    "Alcohol",                // 2
    "Alternative Lifestyles", // 3
    "Arts",                   // 4
    "Business",               // 5
    "Chat",                   // 6
    "Criminal Skills",        // 7
    "Dating",                 // 8
    "Substance Abuse",        // 9
    "Education",              // 10
    "Entertainment",          // 11
    "Extremism",              // 12
    "File Sharing",           // 13
    "Finance",                // 14
    "Gambling",               // 15
    "Games",                  // 16
    "Government",             // 17
    "Hacking",                // 18
    "Health",                 // 19
    "Hosting Sites",          // 20
    "Human Rights",           // 21
    "Humor",                  // 22
    "Pornography",            // 23 (pinned: paper example catno)
    "Intranet",               // 24
    "Job Search",             // 25
    "Kids",                   // 26
    "Lingerie",               // 27
    "Matrimonial",            // 28
    "Multimedia",             // 29
    "News",                   // 30
    "Occult",                 // 31
    "Phishing",               // 32
    "Politics",               // 33
    "Portals",                // 34
    "Profanity",              // 35
    "Proxy Anonymizer",       // 36
    "Real Estate",            // 37
    "Religion",               // 38
    "Search Engines",         // 39
    "Search Keywords",        // 40
    "Sex Education",          // 41
    "Shopping",               // 42
    "Social Networking",      // 43
    "Sports",                 // 44
    "Technology",             // 45
    "Travel",                 // 46
    "Viruses",                // 47
    "Weapons",                // 48
    "Web Mail",               // 49
    "Journals and Blogs",     // 50
    "Photo Sharing",          // 51
    "Translation Sites",      // 52
    "Advertising",            // 53
    "Auctions",               // 54
    "Automotive",             // 55
    "Directory",              // 56
    "Fashion",                // 57
    "Food",                   // 58
    "General",                // 59
    "Hobbies",                // 60
    "Military",               // 61
    "Mobile Phones",          // 62
    "Pets",                   // 63
    "Ringtones",              // 64
    "Society",                // 65
    "Uncategorized",          // 66
];

/// Catno (1-based) for a Netsweeper category name, if it is part of the
/// numbered scheme.
pub fn netsweeper_catno(name: &str) -> Option<u8> {
    NETSWEEPER_CATEGORIES
        .iter()
        .position(|&n| n.eq_ignore_ascii_case(name))
        .map(|i| (i + 1) as u8)
}

/// Category name for a Netsweeper catno (1..=66).
pub fn netsweeper_category_name(catno: u8) -> Option<&'static str> {
    if (1..=66).contains(&catno) {
        Some(NETSWEEPER_CATEGORIES[catno as usize - 1])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn mappings_are_total() {
        for product in ProductKind::ALL {
            for cat in Category::ALL {
                assert!(!vendor_category(product, cat).is_empty());
            }
        }
    }

    #[test]
    fn case_study_categories_land_where_the_paper_says() {
        use Category::*;
        // §4.3: SmartFilter proxies → the anonymizers/proxy category.
        assert_eq!(
            vendor_category(ProductKind::SmartFilter, AnonymizersProxies),
            "Anonymizers"
        );
        assert_eq!(
            vendor_category(ProductKind::SmartFilter, Pornography),
            "Pornography"
        );
        // §4.5: Blue Coat submissions went to "Proxy avoidance".
        assert_eq!(
            vendor_category(ProductKind::BlueCoat, AnonymizersProxies),
            "Proxy Avoidance"
        );
        // §4.4: Netsweeper proxy anonymizer category.
        assert_eq!(
            vendor_category(ProductKind::Netsweeper, AnonymizersProxies),
            "Proxy Anonymizer"
        );
    }

    #[test]
    fn netsweeper_scheme_has_66_unique_categories() {
        let set: BTreeSet<&str> = NETSWEEPER_CATEGORIES.iter().copied().collect();
        assert_eq!(set.len(), 66);
    }

    #[test]
    fn catno_23_is_pornography() {
        assert_eq!(netsweeper_category_name(23), Some("Pornography"));
        assert_eq!(netsweeper_catno("pornography"), Some(23));
    }

    #[test]
    fn catno_bounds() {
        assert_eq!(netsweeper_category_name(0), None);
        assert_eq!(netsweeper_category_name(67), None);
        assert_eq!(netsweeper_category_name(1), Some("Adult Images"));
        assert_eq!(netsweeper_category_name(66), Some("Uncategorized"));
        assert_eq!(netsweeper_catno("No Such"), None);
    }

    #[test]
    fn oni_mapped_netsweeper_names_are_in_numbered_scheme() {
        for cat in Category::ALL {
            let name = vendor_category(ProductKind::Netsweeper, cat);
            assert!(
                netsweeper_catno(name).is_some(),
                "{name} missing from numbered scheme"
            );
        }
    }

    #[test]
    fn yemennet_blocked_categories_exist() {
        // §4.4: "five categories were blocked: adult images, phishing,
        // pornography, proxy anonymizers, and search keywords."
        for name in [
            "Adult Images",
            "Phishing",
            "Pornography",
            "Proxy Anonymizer",
            "Search Keywords",
        ] {
            assert!(netsweeper_catno(name).is_some(), "{name}");
        }
    }

    #[test]
    fn vendor_categories_deduplicated() {
        for product in ProductKind::ALL {
            let cats = vendor_categories(product);
            let set: BTreeSet<&str> = cats.iter().copied().collect();
            assert_eq!(set.len(), cats.len(), "{product}");
            assert!(
                cats.len() >= 15,
                "{product} scheme too small: {}",
                cats.len()
            );
        }
    }
}
