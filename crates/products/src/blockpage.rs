//! Shared block-page machinery.
//!
//! Each vendor's block page carries the distinctive markers Table 2 keys
//! on; this module holds the rendering helpers plus the small base64
//! encoder Blue Coat's `cfru=` redirect parameter needs.

use filterwatch_http::{html, Response, Status};

/// Render a generic explicit block page (vendors specialize around it).
///
/// The paper notes (§4.1) that "the products we test tend to use block
/// pages that explicitly state that content has been censored" — the
/// body always carries an unambiguous denial statement plus the category.
pub fn explicit_block_page(title: &str, product_line: &str, url: &str, category: &str) -> Response {
    let body = format!(
        "<h1>Access Denied</h1>\n\
         <p>The requested page <code>{}</code> has been blocked.</p>\n\
         <p>Category: <b>{}</b></p>\n\
         <p class=\"footer\">{}</p>",
        html::escape(url),
        html::escape(category),
        html::escape(product_line),
    );
    Response::html(html::page(title, &body)).with_status(Status::FORBIDDEN)
}

/// Standard base64 (RFC 4648, with padding) — used for Blue Coat's
/// `cfru=` parameter, which carries the blocked URL.
pub fn base64(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode standard base64 (strict on alphabet, tolerant of no padding).
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes: Vec<u8> = text.bytes().filter(|&b| b != b'=').collect();
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    for chunk in bytes.chunks(4) {
        if chunk.len() == 1 {
            return None;
        }
        let mut n: u32 = 0;
        for &b in chunk {
            n = (n << 6) | val(b)?;
        }
        n <<= 6 * (4 - chunk.len());
        out.push((n >> 16) as u8);
        if chunk.len() > 2 {
            out.push((n >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_page_is_explicit() {
        let page = explicit_block_page("Blocked", "Vendor X", "http://x.info/", "Pornography");
        assert_eq!(page.status, Status::FORBIDDEN);
        let text = page.body_text();
        assert!(text.contains("has been blocked"));
        assert!(text.contains("Pornography"));
        assert!(text.contains("x.info"));
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64(b""), "");
        assert_eq!(base64(b"f"), "Zg==");
        assert_eq!(base64(b"fo"), "Zm8=");
        assert_eq!(base64(b"foo"), "Zm9v");
        assert_eq!(base64(b"foob"), "Zm9vYg==");
        assert_eq!(base64(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_round_trip() {
        for input in [&b"http://starwasher.info/"[..], b"", b"a", b"\x00\xff\x7f"] {
            let enc = base64(input);
            assert_eq!(base64_decode(&enc).unwrap(), input, "{enc}");
        }
    }

    #[test]
    fn base64_decode_rejects_junk() {
        assert_eq!(base64_decode("!!!"), None);
        assert_eq!(base64_decode("A"), None);
    }
}
