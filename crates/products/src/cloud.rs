//! The vendor cloud: categorization database and submission pipeline.
//!
//! §6.2: "URL filtering products view their database of URLs as a key
//! differentiator ... By allowing individuals/administrators to submit
//! sites to be blocked in different categories, they effectively
//! crowdsource the database maintenance process." The confirmation
//! methodology (§4.2) exploits exactly this channel.
//!
//! One [`VendorCloud`] exists per product family. It holds:
//!
//! * the master categorization database (time-stamped entries, so a
//!   deployment with a **frozen update subscription** — Websense in Yemen
//!   after 2009 — can look the database up "as of" its freeze date);
//! * an **oracle** of site ground truth: what a human reviewer visiting a
//!   domain would conclude it is. Experiments register a profile whenever
//!   they stand up a site; submissions for domains without a profile are
//!   rejected (the reviewer can't reach the site);
//! * the **review pipeline**: a submission is accepted or declined at
//!   review time and, if accepted, becomes visible in the database after
//!   a sampled 2–5 day delay — the reason the paper retests "after 3–5
//!   days";
//! * the Netsweeper-style **crawl queue** (§4.4): URLs accessed inside a
//!   deployment are queued for categorization, which is why the paper
//!   could not pre-verify accessibility before submitting to Netsweeper;
//! * the Table 5 **evasion policy**: optionally disregard submissions
//!   that are linkable to researchers ([`SubmitterProfile::is_flaggable`]).
//!
//! All randomness (review delays, acceptance draws) comes from a
//! generator seeded at construction, so the whole review pipeline is
//! deterministic per world seed.

use std::collections::{BTreeSet, HashMap};

use filterwatch_http::Url;
use filterwatch_netsim::SimTime;
use filterwatch_urllists::Category;
use parking_lot::Mutex;

use crate::catalog::ProductKind;
use crate::submit::SubmitterProfile;
use crate::taxonomy;

/// Outcome of a URL submission, as the researcher eventually infers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmissionReceipt {
    /// Whether the submission will ever take effect.
    pub accepted: bool,
    /// Why it was (not) accepted.
    pub reason: String,
    /// When the categorization becomes visible to deployments.
    pub visible_after: Option<SimTime>,
    /// The vendor category the reviewer assigned.
    pub category: Option<String>,
}

/// One row of the cloud's intake log (used by reports and tests).
#[derive(Debug, Clone)]
pub struct IntakeRecord {
    /// The submitted or crawled key (registrable domain or URL key).
    pub key: String,
    /// Virtual time of intake.
    pub at: SimTime,
    /// Whether it was accepted.
    pub accepted: bool,
    /// `"submission"` or `"crawl"`.
    pub source: &'static str,
}

#[derive(Debug, Clone)]
struct Pending {
    key: String,
    category: String,
    apply_at: SimTime,
}

#[derive(Debug)]
struct Inner {
    /// World seed; review decisions are pure functions of (seed, key),
    /// so outcomes do not depend on the order experiments run in.
    seed: u64,
    /// key → (vendor category, time the entry became visible).
    db: HashMap<String, Vec<(String, SimTime)>>,
    /// Ground truth: registrable domain → content profile.
    oracle: HashMap<String, Category>,
    pending: Vec<Pending>,
    /// Keys the crawler has already looked at (never re-crawled).
    crawled: std::collections::BTreeSet<String>,
    review_days: (u64, u64),
    crawl_days: (u64, u64),
    acceptance: f64,
    crawl_acceptance: f64,
    reject_flaggable: bool,
    log: Vec<IntakeRecord>,
}

/// A product family's cloud service. See the module docs.
pub struct VendorCloud {
    product: ProductKind,
    inner: Mutex<Inner>,
}

impl VendorCloud {
    /// Create a cloud for `product` with vendor-typical review behaviour.
    pub fn new(product: ProductKind, seed: u64) -> Self {
        let (review_days, acceptance) = match product {
            // SmartFilter's URL submission tool reviews promptly; the
            // paper saw five-for-five application within a few days.
            ProductKind::SmartFilter => ((3, 4), 1.0),
            ProductKind::BlueCoat => ((3, 5), 1.0),
            // Netsweeper's "test-a-site" reviews fast but imperfectly
            // (Du saw 5 of 6 submissions take effect).
            ProductKind::Netsweeper => ((2, 4), 0.92),
            ProductKind::Websense => ((3, 5), 1.0),
        };
        VendorCloud {
            product,
            inner: Mutex::new(Inner {
                seed: filterwatch_netsim::rng::mix(seed, product.slug()),
                db: HashMap::new(),
                oracle: HashMap::new(),
                pending: Vec::new(),
                crawled: std::collections::BTreeSet::new(),
                review_days,
                crawl_days: (6, 10),
                acceptance,
                crawl_acceptance: 1.0,
                reject_flaggable: false,
                log: Vec::new(),
            }),
        }
    }

    /// Which product family this cloud serves.
    pub fn product(&self) -> ProductKind {
        self.product
    }

    /// Enable/disable the Table 5 evasion tactic: disregard submissions
    /// linkable to researchers.
    pub fn set_reject_flaggable(&self, on: bool) {
        self.inner.lock().reject_flaggable = on;
    }

    /// Override the acceptance probability for user submissions.
    pub fn set_acceptance_rate(&self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate));
        self.inner.lock().acceptance = rate;
    }

    /// Override the review delay range (inclusive, days).
    pub fn set_review_days(&self, min: u64, max: u64) {
        assert!(min <= max);
        self.inner.lock().review_days = (min, max);
    }

    /// Register ground truth for a domain: what a reviewer visiting it
    /// would see. Called whenever an experiment or world builder stands
    /// up a site.
    pub fn register_site_profile(&self, domain: &str, content: Category) {
        self.inner
            .lock()
            .oracle
            .insert(domain.to_ascii_lowercase(), content);
    }

    /// Directly enter a categorization, visible from time zero — the
    /// pre-existing database shipped with the product.
    pub fn seed_categorization(&self, key: &str, vendor_category: &str) {
        self.seed_categorization_at(key, vendor_category, SimTime::ZERO);
    }

    /// Directly enter a categorization visible from `at`.
    pub fn seed_categorization_at(&self, key: &str, vendor_category: &str, at: SimTime) {
        self.inner
            .lock()
            .db
            .entry(key.to_ascii_lowercase())
            .or_default()
            .push((vendor_category.to_string(), at));
    }

    /// Submit a URL for categorization/blocking (the §4.2 lever).
    pub fn submit(
        &self,
        url: &Url,
        submitter: SubmitterProfile,
        now: SimTime,
    ) -> SubmissionReceipt {
        let mut inner = self.inner.lock();
        inner.apply_pending(now);
        let key = url.registrable_domain();

        if inner.reject_flaggable && submitter.is_flaggable() {
            inner.log(IntakeRecord {
                key,
                at: now,
                accepted: false,
                source: "submission",
            });
            return SubmissionReceipt {
                accepted: false,
                reason: "intake flagged the submission as researcher activity".into(),
                visible_after: None,
                category: None,
            };
        }

        let Some(&content) = inner.oracle.get(&key) else {
            inner.log(IntakeRecord {
                key,
                at: now,
                accepted: false,
                source: "submission",
            });
            return SubmissionReceipt {
                accepted: false,
                reason: "reviewer could not reach or classify the site".into(),
                visible_after: None,
                category: None,
            };
        };

        let category = taxonomy::vendor_category(self.product, content).to_string();
        let accepted = inner.acceptance >= 1.0
            || unit_draw(inner.seed, &format!("accept/{key}")) < inner.acceptance;
        if !accepted {
            inner.log(IntakeRecord {
                key,
                at: now,
                accepted: false,
                source: "submission",
            });
            return SubmissionReceipt {
                accepted: false,
                reason: "reviewer declined the submission".into(),
                visible_after: None,
                category: Some(category),
            };
        }

        let (min, max) = inner.review_days;
        let delay = min
            + filterwatch_netsim::rng::mix(inner.seed, &format!("delay/{key}")) % (max - min + 1);
        let apply_at = now.plus_days(delay);
        inner.pending.push(Pending {
            key: key.clone(),
            category: category.clone(),
            apply_at,
        });
        inner.log(IntakeRecord {
            key,
            at: now,
            accepted: true,
            source: "submission",
        });
        SubmissionReceipt {
            accepted: true,
            reason: format!("accepted; review completes in {delay} day(s)"),
            visible_after: Some(apply_at),
            category: Some(category),
        }
    }

    /// Queue a host seen inside a deployment for categorization —
    /// Netsweeper's DB-expansion behaviour (§4.4). A no-op for unknown
    /// or already-handled hosts.
    pub fn queue_for_categorization(&self, host: &str, now: SimTime) {
        let mut inner = self.inner.lock();
        inner.apply_pending(now);
        let key = registrable(host);
        if inner.db.contains_key(&key)
            || inner.pending.iter().any(|p| p.key == key)
            || !inner.crawled.insert(key.clone())
        {
            return;
        }
        let Some(&content) = inner.oracle.get(&key) else {
            return;
        };
        let category = taxonomy::vendor_category(self.product, content).to_string();
        let accepted = inner.crawl_acceptance >= 1.0
            || unit_draw(inner.seed, &format!("crawl-accept/{key}")) < inner.crawl_acceptance;
        if !accepted {
            inner.log(IntakeRecord {
                key,
                at: now,
                accepted: false,
                source: "crawl",
            });
            return;
        }
        let (min, max) = inner.crawl_days;
        let delay = min
            + filterwatch_netsim::rng::mix(inner.seed, &format!("crawl-delay/{key}"))
                % (max - min + 1);
        let apply_at = now.plus_days(delay);
        inner.pending.push(Pending {
            key: key.clone(),
            category,
            apply_at,
        });
        inner.log(IntakeRecord {
            key,
            at: now,
            accepted: true,
            source: "crawl",
        });
    }

    /// Look up the categories for a URL, as visible at `as_of`.
    ///
    /// Key precedence: exact `host/path` entry (used by the Netsweeper
    /// deny-page test URLs), then exact hostname, then registrable
    /// domain (hostname-granularity blocking, §4.6).
    pub fn lookup(&self, url: &Url, as_of: SimTime) -> BTreeSet<String> {
        let mut inner = self.inner.lock();
        inner.apply_pending(as_of);
        let path_key = format!("{}{}", url.host(), url.path());
        let keys = [
            path_key.trim_end_matches('/').to_string(),
            url.host().to_string(),
            url.registrable_domain(),
        ];
        for key in keys {
            let cats = inner.visible(&key, as_of);
            if !cats.is_empty() {
                return cats;
            }
        }
        BTreeSet::new()
    }

    /// Look up categories for a bare hostname at `as_of`.
    pub fn lookup_host(&self, host: &str, as_of: SimTime) -> BTreeSet<String> {
        let mut inner = self.inner.lock();
        inner.apply_pending(as_of);
        let host = host.to_ascii_lowercase();
        let cats = inner.visible(&host, as_of);
        if !cats.is_empty() {
            return cats;
        }
        inner.visible(&registrable(&host), as_of)
    }

    /// Number of keys visible at `as_of`.
    pub fn db_size(&self, as_of: SimTime) -> usize {
        let mut inner = self.inner.lock();
        inner.apply_pending(as_of);
        inner
            .db
            .iter()
            .filter(|(_, entries)| entries.iter().any(|(_, at)| *at <= as_of))
            .count()
    }

    /// Intake log snapshot.
    pub fn intake_log(&self) -> Vec<IntakeRecord> {
        self.inner.lock().log.clone()
    }
}

impl Inner {
    fn apply_pending(&mut self, now: SimTime) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].apply_at <= now {
                let p = self.pending.swap_remove(i);
                self.db
                    .entry(p.key)
                    .or_default()
                    .push((p.category, p.apply_at));
            } else {
                i += 1;
            }
        }
    }

    fn visible(&self, key: &str, as_of: SimTime) -> BTreeSet<String> {
        self.db
            .get(key)
            .map(|entries| {
                entries
                    .iter()
                    .filter(|(_, at)| *at <= as_of)
                    .map(|(cat, _)| cat.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    fn log(&mut self, rec: IntakeRecord) {
        self.log.push(rec);
    }
}

impl std::fmt::Debug for VendorCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VendorCloud")
            .field("product", &self.product)
            .finish()
    }
}

/// A uniform draw in [0, 1) that is a pure function of `(seed, label)`.
fn unit_draw(seed: u64, label: &str) -> f64 {
    (filterwatch_netsim::rng::mix(seed, label) >> 11) as f64 / (1u64 << 53) as f64
}

fn registrable(host: &str) -> String {
    let host = host.to_ascii_lowercase();
    if host.chars().all(|c| c.is_ascii_digit() || c == '.') {
        return host;
    }
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() <= 2 {
        host
    } else {
        labels[labels.len() - 2..].join(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(text: &str) -> Url {
        Url::parse(text).unwrap()
    }

    fn cloud() -> VendorCloud {
        VendorCloud::new(ProductKind::SmartFilter, 7)
    }

    #[test]
    fn seeded_entries_visible_immediately() {
        let c = cloud();
        c.seed_categorization("proxyhub.example", "Anonymizers");
        let cats = c.lookup(&url("http://www.proxyhub.example/"), SimTime::ZERO);
        assert!(cats.contains("Anonymizers"));
    }

    #[test]
    fn submission_applies_after_review_delay() {
        let c = cloud();
        c.register_site_profile("starwasher.info", Category::AnonymizersProxies);
        let receipt = c.submit(
            &url("http://starwasher.info/"),
            SubmitterProfile::NAIVE,
            SimTime::ZERO,
        );
        assert!(receipt.accepted, "{}", receipt.reason);
        let visible = receipt.visible_after.unwrap();
        assert!(
            (3..=4).contains(&visible.days()),
            "delay {} days",
            visible.days()
        );
        assert_eq!(receipt.category.as_deref(), Some("Anonymizers"));

        // Before the review completes: uncategorized.
        assert!(c
            .lookup(&url("http://starwasher.info/"), SimTime::from_days(1))
            .is_empty());
        // After: categorized.
        let after = c.lookup(&url("http://starwasher.info/"), SimTime::from_days(5));
        assert!(after.contains("Anonymizers"));
    }

    #[test]
    fn submission_for_unknown_site_rejected() {
        let c = cloud();
        let receipt = c.submit(
            &url("http://ghost.info/"),
            SubmitterProfile::NAIVE,
            SimTime::ZERO,
        );
        assert!(!receipt.accepted);
        assert!(receipt.reason.contains("reviewer"));
    }

    #[test]
    fn evasion_policy_rejects_flaggable_submitters() {
        let c = cloud();
        c.register_site_profile("target.info", Category::Pornography);
        c.set_reject_flaggable(true);
        let naive = c.submit(
            &url("http://target.info/"),
            SubmitterProfile::NAIVE,
            SimTime::ZERO,
        );
        assert!(!naive.accepted);
        let covert = c.submit(
            &url("http://target.info/"),
            SubmitterProfile::COVERT,
            SimTime::ZERO,
        );
        assert!(covert.accepted, "{}", covert.reason);
    }

    #[test]
    fn frozen_lookup_hides_later_entries() {
        let c = cloud();
        c.seed_categorization_at("newsite.info", "Pornography", SimTime::from_days(10));
        // A deployment frozen at day 5 never sees it.
        assert!(c
            .lookup(&url("http://newsite.info/"), SimTime::from_days(5))
            .is_empty());
        assert!(!c
            .lookup(&url("http://newsite.info/"), SimTime::from_days(10))
            .is_empty());
    }

    #[test]
    fn crawl_queue_categorizes_known_sites_eventually() {
        let c = VendorCloud::new(ProductKind::Netsweeper, 3);
        c.register_site_profile("freshproxy.info", Category::AnonymizersProxies);
        c.queue_for_categorization("www.freshproxy.info", SimTime::ZERO);
        // Unknown host: silently ignored.
        c.queue_for_categorization("nothing.example", SimTime::ZERO);

        let later = SimTime::from_days(10);
        let cats = c.lookup_host("freshproxy.info", later);
        // Crawl categorization is deterministic by default.
        assert!(cats.contains("Proxy Anonymizer"), "cats: {cats:?}");
        assert!(c.lookup_host("nothing.example", later).is_empty());
    }

    #[test]
    fn crawl_queue_is_idempotent() {
        let c = VendorCloud::new(ProductKind::Netsweeper, 3);
        c.register_site_profile("dup.info", Category::Pornography);
        c.queue_for_categorization("dup.info", SimTime::ZERO);
        c.queue_for_categorization("dup.info", SimTime::ZERO);
        let crawls = c
            .intake_log()
            .iter()
            .filter(|r| r.source == "crawl")
            .count();
        assert_eq!(crawls, 1);
    }

    #[test]
    fn path_keys_take_precedence() {
        let c = VendorCloud::new(ProductKind::Netsweeper, 1);
        c.seed_categorization(
            "denypagetests.netsweeper.com/category/catno/23",
            "Pornography",
        );
        c.seed_categorization(
            "denypagetests.netsweeper.com/category/catno/36",
            "Proxy Anonymizer",
        );
        let t = SimTime::ZERO;
        assert!(c
            .lookup(
                &url("http://denypagetests.netsweeper.com/category/catno/23"),
                t
            )
            .contains("Pornography"));
        assert!(c
            .lookup(
                &url("http://denypagetests.netsweeper.com/category/catno/36"),
                t
            )
            .contains("Proxy Anonymizer"));
        // The bare host is uncategorized.
        assert!(c
            .lookup(&url("http://denypagetests.netsweeper.com/"), t)
            .is_empty());
    }

    #[test]
    fn registrable_domain_granularity() {
        let c = cloud();
        c.seed_categorization("gallery.info", "Pornography");
        // Any subdomain of the registrable domain is covered.
        assert!(!c
            .lookup(&url("http://cdn.img.gallery.info/x.jpg"), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn acceptance_rate_zero_rejects() {
        let c = cloud();
        c.register_site_profile("a.info", Category::Pornography);
        c.set_acceptance_rate(0.0);
        // gen_bool(0.0) is invalid; acceptance>=1.0 shortcut used, so 0.0 must sample.
        let r = c.submit(
            &url("http://a.info/"),
            SubmitterProfile::NAIVE,
            SimTime::ZERO,
        );
        assert!(!r.accepted);
    }

    #[test]
    fn db_size_and_log() {
        let c = cloud();
        c.seed_categorization("x.info", "Pornography");
        c.register_site_profile("y.info", Category::Pornography);
        c.submit(
            &url("http://y.info/"),
            SubmitterProfile::NAIVE,
            SimTime::ZERO,
        );
        assert_eq!(c.db_size(SimTime::ZERO), 1);
        assert_eq!(c.db_size(SimTime::from_days(6)), 2);
        assert_eq!(c.intake_log().len(), 1);
    }
}
