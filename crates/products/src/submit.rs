//! Submitter identity — the evasion battleground of §6.2.
//!
//! Vendors who want to disregard researcher submissions can key on
//! (1) the submitting IP / e-mail address, or (2) the hosting service
//! behind the submitted domains. The paper's counters: submit via
//! proxies/Tor with throwaway webmail, and host the controlled domains
//! on a popular cloud provider whose domains are too damaging to
//! blanket-reject.

/// How a submission presents to the vendor's intake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitterProfile {
    /// Submitted through a proxy or Tor (hides the research lab's IP).
    pub via_proxy: bool,
    /// Used a throwaway free-webmail address (hides the lab's e-mail).
    pub webmail_address: bool,
    /// The submitted domain sits on a popular cloud/hosting provider
    /// (rejecting the provider wholesale would damage the vendor's DB).
    pub popular_hosting: bool,
}

impl SubmitterProfile {
    /// The naive profile: institutional IP, institutional e-mail, niche
    /// hosting. Fine against vendors who accept everything.
    pub const NAIVE: SubmitterProfile = SubmitterProfile {
        via_proxy: false,
        webmail_address: false,
        popular_hosting: false,
    };

    /// The §6.2 counter-evasion profile: proxied submission, webmail,
    /// popular hosting. Survives vendors that try to flag researchers.
    pub const COVERT: SubmitterProfile = SubmitterProfile {
        via_proxy: true,
        webmail_address: true,
        popular_hosting: true,
    };

    /// Whether a vendor applying the Table 5 counter-measures could link
    /// this submission to the research effort and disregard it.
    pub fn is_flaggable(&self) -> bool {
        !self.via_proxy || !self.webmail_address || !self.popular_hosting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_is_flaggable_covert_is_not() {
        assert!(SubmitterProfile::NAIVE.is_flaggable());
        assert!(!SubmitterProfile::COVERT.is_flaggable());
    }

    #[test]
    fn any_single_leak_is_flaggable() {
        for (via_proxy, webmail_address, popular_hosting) in [
            (false, true, true),
            (true, false, true),
            (true, true, false),
        ] {
            let p = SubmitterProfile {
                via_proxy,
                webmail_address,
                popular_hosting,
            };
            assert!(p.is_flaggable(), "{p:?}");
        }
    }
}
