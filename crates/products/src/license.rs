//! Shared deployment mechanics: license pools and frozen subscriptions.
//!
//! §4.4 Challenge 2: "prior work by the ONI observed a Yemeni ISP using
//! Websense with a limited number of concurrent user licenses. When the
//! number of users exceeded the number of licenses no content would be
//! filtered." The same inconsistency shows up with Netsweeper in Yemen.
//! [`LicensePool`] models it: each flow samples the current concurrent
//! user count from a seeded generator; when it exceeds the licensed
//! count, the filter waves traffic through.

use filterwatch_netsim::SimTime;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;

/// A concurrent-user license pool with fluctuating demand.
#[derive(Debug)]
pub struct LicensePool {
    licensed: u32,
    peak_demand: u32,
    rng: Mutex<StdRng>,
}

impl LicensePool {
    /// A pool licensed for `licensed` users with demand fluctuating
    /// uniformly in `0..=peak_demand`.
    pub fn new(licensed: u32, peak_demand: u32, seed: u64, label: &str) -> Self {
        assert!(peak_demand > 0);
        LicensePool {
            licensed,
            peak_demand,
            rng: Mutex::new(filterwatch_netsim::rng::labelled_rng(
                seed,
                &format!("license/{label}"),
            )),
        }
    }

    /// Sample the pool once: is filtering currently offline because
    /// demand exceeds the licensed count?
    pub fn filtering_offline(&self) -> bool {
        let demand = self.rng.lock().gen_range(0..=self.peak_demand);
        demand > self.licensed
    }

    /// The long-run fraction of flows that bypass filtering.
    pub fn expected_bypass_rate(&self) -> f64 {
        if self.licensed >= self.peak_demand {
            0.0
        } else {
            f64::from(self.peak_demand - self.licensed) / f64::from(self.peak_demand + 1)
        }
    }
}

/// The database view time for a deployment: `now`, clamped to the
/// subscription freeze date if updates were discontinued (Websense pulled
/// Yemen's updates in 2009 \[35\]).
pub fn effective_db_time(now: SimTime, frozen_at: Option<SimTime>) -> SimTime {
    match frozen_at {
        Some(freeze) if freeze < now => freeze,
        _ => now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ample_licenses_never_bypass() {
        let pool = LicensePool::new(100, 50, 1, "t");
        for _ in 0..200 {
            assert!(!pool.filtering_offline());
        }
        assert_eq!(pool.expected_bypass_rate(), 0.0);
    }

    #[test]
    fn zero_licenses_mostly_bypass() {
        let pool = LicensePool::new(0, 10, 1, "t");
        let offline = (0..1000).filter(|_| pool.filtering_offline()).count();
        assert!(offline > 800, "offline {offline}");
    }

    #[test]
    fn tight_pool_flip_flops() {
        let pool = LicensePool::new(5, 10, 42, "yemen");
        let samples: Vec<bool> = (0..100).map(|_| pool.filtering_offline()).collect();
        assert!(samples.iter().any(|&b| b));
        assert!(samples.iter().any(|&b| !b));
    }

    #[test]
    fn deterministic_per_seed_and_label() {
        let a: Vec<bool> = {
            let p = LicensePool::new(5, 10, 7, "x");
            (0..20).map(|_| p.filtering_offline()).collect()
        };
        let b: Vec<bool> = {
            let p = LicensePool::new(5, 10, 7, "x");
            (0..20).map(|_| p.filtering_offline()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn effective_db_time_clamps() {
        let now = SimTime::from_days(10);
        assert_eq!(effective_db_time(now, None), now);
        assert_eq!(
            effective_db_time(now, Some(SimTime::from_days(4))),
            SimTime::from_days(4)
        );
        assert_eq!(effective_db_time(now, Some(SimTime::from_days(20))), now);
    }
}
