//! Vendor submission portals as HTTP services.
//!
//! The paper's confirmation lever is a *public web interface*: McAfee's
//! TrustedSource URL ticketing, Blue Coat's Site Review, Netsweeper's
//! "test-a-site" [20], Websense's CSI. [`SubmissionPortal`] models that
//! front end: an HTTP form handler that derives the submitter's profile
//! from the request itself — source address and contact e-mail — and
//! files the submission with the vendor cloud.
//!
//! This is where the §6.2 cat-and-mouse plays out concretely: a vendor
//! screening researchers keys on (1) the submitting IP (defeated by
//! proxies/Tor — i.e. by *not* submitting from the known research lab
//! prefix) and (2) the e-mail address (defeated by throwaway webmail).
//! The hosting-provider signal is a property of the submitted domain,
//! which the portal receives as vetted metadata from the cloud's
//! reviewer side.

use std::sync::Arc;

use filterwatch_http::{html, Method, Request, Response, Status, Url};
use filterwatch_netsim::{Cidr, Service, ServiceCtx};

use crate::cloud::VendorCloud;
use crate::submit::SubmitterProfile;

/// Webmail domains whose addresses a vendor cannot attribute.
const WEBMAIL_DOMAINS: &[&str] = &["freemail.example", "webmail.example", "quickpost.example"];

/// The vendor's public URL-submission web form.
pub struct SubmissionPortal {
    cloud: Arc<VendorCloud>,
    /// Prefixes the vendor associates with the research effort
    /// (submissions sourced here are attributable).
    research_prefixes: Vec<Cidr>,
    /// Prefixes of popular cloud/hosting providers (domains hosted here
    /// are too damaging to blanket-reject).
    popular_hosting_prefixes: Vec<Cidr>,
}

impl SubmissionPortal {
    /// A portal filing into `cloud`.
    pub fn new(cloud: Arc<VendorCloud>) -> Self {
        SubmissionPortal {
            cloud,
            research_prefixes: Vec::new(),
            popular_hosting_prefixes: Vec::new(),
        }
    }

    /// Mark a prefix as belonging to the research effort (the vendor's
    /// screening list).
    pub fn with_research_prefix(mut self, cidr: Cidr) -> Self {
        self.research_prefixes.push(cidr);
        self
    }

    /// Mark a prefix as a popular hosting provider.
    pub fn with_popular_hosting_prefix(mut self, cidr: Cidr) -> Self {
        self.popular_hosting_prefixes.push(cidr);
        self
    }

    /// Derive the submitter profile the vendor would infer from this
    /// request: who sent it, from where, hosting what.
    fn infer_profile(
        &self,
        req: &Request,
        ctx: &ServiceCtx,
        host_ip: Option<&str>,
    ) -> SubmitterProfile {
        let via_proxy = !self
            .research_prefixes
            .iter()
            .any(|p| p.contains(ctx.client_ip));
        let webmail_address = req
            .form_field("email")
            .map(|e| {
                WEBMAIL_DOMAINS
                    .iter()
                    .any(|d| e.to_ascii_lowercase().ends_with(d))
            })
            .unwrap_or(false);
        let popular_hosting =
            match host_ip.and_then(|t| t.parse::<filterwatch_netsim::IpAddr>().ok()) {
                Some(ip) => self.popular_hosting_prefixes.iter().any(|p| p.contains(ip)),
                // Unknown hosting: give the submitter the benefit of the
                // doubt (the vendor cannot key on what it cannot resolve).
                None => true,
            };
        SubmitterProfile {
            via_proxy,
            webmail_address,
            popular_hosting,
        }
    }
}

impl Service for SubmissionPortal {
    fn handle(&self, req: &Request, ctx: &ServiceCtx) -> Response {
        match (req.method, req.url.path()) {
            (Method::Get, "/") | (Method::Get, "/submit") => Response::html(html::page(
                &format!("{} URL Submission", self.cloud.product().name()),
                "<h1>Submit a site for review</h1>\
                 <form method=\"post\" action=\"/submit\">\
                 <input name=\"url\"/><input name=\"email\"/>\
                 <input name=\"host_ip\" type=\"hidden\"/>\
                 <input type=\"submit\" value=\"Submit\"/></form>",
            )),
            (Method::Post, "/submit") => {
                let Some(url_text) = req.form_field("url") else {
                    return Response::text(Status::BAD_REQUEST, "missing url field");
                };
                let Ok(url) = Url::parse(&url_text) else {
                    return Response::text(Status::BAD_REQUEST, "unparseable url");
                };
                let host_ip = req.form_field("host_ip");
                let profile = self.infer_profile(req, ctx, host_ip.as_deref());
                let receipt = self.cloud.submit(&url, profile, ctx.now);
                // Vendors acknowledge politely regardless of the
                // internal decision — the researcher only learns the
                // outcome by retesting.
                let _ = receipt;
                Response::html(html::page(
                    "Submission received",
                    "<p>Thank you. Your submission will be reviewed.</p>",
                ))
            }
            _ => Response::not_found(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_netsim::SimTime;
    use filterwatch_urllists::Category;

    fn setup(reject: bool) -> (Arc<VendorCloud>, SubmissionPortal) {
        let cloud = Arc::new(VendorCloud::new(crate::ProductKind::SmartFilter, 5));
        cloud.register_site_profile("target.info", Category::Pornography);
        cloud.set_reject_flaggable(reject);
        let portal = SubmissionPortal::new(Arc::clone(&cloud))
            .with_research_prefix("9.9.9.0/24".parse().unwrap())
            .with_popular_hosting_prefix("5.0.4.0/22".parse().unwrap());
        (cloud, portal)
    }

    fn ctx(client: &str) -> ServiceCtx {
        ServiceCtx {
            now: SimTime::ZERO,
            client_ip: client.parse().unwrap(),
        }
    }

    fn submit_req(email: &str, host_ip: &str) -> Request {
        Request::post_form(
            Url::parse("http://portal.vendor.example/submit").unwrap(),
            &format!("url=http://target.info/&email={email}&host_ip={host_ip}"),
        )
    }

    #[test]
    fn form_page_served() {
        let (_, portal) = setup(false);
        let resp = portal.handle(
            &Request::get(Url::parse("http://portal.vendor.example/").unwrap()),
            &ctx("1.2.3.4"),
        );
        assert!(resp.body_text().contains("Submit a site"));
    }

    #[test]
    fn accepted_submission_lands_in_cloud() {
        let (cloud, portal) = setup(false);
        let resp = portal.handle(
            &submit_req("a@freemail.example", "5.0.4.1"),
            &ctx("1.2.3.4"),
        );
        assert!(resp.status.is_success());
        let later = SimTime::from_days(10);
        assert!(!cloud
            .lookup(&Url::parse("http://target.info/").unwrap(), later)
            .is_empty());
    }

    #[test]
    fn screening_vendor_flags_lab_sourced_submissions() {
        let (cloud, portal) = setup(true);
        // Submitted straight from the research prefix with an
        // institutional address: silently disregarded.
        let _ = portal.handle(&submit_req("a@university.edu", "5.0.4.1"), &ctx("9.9.9.7"));
        assert!(cloud
            .lookup(
                &Url::parse("http://target.info/").unwrap(),
                SimTime::from_days(10)
            )
            .is_empty());
        // Same submission, proxied and from webmail: accepted.
        let _ = portal.handle(&submit_req("a@webmail.example", "5.0.4.1"), &ctx("7.7.7.7"));
        assert!(!cloud
            .lookup(
                &Url::parse("http://target.info/").unwrap(),
                SimTime::from_days(10)
            )
            .is_empty());
    }

    #[test]
    fn screening_vendor_flags_niche_hosting() {
        let (cloud, portal) = setup(true);
        // Covert submitter but the domain sits on unknown niche space.
        let _ = portal.handle(&submit_req("a@webmail.example", "8.8.1.1"), &ctx("7.7.7.7"));
        assert!(cloud
            .lookup(
                &Url::parse("http://target.info/").unwrap(),
                SimTime::from_days(10)
            )
            .is_empty());
    }

    #[test]
    fn malformed_submissions_rejected() {
        let (_, portal) = setup(false);
        let bad = Request::post_form(
            Url::parse("http://portal.vendor.example/submit").unwrap(),
            "email=x@y.example",
        );
        assert_eq!(
            portal.handle(&bad, &ctx("1.2.3.4")).status,
            Status::BAD_REQUEST
        );
        let unparseable = Request::post_form(
            Url::parse("http://portal.vendor.example/submit").unwrap(),
            "url=ht!tp://bro ken/",
        );
        assert_eq!(
            portal.handle(&unparseable, &ctx("1.2.3.4")).status,
            Status::BAD_REQUEST
        );
    }

    #[test]
    fn portal_acknowledges_without_leaking_decision() {
        // Whether screened or not, the page looks the same (§4.2: the
        // researcher learns the outcome only by retesting).
        let (_, accepting) = setup(false);
        let (_, screening) = setup(true);
        let ok = accepting.handle(
            &submit_req("a@freemail.example", "5.0.4.1"),
            &ctx("1.1.1.1"),
        );
        let silently_dropped =
            screening.handle(&submit_req("a@university.edu", "5.0.4.1"), &ctx("9.9.9.1"));
        assert_eq!(ok.body_text(), silently_dropped.body_text());
    }
}
