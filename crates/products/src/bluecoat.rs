//! Blue Coat ProxySG (Web proxy) + WebFilter (URL filter).
//!
//! Table 2 signatures: Shodan keywords `"proxysg"` and `"cfru="`; WhatWeb
//! validation via a `Location` header pointing at `www.cfauth.com`. Blue
//! Coat deployments redirect blocked requests to the cfauth portal with
//! the original URL base64-encoded in the `cfru` parameter.
//!
//! §4.5 (Challenge 3) shows the product is often deployed as *plain
//! traffic-management proxy* with filtering delegated to SmartFilter —
//! modelled here as a [`FilterPolicy::allow_all`] policy with response
//! annotation still on.

use std::sync::Arc;

use filterwatch_http::{html, Request, Response, Status};
use filterwatch_netsim::{FlowCtx, Middlebox, Service, ServiceCtx, SimTime, Verdict};

use crate::blockpage::{base64, base64_decode, explicit_block_page};
use crate::cloud::VendorCloud;
use crate::license::effective_db_time;
use crate::policy::FilterPolicy;

/// A ProxySG appliance on an ISP's egress path.
pub struct BlueCoatProxy {
    name: String,
    cloud: Arc<VendorCloud>,
    policy: FilterPolicy,
    annotate_responses: bool,
    strip_branding: bool,
    frozen_at: Option<SimTime>,
}

impl BlueCoatProxy {
    /// A proxy filtering with `policy` against `cloud`'s WebFilter DB.
    pub fn new(name: &str, cloud: Arc<VendorCloud>, policy: FilterPolicy) -> Self {
        BlueCoatProxy {
            name: name.to_string(),
            cloud,
            policy,
            annotate_responses: true,
            strip_branding: false,
            frozen_at: None,
        }
    }

    /// A pure traffic-management deployment: proxies and annotates but
    /// never blocks (the Etisalat configuration of §4.5).
    pub fn traffic_management_only(name: &str, cloud: Arc<VendorCloud>) -> Self {
        BlueCoatProxy::new(name, cloud, FilterPolicy::allow_all())
    }

    /// Remove vendor branding (no cfauth redirect, generic block page,
    /// no Via annotation).
    pub fn with_stripped_branding(mut self) -> Self {
        self.strip_branding = true;
        self.annotate_responses = false;
        self
    }

    /// Freeze the WebFilter update subscription (Syria sanctions, §2.2).
    pub fn with_frozen_subscription(mut self, at: SimTime) -> Self {
        self.frozen_at = Some(at);
        self
    }

    /// The blocking policy in force.
    pub fn policy(&self) -> &FilterPolicy {
        &self.policy
    }
}

impl Middlebox for BlueCoatProxy {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_request(&self, req: &Request, ctx: &FlowCtx) -> Verdict {
        let as_of = effective_db_time(ctx.now, self.frozen_at);
        let cats = self.cloud.lookup(&req.url, as_of);
        match self.policy.decide(&req.url.registrable_domain(), &cats) {
            Some(category) => {
                if self.strip_branding {
                    Verdict::respond(explicit_block_page(
                        "Access Denied",
                        "Access restricted by network policy",
                        &req.url.to_string(),
                        &category,
                    ))
                } else {
                    let cfru = base64(req.url.to_string().as_bytes());
                    Verdict::respond(Response::redirect(&format!(
                        "http://www.cfauth.com/?cfru={cfru}"
                    )))
                }
            }
            None => Verdict::Forward,
        }
    }

    fn process_response(&self, _req: &Request, resp: Response, _ctx: &FlowCtx) -> Response {
        if self.annotate_responses && !self.strip_branding {
            let mut resp = resp;
            resp.headers
                .append("Via", format!("1.1 {} (Blue Coat ProxySG)", self.name));
            resp.headers.append("X-BlueCoat-Via", short_id(&self.name));
            resp
        } else {
            resp
        }
    }
}

/// Stable eight-hex-character appliance identifier, as ProxySG emits in
/// `X-BlueCoat-Via`.
fn short_id(name: &str) -> String {
    format!("{:08x}", filterwatch_netsim::rng::mix(0, name) as u32)
}

/// The externally visible ProxySG management console.
#[derive(Debug, Clone, Default)]
pub struct ProxySgConsole;

impl Service for ProxySgConsole {
    fn handle(&self, req: &Request, _ctx: &ServiceCtx) -> Response {
        if req.url.path() == "/" || req.url.path().starts_with("/Secure") {
            Response::html(html::page(
                "Blue Coat ProxySG - Management Console",
                "<h1>ProxySG</h1><p>Administrative interface. Authentication required.</p>",
            ))
            .with_status(Status::UNAUTHORIZED)
            .with_header("Server", "ProxySG")
            .with_header("WWW-Authenticate", "Basic realm=\"ProxySG Console\"")
        } else {
            Response::not_found()
        }
    }
}

/// The ProxySG intercept port (8080): a proxy answering a direct GET
/// with its coaching/authentication redirect — the behaviour that put
/// `cfru=` strings into Shodan's index.
#[derive(Debug, Clone, Default)]
pub struct ProxySgIntercept;

impl Service for ProxySgIntercept {
    fn handle(&self, req: &Request, _ctx: &ServiceCtx) -> Response {
        let cfru = base64(req.url.to_string().as_bytes());
        Response::redirect(&format!("http://www.cfauth.com/?cfru={cfru}"))
            .with_header("Server", "ProxySG")
    }
}

/// The `www.cfauth.com` block-page portal blocked requests redirect to.
#[derive(Debug, Clone, Default)]
pub struct CfAuthPortal;

impl Service for CfAuthPortal {
    fn handle(&self, req: &Request, _ctx: &ServiceCtx) -> Response {
        let original = req
            .url
            .query_param("cfru")
            .and_then(base64_decode)
            .map(|b| String::from_utf8_lossy(&b).into_owned())
            .unwrap_or_else(|| "(unknown)".to_string());
        Response::html(html::page(
            "Blue Coat WebFilter - Access Denied",
            &format!(
                "<h1>Access Denied</h1>\
                 <p>Your request for <code>{}</code> was denied by Blue Coat WebFilter policy.</p>",
                html::escape(&original)
            ),
        ))
        .with_status(Status::FORBIDDEN)
        .with_header("Server", "Blue Coat Systems")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_http::Url;

    fn flow() -> FlowCtx {
        FlowCtx {
            now: SimTime::ZERO,
            client_ip: "5.0.0.10".parse().unwrap(),
        }
    }

    fn cloud() -> Arc<VendorCloud> {
        let c = Arc::new(VendorCloud::new(crate::ProductKind::BlueCoat, 5));
        c.seed_categorization("proxyhub.example", "Proxy Avoidance");
        c
    }

    #[test]
    fn blocking_redirects_to_cfauth_with_cfru() {
        let bc = BlueCoatProxy::new("bc1", cloud(), FilterPolicy::blocking(["Proxy Avoidance"]));
        let url = Url::parse("http://proxyhub.example/").unwrap();
        let Verdict::Respond(resp) = bc.process_request(&Request::get(url.clone()), &flow()) else {
            panic!("expected redirect")
        };
        assert!(resp.status.is_redirect());
        let loc = resp.location().unwrap();
        assert!(loc.starts_with("http://www.cfauth.com/?cfru="));
        let cfru = loc.split("cfru=").nth(1).unwrap();
        let decoded = String::from_utf8(base64_decode(cfru).unwrap()).unwrap();
        assert_eq!(decoded, "http://proxyhub.example/");
    }

    #[test]
    fn traffic_management_only_never_blocks_but_annotates() {
        let bc = BlueCoatProxy::traffic_management_only("etisalat-psg", cloud());
        let req = Request::get(Url::parse("http://proxyhub.example/").unwrap());
        assert_eq!(bc.process_request(&req, &flow()), Verdict::Forward);
        let resp = bc.process_response(&req, Response::new(Status::OK), &flow());
        assert!(resp
            .headers
            .get("Via")
            .unwrap()
            .contains("Blue Coat ProxySG"));
        assert!(resp.headers.contains("X-BlueCoat-Via"));
    }

    #[test]
    fn stripped_branding_hides_everything() {
        let bc = BlueCoatProxy::new("bc", cloud(), FilterPolicy::blocking(["Proxy Avoidance"]))
            .with_stripped_branding();
        let req = Request::get(Url::parse("http://proxyhub.example/").unwrap());
        let Verdict::Respond(resp) = bc.process_request(&req, &flow()) else {
            panic!("expected block")
        };
        assert!(resp.location().is_none());
        assert!(!resp.body_text().contains("Blue Coat"));
        let annotated = bc.process_response(&req, Response::new(Status::OK), &flow());
        assert!(!annotated.headers.contains("Via"));
    }

    #[test]
    fn intercept_port_emits_cfru_redirect() {
        let resp = ProxySgIntercept.handle(
            &Request::get(Url::parse("http://1.2.3.4:8080/").unwrap()),
            &ServiceCtx {
                now: SimTime::ZERO,
                client_ip: "198.51.100.1".parse().unwrap(),
            },
        );
        assert!(resp.status.is_redirect());
        let loc = resp.location().unwrap();
        assert!(loc.contains("www.cfauth.com"));
        assert!(loc.contains("cfru="));
    }

    #[test]
    fn console_banner_says_proxysg() {
        let resp = ProxySgConsole.handle(
            &Request::get(Url::parse("http://1.2.3.4/").unwrap()),
            &ServiceCtx {
                now: SimTime::ZERO,
                client_ip: "198.51.100.1".parse().unwrap(),
            },
        );
        assert!(resp.banner().to_ascii_lowercase().contains("proxysg"));
        assert!(resp.title().unwrap().contains("ProxySG"));
    }

    #[test]
    fn cfauth_portal_echoes_original_url() {
        let cfru = base64(b"http://blocked.example/page");
        let resp = CfAuthPortal.handle(
            &Request::get(Url::parse(&format!("http://www.cfauth.com/?cfru={cfru}")).unwrap()),
            &ServiceCtx {
                now: SimTime::ZERO,
                client_ip: "5.0.0.1".parse().unwrap(),
            },
        );
        assert_eq!(resp.status, Status::FORBIDDEN);
        assert!(resp.body_text().contains("blocked.example/page"));
        // Garbage cfru is tolerated.
        let junk = CfAuthPortal.handle(
            &Request::get(Url::parse("http://www.cfauth.com/?cfru=!!!").unwrap()),
            &ServiceCtx {
                now: SimTime::ZERO,
                client_ip: "5.0.0.1".parse().unwrap(),
            },
        );
        assert!(junk.body_text().contains("(unknown)"));
    }

    #[test]
    fn short_id_is_stable() {
        assert_eq!(short_id("a"), short_id("a"));
        assert_ne!(short_id("a"), short_id("b"));
        assert_eq!(short_id("x").len(), 8);
    }
}
