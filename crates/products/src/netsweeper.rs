//! Netsweeper Content Filtering.
//!
//! Table 2 signatures: Shodan keywords `"netsweeper"`, `"webadmin"`,
//! `"webadmin/deny"`, `"8080/webadmin/"`; WhatWeb has built-in detection
//! of the WebAdmin console. Blocked requests are redirected to the
//! deployment's deny page at `:8080/webadmin/deny`.
//!
//! Two behaviours from §4.4 are modelled explicitly:
//!
//! * **In-country categorization queueing** — "we have observed
//!   Netsweeper queuing Web sites for categorization once they have been
//!   accessed within the country". With [`NetsweeperBox::with_queueing`],
//!   every uncategorized URL a client fetches is pushed to the vendor's
//!   crawl queue, which is why the paper could not pre-verify
//!   accessibility before submitting.
//! * **License-limited filtering** — via
//!   `LicensePool`, reproducing Yemen's
//!   intermittent "offline" filtering.
//!
//! The module also provides the operator-facing **category test site**
//! (`denypagetests.netsweeper.com/category/catno/N` for the 66 numbered
//! categories) the paper used to enumerate YemenNet's blocked categories.

use std::sync::Arc;

use filterwatch_http::{html, Request, Response, Status};
use filterwatch_netsim::{FlowCtx, Middlebox, Service, ServiceCtx, SimTime, Verdict};

use crate::blockpage::explicit_block_page;
use crate::cloud::VendorCloud;
use crate::license::{effective_db_time, LicensePool};
use crate::policy::FilterPolicy;
use crate::taxonomy::{netsweeper_category_name, netsweeper_catno, NETSWEEPER_CATEGORIES};

/// Canonical hostname of the category test site.
pub const DENYPAGETESTS_HOST: &str = "denypagetests.netsweeper.com";

/// A Netsweeper deployment on an ISP's egress path.
pub struct NetsweeperBox {
    name: String,
    cloud: Arc<VendorCloud>,
    policy: FilterPolicy,
    /// Host (name or address text) of the deployment's WebAdmin console,
    /// used as the deny-page redirect target.
    deny_host: String,
    queue_uncategorized: bool,
    license: Option<LicensePool>,
    strip_branding: bool,
    frozen_at: Option<SimTime>,
}

impl NetsweeperBox {
    /// A deployment redirecting blocked requests to
    /// `http://{deny_host}:8080/webadmin/deny`.
    pub fn new(name: &str, cloud: Arc<VendorCloud>, policy: FilterPolicy, deny_host: &str) -> Self {
        NetsweeperBox {
            name: name.to_string(),
            cloud,
            policy,
            deny_host: deny_host.to_string(),
            queue_uncategorized: false,
            license: None,
            strip_branding: false,
            frozen_at: None,
        }
    }

    /// Enable in-country categorization queueing (§4.4).
    pub fn with_queueing(mut self) -> Self {
        self.queue_uncategorized = true;
        self
    }

    /// Limit filtering to a concurrent-user license pool (§4.4 Challenge 2).
    pub fn with_license_pool(mut self, pool: LicensePool) -> Self {
        self.license = Some(pool);
        self
    }

    /// Remove vendor branding from deny redirects (§6 evasion): blocked
    /// requests get a generic in-line block page instead.
    pub fn with_stripped_branding(mut self) -> Self {
        self.strip_branding = true;
        self
    }

    /// Freeze the categorization feed at `at`.
    pub fn with_frozen_subscription(mut self, at: SimTime) -> Self {
        self.frozen_at = Some(at);
        self
    }

    /// The blocking policy in force.
    pub fn policy(&self) -> &FilterPolicy {
        &self.policy
    }
}

impl Middlebox for NetsweeperBox {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_request(&self, req: &Request, ctx: &FlowCtx) -> Verdict {
        // License exhaustion: filtering silently offline for this flow.
        if let Some(pool) = &self.license {
            if pool.filtering_offline() {
                return Verdict::Forward;
            }
        }

        let as_of = effective_db_time(ctx.now, self.frozen_at);
        let cats = self.cloud.lookup(&req.url, as_of);
        match self.policy.decide(&req.url.registrable_domain(), &cats) {
            Some(category) => {
                if self.strip_branding {
                    return Verdict::respond(explicit_block_page(
                        "Web Page Blocked",
                        "This page is not available on this network",
                        &req.url.to_string(),
                        &category,
                    ));
                }
                let catno = netsweeper_catno(&category).unwrap_or(66);
                Verdict::respond(Response::redirect(&format!(
                    "http://{}:8080/webadmin/deny?dpid={catno}&dpruleid=1&cat={}&url={}",
                    self.deny_host,
                    category.replace(' ', "+"),
                    req.url
                )))
            }
            None => {
                if self.queue_uncategorized && cats.is_empty() {
                    self.cloud.queue_for_categorization(req.url.host(), ctx.now);
                }
                Verdict::Forward
            }
        }
    }
}

/// The WebAdmin console + deny-page service, bound on port 8080 of the
/// deployment's console host.
#[derive(Debug, Clone, Default)]
pub struct NetsweeperConsole;

impl Service for NetsweeperConsole {
    fn handle(&self, req: &Request, _ctx: &ServiceCtx) -> Response {
        let path = req.url.path();
        if path.starts_with("/webadmin/deny") {
            let category = req
                .url
                .query_param("dpid")
                .and_then(|d| d.parse::<u8>().ok())
                .and_then(netsweeper_category_name)
                .unwrap_or("Restricted");
            let url = req.url.query_param("url").unwrap_or("(unknown)");
            return Response::html(html::page(
                "Web Page Blocked",
                &format!(
                    "<h1>Web Page Blocked!</h1>\
                     <p>The page you have requested has been blocked: <code>{}</code></p>\
                     <p>Category: <b>{}</b></p>\
                     <p class=\"footer\">Powered by Netsweeper. \
                     If you believe the page is categorized in error, use the \
                     Netsweeper test-a-site service.</p>",
                    html::escape(url),
                    html::escape(category)
                ),
            ))
            .with_status(Status::FORBIDDEN)
            .with_header("Server", "netsweeper/5.1");
        }
        if path == "/webadmin" || path.starts_with("/webadmin/") {
            return Response::html(html::page(
                "Netsweeper WebAdmin",
                "<h1>Netsweeper WebAdmin</h1><p>Operator sign-in to the \
                 Netsweeper content filtering policy manager (8080/webadmin/). \
                 Deny page template: /webadmin/deny</p>",
            ))
            .with_status(Status::UNAUTHORIZED)
            .with_header("Server", "netsweeper/5.1");
        }
        if path == "/" {
            return Response::redirect("/webadmin/");
        }
        Response::not_found()
    }
}

/// The vendor's category test site: 66 pages, one per numbered category,
/// each pre-categorized in the vendor database so that a correctly
/// functioning deployment blocks exactly the pages whose categories the
/// operator enabled.
#[derive(Debug, Clone, Default)]
pub struct DenyPageTestsSite;

impl Service for DenyPageTestsSite {
    fn handle(&self, req: &Request, _ctx: &ServiceCtx) -> Response {
        let path = req.url.path();
        if let Some(rest) = path.strip_prefix("/category/catno/") {
            if let Ok(n) = rest.trim_end_matches('/').parse::<u8>() {
                if let Some(name) = netsweeper_category_name(n) {
                    return Response::html(html::page(
                        &format!("Netsweeper Category Test {n}"),
                        &format!(
                            "<h1>Category test page</h1>\
                             <p>This page is categorized as <b>{}</b> (catno {n}).</p>\
                             <p>If you can read this, your deployment does not \
                             block this category.</p>",
                            html::escape(name)
                        ),
                    ));
                }
            }
            return Response::not_found();
        }
        if path == "/" {
            let mut list = String::new();
            for (i, name) in NETSWEEPER_CATEGORIES.iter().enumerate() {
                list.push_str(&format!(
                    "<li><a href=\"/category/catno/{}\">{}</a></li>\n",
                    i + 1,
                    html::escape(name)
                ));
            }
            return Response::html(html::page(
                "Netsweeper Deny Page Tests",
                &format!("<h1>Category test pages</h1><ol>{list}</ol>"),
            ));
        }
        Response::not_found()
    }
}

/// Seed the vendor cloud with the test site's per-path categorizations
/// (done by the vendor when the site is stood up).
pub fn seed_denypagetests(cloud: &VendorCloud) {
    for (i, name) in NETSWEEPER_CATEGORIES.iter().enumerate() {
        cloud.seed_categorization(
            &format!("{DENYPAGETESTS_HOST}/category/catno/{}", i + 1),
            name,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_http::Url;
    use filterwatch_urllists::Category;

    fn flow(now: SimTime) -> FlowCtx {
        FlowCtx {
            now,
            client_ip: "5.0.0.10".parse().unwrap(),
        }
    }

    fn svc_ctx() -> ServiceCtx {
        ServiceCtx {
            now: SimTime::ZERO,
            client_ip: "5.0.0.10".parse().unwrap(),
        }
    }

    fn cloud() -> Arc<VendorCloud> {
        let c = Arc::new(VendorCloud::new(crate::ProductKind::Netsweeper, 5));
        c.seed_categorization("freeproxy.example", "Proxy Anonymizer");
        c
    }

    #[test]
    fn blocked_request_redirects_to_deny_page() {
        let ns = NetsweeperBox::new(
            "ns@ooredoo",
            cloud(),
            FilterPolicy::blocking(["Proxy Anonymizer"]),
            "gw.ooredoo.qa",
        );
        let Verdict::Respond(resp) = ns.process_request(
            &Request::get(Url::parse("http://freeproxy.example/").unwrap()),
            &flow(SimTime::ZERO),
        ) else {
            panic!("expected block")
        };
        let loc = resp.location().unwrap();
        assert!(
            loc.starts_with("http://gw.ooredoo.qa:8080/webadmin/deny?"),
            "{loc}"
        );
        assert!(loc.contains("dpid=36"), "{loc}"); // Proxy Anonymizer catno
    }

    #[test]
    fn queueing_pushes_unknown_hosts() {
        let c = cloud();
        c.register_site_profile("newproxy.info", Category::AnonymizersProxies);
        let ns = NetsweeperBox::new(
            "ns",
            Arc::clone(&c),
            FilterPolicy::blocking(["Proxy Anonymizer"]),
            "gw",
        )
        .with_queueing();
        let req = Request::get(Url::parse("http://newproxy.info/").unwrap());
        assert_eq!(
            ns.process_request(&req, &flow(SimTime::ZERO)),
            Verdict::Forward
        );
        // The access queued the site; days later it is blocked without
        // any submission.
        let later = flow(SimTime::from_days(10));
        assert!(
            matches!(ns.process_request(&req, &later), Verdict::Respond(_)),
            "queued site should eventually block"
        );
    }

    #[test]
    fn no_queueing_without_flag() {
        let c = cloud();
        c.register_site_profile("quiet.info", Category::AnonymizersProxies);
        let ns = NetsweeperBox::new(
            "ns",
            Arc::clone(&c),
            FilterPolicy::blocking(["Proxy Anonymizer"]),
            "gw",
        );
        let req = Request::get(Url::parse("http://quiet.info/").unwrap());
        ns.process_request(&req, &flow(SimTime::ZERO));
        assert_eq!(
            ns.process_request(&req, &flow(SimTime::from_days(10))),
            Verdict::Forward
        );
    }

    #[test]
    fn license_exhaustion_waves_traffic_through() {
        let ns = NetsweeperBox::new(
            "ns@yemen",
            cloud(),
            FilterPolicy::blocking(["Proxy Anonymizer"]),
            "gw",
        )
        .with_license_pool(LicensePool::new(0, 10, 1, "t"));
        // Licensed for zero users: almost every flow bypasses.
        let req = Request::get(Url::parse("http://freeproxy.example/").unwrap());
        let forwards = (0..100)
            .filter(|_| ns.process_request(&req, &flow(SimTime::ZERO)) == Verdict::Forward)
            .count();
        assert!(forwards > 80, "forwards {forwards}");
    }

    #[test]
    fn console_deny_page_has_signatures() {
        let resp = NetsweeperConsole.handle(
            &Request::get(
                Url::parse("http://gw:8080/webadmin/deny?dpid=23&url=http://x.info/").unwrap(),
            ),
            &svc_ctx(),
        );
        assert_eq!(resp.status, Status::FORBIDDEN);
        let text = resp.body_text();
        assert!(text.contains("Web Page Blocked"));
        assert!(text.contains("Pornography")); // dpid 23
        assert!(text.to_ascii_lowercase().contains("netsweeper"));
        assert!(resp.banner().to_ascii_lowercase().contains("netsweeper"));
    }

    #[test]
    fn console_login_and_root_redirect() {
        let login = NetsweeperConsole.handle(
            &Request::get(Url::parse("http://gw:8080/webadmin/").unwrap()),
            &svc_ctx(),
        );
        assert_eq!(login.status, Status::UNAUTHORIZED);
        assert!(login.body_text().contains("8080/webadmin/"));
        let root = NetsweeperConsole.handle(
            &Request::get(Url::parse("http://gw:8080/").unwrap()),
            &svc_ctx(),
        );
        assert_eq!(root.location(), Some("/webadmin/"));
    }

    #[test]
    fn denypagetests_site_serves_66_categories() {
        let site = DenyPageTestsSite;
        for n in [1u8, 23, 36, 66] {
            let resp = site.handle(
                &Request::get(
                    Url::parse(&format!("http://{DENYPAGETESTS_HOST}/category/catno/{n}")).unwrap(),
                ),
                &svc_ctx(),
            );
            assert!(resp.status.is_success(), "catno {n}");
            assert!(resp.body_text().contains(&format!("catno {n}")));
        }
        let missing = site.handle(
            &Request::get(
                Url::parse(&format!("http://{DENYPAGETESTS_HOST}/category/catno/67")).unwrap(),
            ),
            &svc_ctx(),
        );
        assert!(missing.status.is_error());
        let index = site.handle(
            &Request::get(Url::parse(&format!("http://{DENYPAGETESTS_HOST}/")).unwrap()),
            &svc_ctx(),
        );
        assert_eq!(index.body_text().matches("<li>").count(), 66);
    }

    #[test]
    fn seeded_denypagetests_block_per_category() {
        let c = cloud();
        seed_denypagetests(&c);
        let ns = NetsweeperBox::new(
            "ns",
            Arc::clone(&c),
            FilterPolicy::blocking(["Pornography"]),
            "gw",
        );
        let blocked = ns.process_request(
            &Request::get(
                Url::parse(&format!("http://{DENYPAGETESTS_HOST}/category/catno/23")).unwrap(),
            ),
            &flow(SimTime::ZERO),
        );
        assert!(matches!(blocked, Verdict::Respond(_)));
        let open = ns.process_request(
            &Request::get(
                Url::parse(&format!("http://{DENYPAGETESTS_HOST}/category/catno/30")).unwrap(),
            ),
            &flow(SimTime::ZERO),
        );
        assert_eq!(open, Verdict::Forward);
    }

    #[test]
    fn stripped_branding_blocks_inline() {
        let ns = NetsweeperBox::new(
            "ns",
            cloud(),
            FilterPolicy::blocking(["Proxy Anonymizer"]),
            "gw",
        )
        .with_stripped_branding();
        let Verdict::Respond(resp) = ns.process_request(
            &Request::get(Url::parse("http://freeproxy.example/").unwrap()),
            &flow(SimTime::ZERO),
        ) else {
            panic!("expected block")
        };
        assert!(resp.location().is_none());
        assert!(!resp.body_text().to_ascii_lowercase().contains("netsweeper"));
    }
}
