//! McAfee SmartFilter: software URL filter (McAfee Web Gateway family).
//!
//! Table 2 signatures: Shodan keywords `"mcafee web gateway"` and
//! `"url blocked"`; WhatWeb validation by a `Via-Proxy` header or an HTML
//! title containing "McAfee Web Gateway". The middlebox here emits both
//! unless the deployment strips branding (the §6 evasion tactic).

use std::sync::Arc;

use filterwatch_http::{html, Request, Response, Status};
use filterwatch_netsim::{FlowCtx, Middlebox, Service, ServiceCtx, SimTime, Verdict};

use crate::blockpage::explicit_block_page;
use crate::cloud::VendorCloud;
use crate::license::effective_db_time;
use crate::policy::FilterPolicy;

/// A SmartFilter deployment in an ISP's egress path.
pub struct SmartFilterBox {
    name: String,
    cloud: Arc<VendorCloud>,
    policy: FilterPolicy,
    strip_branding: bool,
    frozen_at: Option<SimTime>,
}

impl SmartFilterBox {
    /// A deployment using `cloud`'s database under `policy`.
    pub fn new(name: &str, cloud: Arc<VendorCloud>, policy: FilterPolicy) -> Self {
        SmartFilterBox {
            name: name.to_string(),
            cloud,
            policy,
            strip_branding: false,
            frozen_at: None,
        }
    }

    /// Remove vendor branding from block pages and headers (§6 evasion).
    pub fn with_stripped_branding(mut self) -> Self {
        self.strip_branding = true;
        self
    }

    /// Freeze the update subscription at `at` (no newer categorizations
    /// reach this box).
    pub fn with_frozen_subscription(mut self, at: SimTime) -> Self {
        self.frozen_at = Some(at);
        self
    }

    /// The blocking policy in force.
    pub fn policy(&self) -> &FilterPolicy {
        &self.policy
    }

    fn block_page(&self, url: &str, category: &str) -> Response {
        if self.strip_branding {
            explicit_block_page(
                "Notification",
                "Access restricted by network policy",
                url,
                category,
            )
        } else {
            explicit_block_page(
                "McAfee Web Gateway - Notification",
                "McAfee Web Gateway: URL Blocked by SmartFilter policy",
                url,
                category,
            )
            .with_header("Via-Proxy", "McAfee Web Gateway 7.3")
        }
    }
}

impl Middlebox for SmartFilterBox {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_request(&self, req: &Request, ctx: &FlowCtx) -> Verdict {
        let as_of = effective_db_time(ctx.now, self.frozen_at);
        let cats = self.cloud.lookup(&req.url, as_of);
        match self.policy.decide(&req.url.registrable_domain(), &cats) {
            Some(category) => Verdict::respond(self.block_page(&req.url.to_string(), &category)),
            None => Verdict::Forward,
        }
    }
}

/// The externally visible McAfee Web Gateway administration console —
/// the misconfiguration §3 scans for.
#[derive(Debug, Clone, Default)]
pub struct SmartFilterConsole;

impl Service for SmartFilterConsole {
    fn handle(&self, req: &Request, _ctx: &ServiceCtx) -> Response {
        if req.url.path().starts_with("/mwg") || req.url.path() == "/" {
            Response::html(html::page(
                "McAfee Web Gateway",
                "<h1>McAfee Web Gateway</h1>\n\
                 <p>Administrator sign-in. URL Blocked lists and SmartFilter \
                 policy are managed from this console.</p>\n\
                 <form method=\"post\" action=\"/mwg/login\">\
                 <input name=\"user\"/><input name=\"pass\" type=\"password\"/>\
                 </form>",
            ))
            .with_status(Status::UNAUTHORIZED)
            .with_header("Server", "MWG/7.3.2")
            .with_header("Via-Proxy", "McAfee Web Gateway 7.3")
            .with_header("WWW-Authenticate", "Basic realm=\"McAfee Web Gateway\"")
        } else {
            Response::not_found()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_http::Url;
    use filterwatch_urllists::Category;

    fn flow(now: SimTime) -> FlowCtx {
        FlowCtx {
            now,
            client_ip: "5.0.0.10".parse().unwrap(),
        }
    }

    fn setup() -> (Arc<VendorCloud>, SmartFilterBox) {
        let cloud = Arc::new(VendorCloud::new(crate::ProductKind::SmartFilter, 5));
        cloud.seed_categorization("porn-site.example", "Pornography");
        cloud.seed_categorization("proxyhub.example", "Anonymizers");
        let sf = SmartFilterBox::new(
            "smartfilter@test",
            Arc::clone(&cloud),
            FilterPolicy::blocking(["Pornography"]),
        );
        (cloud, sf)
    }

    #[test]
    fn blocks_enabled_category_only() {
        let (_, sf) = setup();
        let blocked = sf.process_request(
            &Request::get(Url::parse("http://porn-site.example/").unwrap()),
            &flow(SimTime::ZERO),
        );
        let Verdict::Respond(page) = blocked else {
            panic!("expected block")
        };
        assert_eq!(page.status, Status::FORBIDDEN);
        assert_eq!(
            page.title(),
            Some("McAfee Web Gateway - Notification".into())
        );
        assert_eq!(
            page.headers.get("Via-Proxy"),
            Some("McAfee Web Gateway 7.3")
        );

        // Proxy category exists in the DB but is not in this policy
        // (Challenge 1: Saudi Arabia's deployment).
        let passed = sf.process_request(
            &Request::get(Url::parse("http://proxyhub.example/").unwrap()),
            &flow(SimTime::ZERO),
        );
        assert_eq!(passed, Verdict::Forward);
    }

    #[test]
    fn stripped_branding_removes_signatures() {
        let (cloud, _) = setup();
        let sf = SmartFilterBox::new("sf", cloud, FilterPolicy::blocking(["Pornography"]))
            .with_stripped_branding();
        let Verdict::Respond(page) = sf.process_request(
            &Request::get(Url::parse("http://porn-site.example/").unwrap()),
            &flow(SimTime::ZERO),
        ) else {
            panic!("expected block")
        };
        assert!(!page.headers.contains("Via-Proxy"));
        assert!(!page.body_text().contains("McAfee"));
        // Still an explicit block page.
        assert!(page.body_text().contains("has been blocked"));
    }

    #[test]
    fn frozen_subscription_misses_new_entries() {
        let (cloud, _) = setup();
        cloud.seed_categorization_at("late.example", "Pornography", SimTime::from_days(5));
        let sf = SmartFilterBox::new("sf", cloud, FilterPolicy::blocking(["Pornography"]))
            .with_frozen_subscription(SimTime::from_days(2));
        let verdict = sf.process_request(
            &Request::get(Url::parse("http://late.example/").unwrap()),
            &flow(SimTime::from_days(10)),
        );
        assert_eq!(verdict, Verdict::Forward);
    }

    #[test]
    fn console_carries_table2_signatures() {
        let console = SmartFilterConsole;
        let resp = console.handle(
            &Request::get(Url::parse("http://gw.example/").unwrap()),
            &ServiceCtx {
                now: SimTime::ZERO,
                client_ip: "198.51.100.1".parse().unwrap(),
            },
        );
        let banner = resp.banner().to_ascii_lowercase();
        let body = resp.body_text().to_ascii_lowercase();
        assert!(banner.contains("via-proxy"));
        assert!(body.contains("mcafee web gateway"));
        assert!(body.contains("url blocked"));
        assert_eq!(resp.title(), Some("McAfee Web Gateway".into()));
    }

    #[test]
    fn uses_oni_category_submissions() {
        // End-to-end with the cloud: submit a proxy site, retest later.
        let (cloud, _) = setup();
        let sf = SmartFilterBox::new(
            "sf",
            Arc::clone(&cloud),
            FilterPolicy::blocking(["Anonymizers"]),
        );
        cloud.register_site_profile("starwasher.info", Category::AnonymizersProxies);
        let req = Request::get(Url::parse("http://starwasher.info/").unwrap());
        assert_eq!(
            sf.process_request(&req, &flow(SimTime::ZERO)),
            Verdict::Forward
        );
        cloud.submit(
            &Url::parse("http://starwasher.info/").unwrap(),
            crate::SubmitterProfile::NAIVE,
            SimTime::ZERO,
        );
        let later = flow(SimTime::from_days(5));
        assert!(matches!(
            sf.process_request(&req, &later),
            Verdict::Respond(_)
        ));
    }
}
