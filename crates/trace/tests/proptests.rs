//! Property-based tests for the trace wire format and reconstruction.
//!
//! Two families: (1) `TraceEvent` line/log round-trips under
//! adversarial field values (tabs, newlines, backslashes, unicode);
//! (2) permutation invariance — span-tree reconstruction, rendering,
//! the profile and every `explain` artifact are pure functions of the
//! event *set*, so shuffling the log must never change them.

use filterwatch_trace::step::ALL_STEPS;
use filterwatch_trace::{
    build_forest, from_log, render_forest, render_profile, to_log, ProvenanceIndex, SpanId,
    StepKind, TraceEvent, TraceId,
};
use proptest::prelude::*;

fn any_step() -> impl Strategy<Value = StepKind> {
    (0..ALL_STEPS.len() as u64).prop_map(|i| ALL_STEPS[i as usize])
}

/// Keys are constrained by the wire format; values are adversarial.
fn any_fields() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(
        (
            "[a-z0-9_.-]{1,12}".prop_map(|k: String| k),
            prop_oneof!["\\PC{0,24}".boxed(), "[\t\n\r\\\\=]{0,6}".boxed()],
        ),
        0..4,
    )
}

fn any_event() -> impl Strategy<Value = TraceEvent> {
    (
        any::<u64>(),
        1u32..500,
        proptest::option::of(1u32..500),
        0u64..2_000_000,
        0u64..100_000,
        any_step(),
        any_fields(),
    )
        .prop_map(
            |(trace, span, parent, at, extra, step, fields)| TraceEvent {
                trace: TraceId(trace),
                span: SpanId(span),
                parent: parent.map(SpanId),
                at_secs: at,
                end_secs: at + extra,
                step,
                fields,
            },
        )
}

/// A structurally plausible event log: one trace, spans 1..=n, each
/// span's parent drawn from earlier spans (or none, making it a root).
fn any_span_log() -> impl Strategy<Value = Vec<TraceEvent>> {
    (
        any::<u64>(),
        proptest::collection::vec(
            (any::<u32>(), 0u64..10_000, any_step(), any_fields()),
            1..24,
        ),
    )
        .prop_map(|(trace, raws)| {
            raws.into_iter()
                .enumerate()
                .map(|(i, (pick, at, step, fields))| {
                    let span = i as u32 + 1;
                    let parent = if i == 0 {
                        None
                    } else {
                        // Bias toward having a parent; pick 0 means root.
                        match pick % span {
                            0 => None,
                            p => Some(SpanId(p)),
                        }
                    };
                    TraceEvent {
                        trace: TraceId(trace),
                        span: SpanId(span),
                        parent,
                        at_secs: at,
                        end_secs: at,
                        step,
                        fields,
                    }
                })
                .collect()
        })
}

/// Deterministically shuffle a log with a Fisher–Yates pass driven by a
/// seed (proptest supplies the randomness; the shuffle itself is pure).
fn shuffled(events: &[TraceEvent], seed: u64) -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = events.to_vec();
    let mut state = seed | 1;
    for i in (1..out.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

proptest! {
    /// Any event survives to_line → parse_line byte-exact, whatever the
    /// field values contain.
    #[test]
    fn wire_line_round_trips(event in any_event()) {
        let line = event.to_line();
        prop_assert!(!line.contains('\n'), "line must be single-line: {line:?}");
        let back = TraceEvent::parse_line(&line)
            .unwrap_or_else(|e| panic!("parse_line({line:?}): {e}"));
        prop_assert_eq!(&back, &event);
        prop_assert_eq!(back.to_line(), line);
    }

    /// Whole logs survive to_log → from_log.
    #[test]
    fn wire_log_round_trips(events in proptest::collection::vec(any_event(), 0..12)) {
        let log = to_log(&events);
        let back = from_log(&log).unwrap_or_else(|e| panic!("from_log: {e}"));
        prop_assert_eq!(back, events);
    }

    /// Step tokens round-trip and never collide.
    #[test]
    fn step_token_round_trips(step in any_step()) {
        let token = step.to_token();
        prop_assert_eq!(StepKind::parse_token(token), Ok(step));
    }

    /// Reconstruction and every rendering built on it are invariant
    /// under permutation of the event log.
    #[test]
    fn reconstruction_is_permutation_invariant(
        events in any_span_log(),
        seed in any::<u64>(),
    ) {
        let reordered = shuffled(&events, seed);
        let forest = build_forest(&events);
        let forest2 = build_forest(&reordered);
        prop_assert_eq!(render_forest(&forest), render_forest(&forest2));
        prop_assert_eq!(render_profile(&events), render_profile(&reordered));

        let index = ProvenanceIndex::build(&events);
        let index2 = ProvenanceIndex::build(&reordered);
        prop_assert_eq!(index.render_summary(), index2.render_summary());
        prop_assert_eq!(index.urls(), index2.urls());
        for url in index.urls() {
            prop_assert_eq!(index.explain(url), index2.explain(url));
        }
    }

    /// Round-tripping a log through the wire format changes nothing the
    /// reconstruction sees.
    #[test]
    fn wire_round_trip_preserves_reconstruction(events in any_span_log()) {
        let back = from_log(&to_log(&events))
            .unwrap_or_else(|e| panic!("from_log: {e}"));
        prop_assert_eq!(render_forest(&build_forest(&events)), render_forest(&build_forest(&back)));
        prop_assert_eq!(render_profile(&events), render_profile(&back));
    }
}
