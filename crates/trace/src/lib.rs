//! # filterwatch-trace
//!
//! End-to-end causal tracing for the filterwatch pipeline.
//!
//! The paper's confirm methodology lives or dies on being able to argue
//! *why* a URL was labeled blocked — which fetch, which middlebox hop,
//! which fingerprint match, which retest. This crate provides that
//! argument as data:
//!
//! - **Deterministic ids** ([`TraceId`], [`SpanId`]): derived from the
//!   campaign seed with no ambient entropy, so traces are reproducible
//!   byte for byte.
//! - **A collector** ([`TraceHandle`]): the telemetry-handle pattern —
//!   disabled means `None` inside and zero overhead; enabled threads a
//!   stack of open spans through netsim flows, measure fetch/retry/
//!   breaker/quorum paths, fingerprint matches and core identify/
//!   confirm stages. Strictly an observer: no RNG draws, no clock
//!   movement, so campaign tables are byte-identical with tracing on
//!   or off.
//! - **A stable wire format** ([`TraceEvent::to_line`] /
//!   [`TraceEvent::parse_line`]), registered in the w1-wire-pair lint.
//! - **Reconstruction** ([`tree`]): span trees rebuilt from parent
//!   links alone — invariant under event-log line reordering.
//! - **Provenance** ([`ProvenanceIndex`]): query by URL, vantage or
//!   verdict; `explain` renders the full causal chain behind any
//!   verdict as byte-stable text (surfaced by the `tables` binary).
//! - **Sampling** ([`TraceMode::Sampled`]): keep 1-in-n url-test
//!   subtrees so full tracing can be dialed down at 10^5-host scale
//!   while campaign/case/stage structure stays complete.

pub mod event;
pub mod handle;
pub mod ids;
pub mod provenance;
pub mod step;
pub mod tree;

pub use event::{from_log, to_log, TraceEvent};
pub use handle::{ScopeId, TraceHandle, TraceMode};
pub use ids::{SpanId, TraceId};
pub use provenance::ProvenanceIndex;
pub use step::StepKind;
pub use tree::{build_forest, profile, render_forest, render_profile};
