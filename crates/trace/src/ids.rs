//! Deterministic trace and span identifiers.
//!
//! A [`TraceId`] is derived from the campaign seed, a per-collector
//! trace ordinal and the root step token — no ambient entropy, so the
//! same seed always yields the same ids and every artifact built on top
//! of the trace log is byte-stable. A [`SpanId`] is a trace-scoped
//! ordinal in span-allocation order; parent links between spans carry
//! the causal structure.

use std::fmt;

/// 64-bit trace identifier, rendered as `t` + 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derive a trace id from the world seed, the collector's trace
    /// ordinal and the root span's step token.
    ///
    /// Same FNV-1a fold + splitmix64 avalanche discipline as
    /// `filterwatch_netsim::rng::mix`, re-implemented here so the trace
    /// crate stays below `netsim` in the dependency graph.
    pub fn derive(seed: u64, trace_seq: u64, root_token: &str) -> TraceId {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET ^ seed.rotate_left(17) ^ trace_seq.rotate_left(41);
        for b in root_token.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TraceId(z ^ (z >> 31))
    }

    /// Parse the `t<16 hex>` wire form.
    pub fn parse(s: &str) -> Result<TraceId, String> {
        let hex = s
            .strip_prefix('t')
            .ok_or_else(|| format!("trace id must start with 't': {s:?}"))?;
        if hex.len() != 16 {
            return Err(format!("trace id must be 16 hex digits: {s:?}"));
        }
        u64::from_str_radix(hex, 16)
            .map(TraceId)
            .map_err(|e| format!("bad trace id {s:?}: {e}"))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:016x}", self.0)
    }
}

/// Trace-scoped span ordinal, rendered as `s<n>`. Ordinals start at 1;
/// 0 is reserved so the collector can hand out a cheap "not recording"
/// scope token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// Parse the `s<n>` wire form.
    pub fn parse(s: &str) -> Result<SpanId, String> {
        let n = s
            .strip_prefix('s')
            .ok_or_else(|| format!("span id must start with 's': {s:?}"))?;
        n.parse()
            .map(SpanId)
            .map_err(|e| format!("bad span id {s:?}: {e}"))
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_stable_and_input_sensitive() {
        let a = TraceId::derive(5, 1, "campaign");
        assert_eq!(a, TraceId::derive(5, 1, "campaign"));
        assert_ne!(a, TraceId::derive(6, 1, "campaign"));
        assert_ne!(a, TraceId::derive(5, 2, "campaign"));
        assert_ne!(a, TraceId::derive(5, 1, "url-test"));
    }

    #[test]
    fn trace_id_round_trips() {
        let id = TraceId::derive(5, 3, "case");
        assert_eq!(TraceId::parse(&id.to_string()), Ok(id));
        assert!(TraceId::parse("0123").is_err());
        assert!(TraceId::parse("tshort").is_err());
        assert!(TraceId::parse("t00000000000000001").is_err());
    }

    #[test]
    fn span_id_round_trips() {
        assert_eq!(SpanId::parse("s41"), Ok(SpanId(41)));
        assert_eq!(SpanId(7).to_string(), "s7");
        assert!(SpanId::parse("41").is_err());
        assert!(SpanId::parse("sx").is_err());
    }
}
