//! Span-tree reconstruction and rendering.
//!
//! The event log is flat and its line order is incidental (completion
//! order when it comes from a live collector, arbitrary after any
//! merge/sort of persisted logs). Reconstruction depends only on event
//! *content*: trees are rebuilt from parent links, children ordered by
//! `(start time, span ordinal)` — so any permutation of the same lines
//! yields an identical forest, byte for byte.

use std::collections::BTreeMap;

use crate::event::TraceEvent;
use crate::ids::{SpanId, TraceId};
use filterwatch_telemetry::format_vtime;

/// One reconstructed trace: nodes by span id plus sorted root list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// Trace these spans belong to.
    pub trace: TraceId,
    /// Every event in the trace, keyed by span ordinal.
    pub nodes: BTreeMap<SpanId, TraceEvent>,
    /// Children per span, ordered by `(at_secs, span)`.
    pub children: BTreeMap<SpanId, Vec<SpanId>>,
    /// Spans with no (present) parent, ordered by `(at_secs, span)`.
    pub roots: Vec<SpanId>,
}

/// All traces in a log, keyed (and therefore ordered) by trace id.
pub type Forest = BTreeMap<TraceId, SpanTree>;

/// Rebuild every trace in `events` from parent links alone.
pub fn build_forest(events: &[TraceEvent]) -> Forest {
    let mut forest: Forest = BTreeMap::new();
    for event in events {
        let tree = forest.entry(event.trace).or_insert_with(|| SpanTree {
            trace: event.trace,
            nodes: BTreeMap::new(),
            children: BTreeMap::new(),
            roots: Vec::new(),
        });
        tree.nodes.insert(event.span, event.clone());
    }
    for tree in forest.values_mut() {
        let mut ordered: Vec<(u64, SpanId)> =
            tree.nodes.values().map(|e| (e.at_secs, e.span)).collect();
        ordered.sort_unstable();
        for (_, span) in ordered {
            // A parent missing from the log (e.g. a sampled-out or
            // truncated ancestor) degrades gracefully to a root.
            let parent = tree.nodes.get(&span).and_then(|e| e.parent);
            match parent.filter(|p| tree.nodes.contains_key(p)) {
                Some(p) => tree.children.entry(p).or_default().push(span),
                None => tree.roots.push(span),
            }
        }
    }
    forest
}

impl SpanTree {
    /// Path of span ids from a root down to `span` (inclusive). Cycles
    /// or dangling links terminate the walk instead of looping.
    pub fn ancestry(&self, span: SpanId) -> Vec<SpanId> {
        let mut path = vec![span];
        let mut cursor = span;
        while let Some(parent) = self
            .nodes
            .get(&cursor)
            .and_then(|e| e.parent)
            .filter(|p| self.nodes.contains_key(p) && !path.contains(p))
        {
            path.push(parent);
            cursor = parent;
        }
        path.reverse();
        path
    }

    /// Render the subtree rooted at `span`, indented two spaces per
    /// level starting from `depth`.
    pub fn render_subtree(&self, span: SpanId, depth: usize) -> String {
        let mut out = String::new();
        self.render_into(span, depth, &mut out);
        out
    }

    fn render_into(&self, span: SpanId, depth: usize, out: &mut String) {
        let Some(event) = self.nodes.get(&span) else {
            return;
        };
        out.push_str(&render_node_line(event, depth));
        out.push('\n');
        if let Some(kids) = self.children.get(&span) {
            for kid in kids {
                self.render_into(*kid, depth + 1, out);
            }
        }
    }
}

/// One node as a stable text line: `s<n> <token> @<vtime> [+<dur>s] k=v…`.
pub fn render_node_line(event: &TraceEvent, depth: usize) -> String {
    let mut line = format!(
        "{}{} {} @{}",
        "  ".repeat(depth),
        event.span,
        event.step.to_token(),
        format_vtime(event.at_secs)
    );
    if event.end_secs > event.at_secs {
        line.push_str(&format!(" +{}s", event.duration_secs()));
    }
    for (k, v) in &event.fields {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(&single_line(v));
    }
    line
}

/// Collapse control characters so one event stays one line of text.
fn single_line(value: &str) -> String {
    value
        .chars()
        .map(|c| match c {
            '\t' | '\n' | '\r' => ' ',
            c => c,
        })
        .collect()
}

/// Render the whole forest (every trace, every root) as stable text.
pub fn render_forest(forest: &Forest) -> String {
    let mut out = String::new();
    for tree in forest.values() {
        out.push_str(&format!("trace {}\n", tree.trace));
        for root in &tree.roots {
            out.push_str(&tree.render_subtree(*root, 1));
        }
    }
    out
}

/// Aggregate rollup of a forest by step-token path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Number of spans at this path.
    pub count: u64,
    /// Total virtual seconds across those spans.
    pub total_secs: u64,
    /// Virtual seconds not covered by child spans.
    pub self_secs: u64,
}

/// Roll the forest up into per-path totals: a path is the `/`-joined
/// step tokens from the root (`campaign/case/url-test/fetch`). Self
/// time is the span's duration minus its children's, clamped at zero
/// (concurrent children may overlap the parent entirely).
pub fn profile(forest: &Forest) -> BTreeMap<String, ProfileEntry> {
    let mut out: BTreeMap<String, ProfileEntry> = BTreeMap::new();
    for tree in forest.values() {
        for root in &tree.roots {
            profile_node(tree, *root, "", &mut out);
        }
    }
    out
}

fn profile_node(
    tree: &SpanTree,
    span: SpanId,
    prefix: &str,
    out: &mut BTreeMap<String, ProfileEntry>,
) {
    let Some(event) = tree.nodes.get(&span) else {
        return;
    };
    let path = if prefix.is_empty() {
        event.step.to_token().to_string()
    } else {
        format!("{prefix}/{}", event.step.to_token())
    };
    let kids = tree.children.get(&span).cloned().unwrap_or_default();
    let child_secs: u64 = kids
        .iter()
        .filter_map(|k| tree.nodes.get(k))
        .map(|e| e.duration_secs())
        .sum();
    let total = event.duration_secs();
    let entry = out.entry(path.clone()).or_default();
    entry.count += 1;
    entry.total_secs += total;
    entry.self_secs += total.saturating_sub(child_secs);
    for kid in kids {
        profile_node(tree, kid, &path, out);
    }
}

/// Render the [`profile`] rollup as an aligned, byte-stable table.
pub fn render_profile(events: &[TraceEvent]) -> String {
    let forest = build_forest(events);
    let rollup = profile(&forest);
    let path_width = rollup
        .keys()
        .map(|p| p.len())
        .chain(std::iter::once("path".len()))
        .max()
        .unwrap_or(4);
    let mut out = format!(
        "{:<path_width$}  {:>8}  {:>12}  {:>12}\n",
        "path", "count", "total-vsecs", "self-vsecs"
    );
    for (path, entry) in &rollup {
        out.push_str(&format!(
            "{path:<path_width$}  {:>8}  {:>12}  {:>12}\n",
            entry.count, entry.total_secs, entry.self_secs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::StepKind;

    fn ev(span: u32, parent: Option<u32>, at: u64, end: u64, step: StepKind) -> TraceEvent {
        TraceEvent {
            trace: TraceId(1),
            span: SpanId(span),
            parent: parent.map(SpanId),
            at_secs: at,
            end_secs: end,
            step,
            fields: Vec::new(),
        }
    }

    fn sample_log() -> Vec<TraceEvent> {
        vec![
            ev(1, None, 0, 100, StepKind::Campaign),
            ev(2, Some(1), 0, 40, StepKind::UrlTest),
            ev(3, Some(2), 0, 10, StepKind::Fetch),
            ev(4, Some(2), 10, 40, StepKind::Fetch),
            ev(5, Some(1), 40, 90, StepKind::UrlTest),
        ]
    }

    #[test]
    fn forest_is_permutation_invariant() {
        let mut log = sample_log();
        let baseline = render_forest(&build_forest(&log));
        log.reverse();
        assert_eq!(render_forest(&build_forest(&log)), baseline);
        log.rotate_left(2);
        assert_eq!(render_forest(&build_forest(&log)), baseline);
    }

    #[test]
    fn children_sort_by_time_then_span() {
        let forest = build_forest(&sample_log());
        let tree = &forest[&TraceId(1)];
        assert_eq!(tree.roots, vec![SpanId(1)]);
        assert_eq!(tree.children[&SpanId(1)], vec![SpanId(2), SpanId(5)]);
        assert_eq!(tree.children[&SpanId(2)], vec![SpanId(3), SpanId(4)]);
    }

    #[test]
    fn missing_parent_degrades_to_root() {
        let log = vec![ev(7, Some(3), 5, 6, StepKind::Fetch)];
        let forest = build_forest(&log);
        assert_eq!(forest[&TraceId(1)].roots, vec![SpanId(7)]);
    }

    #[test]
    fn ancestry_walks_to_the_root() {
        let forest = build_forest(&sample_log());
        let tree = &forest[&TraceId(1)];
        assert_eq!(
            tree.ancestry(SpanId(4)),
            vec![SpanId(1), SpanId(2), SpanId(4)]
        );
        assert_eq!(tree.ancestry(SpanId(1)), vec![SpanId(1)]);
    }

    #[test]
    fn profile_rolls_up_self_and_total() {
        let rollup = profile(&build_forest(&sample_log()));
        let campaign = &rollup["campaign"];
        assert_eq!((campaign.count, campaign.total_secs), (1, 100));
        // 100 total minus url-test children (40 + 50).
        assert_eq!(campaign.self_secs, 10);
        let fetches = &rollup["campaign/url-test/fetch"];
        assert_eq!((fetches.count, fetches.total_secs), (2, 40));
        let tests = &rollup["campaign/url-test"];
        assert_eq!(tests.self_secs, 90 - 40);
    }

    #[test]
    fn node_line_collapses_control_chars() {
        let mut e = ev(1, None, 3_661, 3_661, StepKind::Dns);
        e.fields.push(("host".to_string(), "a\tb\nc".to_string()));
        assert_eq!(
            render_node_line(&e, 1),
            "  s1 dns @day 0 01:01:01 host=a b c"
        );
    }
}
