//! Verdict provenance: query the trace log by URL, vantage or verdict.
//!
//! The index keys on the semantic anchors of a campaign trace —
//! `url-test` spans (by their `url` field), `fetch` spans (by
//! `vantage`) and `verdict` points (by label) — and can render the
//! full causal chain behind any URL's verdict: ancestor context
//! (campaign, case, stage) followed by the complete url-test subtree
//! with its DNS, middlebox hops, fetch attempts, retries, breaker
//! skips, fingerprint matches and quorum decision.

use std::collections::BTreeMap;

use crate::event::TraceEvent;
use crate::ids::{SpanId, TraceId};
use crate::step::StepKind;
use crate::tree::{build_forest, render_node_line, Forest};

/// A `(trace, span)` anchor into the reconstructed forest.
pub type NodeKey = (TraceId, SpanId);

/// Provenance index over one trace log.
#[derive(Debug, Clone)]
pub struct ProvenanceIndex {
    forest: Forest,
    by_url: BTreeMap<String, Vec<NodeKey>>,
    by_vantage: BTreeMap<String, Vec<NodeKey>>,
    by_verdict: BTreeMap<String, Vec<NodeKey>>,
}

impl ProvenanceIndex {
    /// Build the index from a flat event log (any line order).
    pub fn build(events: &[TraceEvent]) -> ProvenanceIndex {
        let forest = build_forest(events);
        let mut by_url: BTreeMap<String, Vec<NodeKey>> = BTreeMap::new();
        let mut by_vantage: BTreeMap<String, Vec<NodeKey>> = BTreeMap::new();
        let mut by_verdict: BTreeMap<String, Vec<NodeKey>> = BTreeMap::new();
        for tree in forest.values() {
            for event in tree.nodes.values() {
                let key = (event.trace, event.span);
                match event.step {
                    StepKind::UrlTest => {
                        if let Some(url) = event.field("url") {
                            by_url.entry(url.to_string()).or_default().push(key);
                        }
                    }
                    StepKind::Fetch => {
                        if let Some(vantage) = event.field("vantage") {
                            by_vantage.entry(vantage.to_string()).or_default().push(key);
                        }
                    }
                    StepKind::Verdict => {
                        if let Some(label) = event.field("verdict") {
                            by_verdict.entry(label.to_string()).or_default().push(key);
                        }
                    }
                    _ => {}
                }
            }
        }
        ProvenanceIndex {
            forest,
            by_url,
            by_vantage,
            by_verdict,
        }
    }

    /// Every URL with at least one traced test, in sorted order.
    pub fn urls(&self) -> Vec<&str> {
        self.by_url.keys().map(String::as_str).collect()
    }

    /// Every vantage that performed a traced fetch, in sorted order.
    pub fn vantages(&self) -> Vec<&str> {
        self.by_vantage.keys().map(String::as_str).collect()
    }

    /// Every verdict label seen, with occurrence counts, sorted.
    pub fn verdict_counts(&self) -> Vec<(&str, usize)> {
        self.by_verdict
            .iter()
            .map(|(label, keys)| (label.as_str(), keys.len()))
            .collect()
    }

    /// Number of url-test occurrences for `url`.
    pub fn occurrences(&self, url: &str) -> usize {
        self.by_url.get(url).map(Vec::len).unwrap_or(0)
    }

    /// Render the full causal chain for every test of `url`, or `None`
    /// if the trace never tested it. Byte-stable for a fixed log.
    pub fn explain(&self, url: &str) -> Option<String> {
        let keys = self.by_url.get(url)?;
        let mut out = format!("== explain {url} ==\n{} occurrence(s)\n", keys.len());
        for (i, (trace_id, span)) in keys.iter().enumerate() {
            let Some(tree) = self.forest.get(trace_id) else {
                continue;
            };
            let verdict = self
                .verdict_under(*trace_id, *span)
                .unwrap_or("(none recorded)");
            out.push_str(&format!(
                "\n-- occurrence {} of {}: trace {} span {} verdict={verdict} --\n",
                i + 1,
                keys.len(),
                trace_id,
                span
            ));
            let ancestry = tree.ancestry(*span);
            if ancestry.len() > 1 {
                out.push_str("context:\n");
                for (depth, ancestor) in ancestry[..ancestry.len() - 1].iter().enumerate() {
                    if let Some(event) = tree.nodes.get(ancestor) {
                        out.push_str(&render_node_line(event, depth + 1));
                        out.push('\n');
                    }
                }
            }
            out.push_str("chain:\n");
            out.push_str(&tree.render_subtree(*span, 1));
        }
        Some(out)
    }

    /// Verdict label of the first `verdict` point directly under a
    /// url-test span (program order = first field wins).
    fn verdict_under(&self, trace: TraceId, span: SpanId) -> Option<&str> {
        let tree = self.forest.get(&trace)?;
        tree.children
            .get(&span)?
            .iter()
            .filter_map(|kid| tree.nodes.get(kid))
            .find(|e| e.step == StepKind::Verdict)
            .and_then(|e| e.field("verdict"))
    }

    /// One-line-per-key summary of what the index covers.
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "provenance: {} url(s), {} vantage(s), {} verdict label(s)\n",
            self.by_url.len(),
            self.by_vantage.len(),
            self.by_verdict.len()
        );
        for (label, count) in self.verdict_counts() {
            out.push_str(&format!("  verdict {label}: {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        span: u32,
        parent: Option<u32>,
        at: u64,
        end: u64,
        step: StepKind,
        fields: &[(&str, &str)],
    ) -> TraceEvent {
        TraceEvent {
            trace: TraceId(9),
            span: SpanId(span),
            parent: parent.map(SpanId),
            at_secs: at,
            end_secs: end,
            step,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn sample_log() -> Vec<TraceEvent> {
        vec![
            ev(1, None, 0, 50, StepKind::Campaign, &[("seed", "5")]),
            ev(2, Some(1), 0, 30, StepKind::Case, &[("isp", "etisalat")]),
            ev(
                3,
                Some(2),
                0,
                20,
                StepKind::UrlTest,
                &[("url", "http://x.example/")],
            ),
            ev(
                4,
                Some(3),
                0,
                10,
                StepKind::Fetch,
                &[("vantage", "field@etisalat")],
            ),
            ev(
                5,
                Some(3),
                20,
                20,
                StepKind::Verdict,
                &[("verdict", "blocked")],
            ),
        ]
    }

    #[test]
    fn index_keys_on_url_vantage_and_verdict() {
        let index = ProvenanceIndex::build(&sample_log());
        assert_eq!(index.urls(), vec!["http://x.example/"]);
        assert_eq!(index.vantages(), vec!["field@etisalat"]);
        assert_eq!(index.verdict_counts(), vec![("blocked", 1)]);
        assert_eq!(index.occurrences("http://x.example/"), 1);
        assert_eq!(index.occurrences("http://other/"), 0);
    }

    #[test]
    fn explain_renders_context_and_chain() {
        let index = ProvenanceIndex::build(&sample_log());
        let text = index.explain("http://x.example/").unwrap();
        assert!(text.starts_with("== explain http://x.example/ ==\n1 occurrence(s)\n"));
        assert!(text.contains("verdict=blocked --"));
        assert!(text.contains("context:\n  s1 campaign @day 0 00:00:00 +50s seed=5\n"));
        assert!(text.contains("    s2 case"));
        assert!(text.contains("chain:\n  s3 url-test"));
        assert!(text.contains("    s4 fetch"));
        assert!(index.explain("http://missing/").is_none());
    }

    #[test]
    fn explain_is_line_order_invariant() {
        let mut log = sample_log();
        let index = ProvenanceIndex::build(&log);
        let baseline = index.explain("http://x.example/").unwrap();
        log.reverse();
        let reversed = ProvenanceIndex::build(&log);
        assert_eq!(reversed.explain("http://x.example/").unwrap(), baseline);
    }

    #[test]
    fn summary_counts_labels() {
        let index = ProvenanceIndex::build(&sample_log());
        let summary = index.render_summary();
        assert!(summary.contains("1 url(s)"));
        assert!(summary.contains("verdict blocked: 1"));
    }
}
