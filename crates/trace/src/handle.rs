//! The trace collector and its cheap cloneable handle.
//!
//! Mirrors the telemetry collector's shape: a [`TraceHandle`] is either
//! disabled (`inner: None` — every call is a branch and a return, so
//! the instrumented hot paths cost nothing in production benches) or
//! shares one collector. The collector is an *observer only*: it never
//! draws randomness and never advances the virtual clock, which is what
//! guarantees campaign tables are byte-identical with tracing on or
//! off.
//!
//! Spans open and close in a stack discipline; closing a span also
//! closes any children that leaked past their parent. A fresh trace
//! starts whenever a span opens on an empty stack, with its
//! [`TraceId`] derived from `(seed, trace ordinal, root token)` — one
//! campaign run is one trace.

use std::sync::{Arc, Mutex, PoisonError};

use crate::event::TraceEvent;
use crate::ids::{SpanId, TraceId};
use crate::step::StepKind;

/// How much tracing a campaign should carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No collector at all; zero overhead (the default).
    Off,
    /// Record every 1-in-n sampled subtree (URL tests); campaign, case
    /// and stage structure is always kept. `Sampled(1)` equals `Full`.
    Sampled(u64),
    /// Record everything.
    Full,
}

/// Token returned by [`TraceHandle::open`]; pass it back to
/// [`TraceHandle::close`]. The zero value is "nothing to close".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeId(u32);

impl ScopeId {
    /// The no-op scope (disabled handle, or suppressed subtree root is
    /// still a real scope — NONE only comes from a disabled handle).
    pub const NONE: ScopeId = ScopeId(0);
}

struct OpenSpan {
    recorded: bool,
    event: TraceEvent,
}

struct State {
    events: Vec<TraceEvent>,
    stack: Vec<OpenSpan>,
    trace_seq: u64,
    next_span: u32,
    sample_seq: u64,
}

struct Collector {
    seed: u64,
    sample_every: u64,
    state: Mutex<State>,
}

impl Collector {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Cheap cloneable handle to a trace collector (or to nothing).
#[derive(Clone)]
pub struct TraceHandle {
    inner: Option<Arc<Collector>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Default for TraceHandle {
    fn default() -> Self {
        TraceHandle::disabled()
    }
}

impl TraceHandle {
    /// A handle that records nothing.
    pub fn disabled() -> TraceHandle {
        TraceHandle { inner: None }
    }

    /// A collector recording every subtree, deriving ids from `seed`.
    pub fn enabled(seed: u64) -> TraceHandle {
        TraceHandle::sampled(seed, 1)
    }

    /// A collector recording one in `sample_every` sampled subtrees
    /// (see [`StepKind::is_sample_unit`]). `0` is treated as `1`.
    pub fn sampled(seed: u64, sample_every: u64) -> TraceHandle {
        TraceHandle {
            inner: Some(Arc::new(Collector {
                seed,
                sample_every: sample_every.max(1),
                state: Mutex::new(State {
                    events: Vec::new(),
                    stack: Vec::new(),
                    trace_seq: 0,
                    next_span: 0,
                    sample_seq: 0,
                }),
            })),
        }
    }

    /// Build a handle for a [`TraceMode`].
    pub fn for_mode(mode: TraceMode, seed: u64) -> TraceHandle {
        match mode {
            TraceMode::Off => TraceHandle::disabled(),
            TraceMode::Sampled(n) => TraceHandle::sampled(seed, n),
            TraceMode::Full => TraceHandle::enabled(seed),
        }
    }

    /// Whether a collector is attached at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether a recorded span is currently open — instrumentation
    /// sites use this to skip building field strings for suppressed
    /// (sampled-out) subtrees or outside any trace.
    pub fn recording(&self) -> bool {
        let Some(collector) = &self.inner else {
            return false;
        };
        let state = collector.lock();
        state.stack.last().is_some_and(|top| top.recorded)
    }

    /// Open a span at virtual time `at_secs`. Opening on an empty
    /// stack starts a new trace rooted here.
    pub fn open(&self, step: StepKind, at_secs: u64, fields: &[(&str, &str)]) -> ScopeId {
        let Some(collector) = &self.inner else {
            return ScopeId::NONE;
        };
        let mut state = collector.lock();
        let parent_recorded = match state.stack.last() {
            Some(top) => top.recorded,
            None => {
                state.trace_seq += 1;
                state.next_span = 0;
                true
            }
        };
        let trace = match state.stack.last() {
            Some(top) => top.event.trace,
            None => TraceId::derive(collector.seed, state.trace_seq, step.to_token()),
        };
        let recorded = parent_recorded
            && (!step.is_sample_unit() || {
                state.sample_seq += 1;
                (state.sample_seq - 1) % collector.sample_every == 0
            });
        state.next_span += 1;
        let span = SpanId(state.next_span);
        let parent = state.stack.last().map(|top| top.event.span);
        state.stack.push(OpenSpan {
            recorded,
            event: TraceEvent {
                trace,
                span,
                parent,
                at_secs,
                end_secs: at_secs,
                step,
                fields: own_fields(fields),
            },
        });
        ScopeId(span.0)
    }

    /// Close the span opened as `scope` at virtual time `end_secs`,
    /// appending `extra_fields` to it first. Children still open are
    /// closed at the same instant. Unknown or NONE scopes are ignored.
    pub fn close(&self, scope: ScopeId, end_secs: u64, extra_fields: &[(&str, &str)]) {
        let Some(collector) = &self.inner else {
            return;
        };
        if scope == ScopeId::NONE {
            return;
        }
        let mut state = collector.lock();
        let Some(pos) = state
            .stack
            .iter()
            .rposition(|open| open.event.span.0 == scope.0)
        else {
            return;
        };
        let mut closed: Vec<OpenSpan> = state.stack.drain(pos..).collect();
        if let Some(target) = closed.first_mut() {
            target.event.fields.extend(own_fields(extra_fields));
        }
        // Innermost (leaked) children first, target last, all at the
        // same virtual instant.
        for mut open in closed.into_iter().rev() {
            open.event.end_secs = end_secs.max(open.event.at_secs);
            if open.recorded {
                state.events.push(open.event);
            }
        }
    }

    /// Record a point event (a zero-duration leaf) under the currently
    /// open span. Dropped when no recorded span is open — points never
    /// start a trace of their own.
    pub fn point(&self, step: StepKind, at_secs: u64, fields: &[(&str, &str)]) {
        let Some(collector) = &self.inner else {
            return;
        };
        let mut state = collector.lock();
        let Some(top) = state.stack.last() else {
            return;
        };
        if !top.recorded {
            return;
        }
        let trace = top.event.trace;
        let parent = Some(top.event.span);
        state.next_span += 1;
        let span = SpanId(state.next_span);
        state.events.push(TraceEvent {
            trace,
            span,
            parent,
            at_secs,
            end_secs: at_secs,
            step,
            fields: own_fields(fields),
        });
    }

    /// Completed events so far, in completion order. Open spans are
    /// not included — close the root before snapshotting.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(collector) => collector.lock().events.clone(),
            None => Vec::new(),
        }
    }
}

fn own_fields(fields: &[(&str, &str)]) -> Vec<(String, String)> {
    fields
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TraceHandle::disabled();
        assert!(!t.is_enabled());
        assert!(!t.recording());
        let scope = t.open(StepKind::Campaign, 0, &[]);
        assert_eq!(scope, ScopeId::NONE);
        t.point(StepKind::Verdict, 1, &[]);
        t.close(scope, 2, &[]);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_points_attach() {
        let t = TraceHandle::enabled(5);
        let root = t.open(StepKind::Campaign, 0, &[("seed", "5")]);
        assert!(t.recording());
        let fetch = t.open(StepKind::Fetch, 10, &[("url", "http://x/")]);
        t.point(StepKind::Dns, 10, &[("host", "x")]);
        t.close(fetch, 12, &[("outcome", "200")]);
        t.close(root, 100, &[]);
        let events = t.snapshot();
        assert_eq!(events.len(), 3);
        // Completion order: the dns point, then the fetch, then the root.
        assert_eq!(events[0].step, StepKind::Dns);
        assert_eq!(events[0].parent, Some(events[1].span));
        assert_eq!(events[1].step, StepKind::Fetch);
        assert_eq!(events[1].field("outcome"), Some("200"));
        assert_eq!(events[1].parent, Some(events[2].span));
        assert_eq!(events[2].step, StepKind::Campaign);
        assert_eq!(events[2].parent, None);
        assert_eq!(events[2].end_secs, 100);
        assert!(events.iter().all(|e| e.trace == events[0].trace));
    }

    #[test]
    fn close_reaps_leaked_children() {
        let t = TraceHandle::enabled(5);
        let root = t.open(StepKind::Campaign, 0, &[]);
        let _leaked = t.open(StepKind::Fetch, 5, &[]);
        t.close(root, 9, &[]);
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].step, StepKind::Fetch);
        assert_eq!(events[0].end_secs, 9);
        assert!(!t.recording());
    }

    #[test]
    fn each_root_starts_a_fresh_trace() {
        let t = TraceHandle::enabled(5);
        let a = t.open(StepKind::UrlTest, 0, &[]);
        t.close(a, 1, &[]);
        let b = t.open(StepKind::UrlTest, 2, &[]);
        t.close(b, 3, &[]);
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].trace, events[1].trace);
        // Span ordinals restart per trace.
        assert_eq!(events[0].span, events[1].span);
    }

    #[test]
    fn sampling_suppresses_whole_subtrees() {
        let t = TraceHandle::sampled(5, 2);
        let root = t.open(StepKind::Campaign, 0, &[]);
        for i in 0..4u64 {
            let ut = t.open(StepKind::UrlTest, i, &[]);
            // Suppressed subtrees skip instrumentation work entirely.
            if t.recording() {
                t.point(StepKind::Verdict, i, &[]);
            }
            t.close(ut, i, &[]);
        }
        t.close(root, 10, &[]);
        let events = t.snapshot();
        let url_tests = events
            .iter()
            .filter(|e| e.step == StepKind::UrlTest)
            .count();
        let verdicts = events
            .iter()
            .filter(|e| e.step == StepKind::Verdict)
            .count();
        assert_eq!(url_tests, 2);
        assert_eq!(verdicts, 2);
        // Every recorded non-root event's parent is itself recorded.
        for e in &events {
            if let Some(p) = e.parent {
                assert!(events.iter().any(|other| other.span == p));
            }
        }
    }

    #[test]
    fn points_outside_any_span_are_dropped() {
        let t = TraceHandle::enabled(5);
        t.point(StepKind::Dns, 0, &[]);
        assert!(t.snapshot().is_empty());
    }
}
