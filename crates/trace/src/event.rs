//! Parent-linked trace events and their stable line encoding.
//!
//! One event per line:
//!
//! ```text
//! t<16 hex>\ts<span>\t<s<parent>|->\tv<start>\tv<end>\t<step-token>\t<key>=<value>…
//! ```
//!
//! Spans and point events share the representation: a point is a span
//! whose start and end coincide and which never has children. Keys are
//! restricted to `[a-z0-9_.-]`; values use the telemetry event log's
//! escaping (`\\`, `\t`, `\n`, `\r`), so any URL or error string is
//! safe. `parse_line` inverts `to_line` exactly — the pair is
//! registered in the w1-wire-pair lint.

use crate::ids::{SpanId, TraceId};
use crate::step::StepKind;
use filterwatch_telemetry::event::{escape, unescape};

/// One causal step: a closed span or a point event on the virtual clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace this event belongs to.
    pub trace: TraceId,
    /// This event's span ordinal within the trace.
    pub span: SpanId,
    /// Causal parent within the same trace; `None` for the root.
    pub parent: Option<SpanId>,
    /// Virtual-clock start, seconds.
    pub at_secs: u64,
    /// Virtual-clock end, seconds; equals `at_secs` for point events.
    pub end_secs: u64,
    /// What kind of step this is.
    pub step: StepKind,
    /// Ordered key/value payload (urls, vantages, outcomes, …).
    pub fields: Vec<(String, String)>,
}

fn valid_key(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'_' | b'.' | b'-')
        })
}

impl TraceEvent {
    /// Virtual duration in seconds (0 for point events).
    pub fn duration_secs(&self) -> u64 {
        self.end_secs.saturating_sub(self.at_secs)
    }

    /// Value of the first field named `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Encode as one stable line (no trailing newline).
    pub fn to_line(&self) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "-".to_string(),
        };
        let mut line = format!(
            "{}\t{}\t{}\tv{}\tv{}\t{}",
            self.trace,
            self.span,
            parent,
            self.at_secs,
            self.end_secs,
            self.step.to_token()
        );
        for (k, v) in &self.fields {
            line.push('\t');
            line.push_str(k);
            line.push('=');
            line.push_str(&escape(v));
        }
        line
    }

    /// Parse a line produced by [`TraceEvent::to_line`].
    pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
        let mut parts = line.split('\t');
        let trace = TraceId::parse(parts.next().ok_or("empty trace line")?)?;
        let span = SpanId::parse(parts.next().ok_or("missing span id")?)?;
        let parent = match parts.next().ok_or("missing parent id")? {
            "-" => None,
            p => Some(SpanId::parse(p)?),
        };
        let mut vtime = |what: &str| -> Result<u64, String> {
            let t = parts.next().ok_or(format!("missing {what} time"))?;
            t.strip_prefix('v')
                .ok_or_else(|| format!("{what} time must start with 'v': {t:?}"))?
                .parse()
                .map_err(|e| format!("bad {what} time {t:?}: {e}"))
        };
        let at_secs = vtime("start")?;
        let end_secs = vtime("end")?;
        if end_secs < at_secs {
            return Err(format!("span ends before it starts: {line:?}"));
        }
        let step = StepKind::parse_token(parts.next().ok_or("missing step token")?)?;
        let mut fields = Vec::new();
        for part in parts {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("field without '=': {part:?}"))?;
            if !valid_key(k) {
                return Err(format!("invalid field key {k:?}"));
            }
            let v = unescape(v).ok_or_else(|| format!("bad escape in value {v:?}"))?;
            fields.push((k.to_string(), v));
        }
        Ok(TraceEvent {
            trace,
            span,
            parent,
            at_secs,
            end_secs,
            step,
            fields,
        })
    }
}

/// Serialize a trace log, one line per event.
pub fn to_log(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_line());
        out.push('\n');
    }
    out
}

/// Parse a log produced by [`to_log`] (blank lines ignored).
pub fn from_log(log: &str) -> Result<Vec<TraceEvent>, String> {
    log.lines()
        .filter(|l| !l.is_empty())
        .map(TraceEvent::parse_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            trace: TraceId(0x0123_4567_89ab_cdef),
            span: SpanId(41),
            parent: Some(SpanId(7)),
            at_secs: 86_461,
            end_secs: 86_465,
            step: StepKind::Fetch,
            fields: vec![
                ("url".to_string(), "http://x.example/a\tb".to_string()),
                ("vantage".to_string(), "field@etisalat".to_string()),
                ("note".to_string(), "line1\nline2\\end".to_string()),
            ],
        }
    }

    #[test]
    fn line_round_trips() {
        let e = sample();
        let line = e.to_line();
        assert!(line.starts_with("t0123456789abcdef\ts41\ts7\tv86461\tv86465\tfetch\turl="));
        assert_eq!(TraceEvent::parse_line(&line).unwrap(), e);
    }

    #[test]
    fn root_parent_renders_as_dash() {
        let mut e = sample();
        e.parent = None;
        let line = e.to_line();
        assert!(line.contains("\ts41\t-\tv"));
        assert_eq!(TraceEvent::parse_line(&line).unwrap().parent, None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(TraceEvent::parse_line("").is_err());
        assert!(TraceEvent::parse_line("x0\ts1\t-\tv0\tv0\tfetch").is_err());
        assert!(TraceEvent::parse_line("t0000000000000000\t1\t-\tv0\tv0\tfetch").is_err());
        assert!(TraceEvent::parse_line("t0000000000000000\ts1\t-\t0\tv0\tfetch").is_err());
        assert!(TraceEvent::parse_line("t0000000000000000\ts1\t-\tv5\tv4\tfetch").is_err());
        assert!(TraceEvent::parse_line("t0000000000000000\ts1\t-\tv0\tv0\tnope").is_err());
        assert!(TraceEvent::parse_line("t0000000000000000\ts1\t-\tv0\tv0\tfetch\tnoeq").is_err());
        assert!(TraceEvent::parse_line("t0000000000000000\ts1\t-\tv0\tv0\tfetch\tK=v").is_err());
        assert!(
            TraceEvent::parse_line("t0000000000000000\ts1\t-\tv0\tv0\tfetch\tk=bad\\").is_err()
        );
    }

    #[test]
    fn log_round_trips() {
        let mut e2 = sample();
        e2.span = SpanId(42);
        e2.parent = Some(SpanId(41));
        let events = vec![sample(), e2];
        let log = to_log(&events);
        assert_eq!(from_log(&log).unwrap(), events);
    }
}
