//! The closed vocabulary of causal steps.
//!
//! Every trace event names one [`StepKind`]; free-form data (URLs,
//! vantage names, verdict labels) lives in the event's key/value
//! fields, never in the token itself. Keeping the vocabulary closed is
//! what lets the w1-wire-pair lint prove `to_token`/`parse_token`
//! cover the same set.

/// One kind of step in a causal chain, from campaign root down to a
/// single middlebox hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StepKind {
    /// Root span of a full campaign run.
    Campaign,
    /// A pipeline stage (identify, confirm.submit, confirm.retest,
    /// characterize); `name` field carries which.
    Stage,
    /// One confirmation case study (ISP x product).
    Case,
    /// A URL submitted to a vendor categorization portal.
    Submit,
    /// Virtual-clock wait between submit and retest.
    Wait,
    /// One `test_url` invocation — the unit the provenance index keys on.
    UrlTest,
    /// One quorum trial within a URL test.
    Trial,
    /// One fetch attempt from a vantage (redirect-following).
    Fetch,
    /// A followed redirect hop inside a fetch.
    Redirect,
    /// A retry decision: backoff before the next fetch attempt.
    Retry,
    /// DNS resolution inside the simulated network.
    Dns,
    /// An injected path fault (timeout, reset, outage, …).
    PathFault,
    /// One middlebox hop and its action on the flow.
    MbHop,
    /// The origin server's reply (or connect failure).
    OriginReply,
    /// A fetch skipped because a vantage circuit breaker was open.
    BreakerOpen,
    /// A fingerprint plugin matching a product on a host.
    FpMatch,
    /// An installation candidate surfaced by the identify sweep.
    Candidate,
    /// The quorum decision across trials.
    Quorum,
    /// A verdict: per URL test, or per confirmation case.
    Verdict,
    /// A campaign checkpoint written at a stage boundary by the
    /// orchestrator (fields carry the stage cursor).
    Checkpoint,
    /// A campaign restored from a checkpoint; opened as a span so
    /// verdicts produced after the restore carry it in their ancestry.
    Resume,
    /// A timer-wheel deadline firing (the scheduler waking a campaign
    /// parked in its `Wait` stage).
    SchedTimer,
}

/// All step kinds, in wire-token order (handy for tests and strategies).
pub const ALL_STEPS: &[StepKind] = &[
    StepKind::Campaign,
    StepKind::Stage,
    StepKind::Case,
    StepKind::Submit,
    StepKind::Wait,
    StepKind::UrlTest,
    StepKind::Trial,
    StepKind::Fetch,
    StepKind::Redirect,
    StepKind::Retry,
    StepKind::Dns,
    StepKind::PathFault,
    StepKind::MbHop,
    StepKind::OriginReply,
    StepKind::BreakerOpen,
    StepKind::FpMatch,
    StepKind::Candidate,
    StepKind::Quorum,
    StepKind::Verdict,
    StepKind::Checkpoint,
    StepKind::Resume,
    StepKind::SchedTimer,
];

impl StepKind {
    /// Stable wire token. Registered against [`StepKind::parse_token`]
    /// in the w1-wire-pair lint: every token emitted here must have a
    /// parse arm, and vice versa.
    pub fn to_token(&self) -> &'static str {
        match self {
            StepKind::Campaign => "campaign",
            StepKind::Stage => "stage",
            StepKind::Case => "case",
            StepKind::Submit => "submit",
            StepKind::Wait => "wait",
            StepKind::UrlTest => "url-test",
            StepKind::Trial => "trial",
            StepKind::Fetch => "fetch",
            StepKind::Redirect => "redirect",
            StepKind::Retry => "retry",
            StepKind::Dns => "dns",
            StepKind::PathFault => "path-fault",
            StepKind::MbHop => "mb-hop",
            StepKind::OriginReply => "origin-reply",
            StepKind::BreakerOpen => "breaker-open",
            StepKind::FpMatch => "fp-match",
            StepKind::Candidate => "candidate",
            StepKind::Quorum => "quorum",
            StepKind::Verdict => "verdict",
            StepKind::Checkpoint => "checkpoint",
            StepKind::Resume => "resume",
            StepKind::SchedTimer => "sched-timer",
        }
    }

    /// Invert [`StepKind::to_token`].
    pub fn parse_token(token: &str) -> Result<StepKind, String> {
        match token {
            "campaign" => Ok(StepKind::Campaign),
            "stage" => Ok(StepKind::Stage),
            "case" => Ok(StepKind::Case),
            "submit" => Ok(StepKind::Submit),
            "wait" => Ok(StepKind::Wait),
            "url-test" => Ok(StepKind::UrlTest),
            "trial" => Ok(StepKind::Trial),
            "fetch" => Ok(StepKind::Fetch),
            "redirect" => Ok(StepKind::Redirect),
            "retry" => Ok(StepKind::Retry),
            "dns" => Ok(StepKind::Dns),
            "path-fault" => Ok(StepKind::PathFault),
            "mb-hop" => Ok(StepKind::MbHop),
            "origin-reply" => Ok(StepKind::OriginReply),
            "breaker-open" => Ok(StepKind::BreakerOpen),
            "fp-match" => Ok(StepKind::FpMatch),
            "candidate" => Ok(StepKind::Candidate),
            "quorum" => Ok(StepKind::Quorum),
            "verdict" => Ok(StepKind::Verdict),
            "checkpoint" => Ok(StepKind::Checkpoint),
            "resume" => Ok(StepKind::Resume),
            "sched-timer" => Ok(StepKind::SchedTimer),
            other => Err(format!("unknown step token {other:?}")),
        }
    }

    /// Whether this step is a sampling unit: when the collector runs
    /// with `sample_every = n`, only every n-th subtree rooted at a
    /// sampled step is recorded. URL tests are the natural unit — at
    /// 10^5-host scale they dominate the log, while campaign/case/stage
    /// structure stays cheap and is always kept.
    pub fn is_sample_unit(&self) -> bool {
        matches!(self, StepKind::UrlTest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_exhaustively() {
        for step in ALL_STEPS {
            assert_eq!(StepKind::parse_token(step.to_token()), Ok(*step));
        }
        assert!(StepKind::parse_token("nope").is_err());
        assert!(StepKind::parse_token("").is_err());
    }

    #[test]
    fn tokens_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for step in ALL_STEPS {
            assert!(seen.insert(step.to_token()), "duplicate {step:?}");
        }
        assert_eq!(seen.len(), ALL_STEPS.len());
    }

    #[test]
    fn only_url_tests_are_sample_units() {
        let units: Vec<_> = ALL_STEPS.iter().filter(|s| s.is_sample_unit()).collect();
        assert_eq!(units, vec![&StepKind::UrlTest]);
    }
}
