//! Country-level IP geolocation (MaxMind analog).

use crate::interval::IntervalMap;

/// Country-level geolocation database.
///
/// Values are two-letter country codes (uppercase by convention;
/// normalization is the caller's job when building).
#[derive(Debug, Clone, Default)]
pub struct GeoDb {
    map: IntervalMap<String>,
}

impl GeoDb {
    /// An empty database.
    pub fn new() -> Self {
        GeoDb::default()
    }

    /// Add a range (inclusive, as raw `u32` address values).
    pub fn add_range(&mut self, start: u32, end: u32, country: &str) {
        self.map.insert(start, end, country.to_ascii_uppercase());
    }

    /// Finalize after bulk loading.
    pub fn finish(&mut self) {
        self.map.finish();
    }

    /// Country code for an address, if covered.
    pub fn lookup(&self, ip: u32) -> Option<&str> {
        self.map.get(ip).map(String::as_str)
    }

    /// Number of ranges loaded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_normalizes_to_uppercase() {
        let mut db = GeoDb::new();
        db.add_range(0x0500_0000, 0x0500_00FF, "qa");
        db.finish();
        assert_eq!(db.lookup(0x0500_0080), Some("QA"));
        assert_eq!(db.lookup(0x0500_0100), None);
    }

    #[test]
    fn multiple_countries() {
        let mut db = GeoDb::new();
        db.add_range(100, 199, "SA");
        db.add_range(200, 299, "AE");
        db.add_range(300, 399, "YE");
        db.finish();
        assert_eq!(db.lookup(150), Some("SA"));
        assert_eq!(db.lookup(250), Some("AE"));
        assert_eq!(db.lookup(350), Some("YE"));
        assert_eq!(db.lookup(50), None);
        assert_eq!(db.len(), 3);
    }
}
