//! IP geolocation and IP→ASN mapping.
//!
//! The identification pipeline's last step (§3.1) maps validated filter
//! IPs "to country-level location and autonomous system (AS) number"
//! using MaxMind and Team Cymru whois. This crate provides both lookups
//! as interval maps over the 32-bit address space:
//!
//! * [`GeoDb`] — address range → ISO country code (MaxMind analog);
//! * [`AsnDb`] — address range → (ASN, AS name, registration country)
//!   (Team Cymru analog), including the classic pipe-separated whois
//!   output format.
//!
//! The crate is deliberately independent of the simulator: databases are
//! built from plain `(start, end, value)` ranges, so they can be
//! populated from the netsim registry's ground truth *or* from
//! deliberately wrong data to study geolocation-error effects.

mod asndb;
mod geodb;
mod interval;

pub use asndb::{AsnDb, AsnRecord};
pub use geodb::GeoDb;
pub use interval::IntervalMap;
