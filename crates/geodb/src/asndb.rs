//! IP→ASN mapping with whois-style output (Team Cymru analog).

use crate::interval::IntervalMap;

/// One origin-AS record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsnRecord {
    /// Autonomous system number.
    pub asn: u32,
    /// AS name as whois reports it (e.g. `"ETISALAT-AS"`).
    pub name: String,
    /// Two-letter registration country code.
    pub country: String,
}

/// IP→origin-AS database.
#[derive(Debug, Clone, Default)]
pub struct AsnDb {
    map: IntervalMap<AsnRecord>,
}

impl AsnDb {
    /// An empty database.
    pub fn new() -> Self {
        AsnDb::default()
    }

    /// Add a range (inclusive, raw `u32` address values) originated by
    /// `asn`.
    pub fn add_range(&mut self, start: u32, end: u32, asn: u32, name: &str, country: &str) {
        self.map.insert(
            start,
            end,
            AsnRecord {
                asn,
                name: name.to_string(),
                country: country.to_ascii_uppercase(),
            },
        );
    }

    /// Finalize after bulk loading.
    pub fn finish(&mut self) {
        self.map.finish();
    }

    /// The record covering `ip`, if any.
    pub fn lookup(&self, ip: u32) -> Option<&AsnRecord> {
        self.map.get(ip)
    }

    /// Render a lookup in the pipe-separated Team Cymru bulk-whois style:
    /// `AS | IP | CC | AS Name`, or a `NA` row when unmapped.
    pub fn whois_line(&self, ip: u32) -> String {
        let dotted = format!(
            "{}.{}.{}.{}",
            (ip >> 24) & 0xff,
            (ip >> 16) & 0xff,
            (ip >> 8) & 0xff,
            ip & 0xff
        );
        match self.lookup(ip) {
            Some(rec) => format!("{} | {} | {} | {}", rec.asn, dotted, rec.country, rec.name),
            None => format!("NA | {dotted} | NA | NA"),
        }
    }

    /// Number of ranges loaded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> AsnDb {
        let mut db = AsnDb::new();
        db.add_range(0x0500_0000, 0x0500_03FF, 5384, "EMIRATES-INTERNET", "ae");
        db.add_range(0x0500_0400, 0x0500_07FF, 12486, "YEMENNET", "YE");
        db.finish();
        db
    }

    #[test]
    fn lookup_record() {
        let db = db();
        let rec = db.lookup(0x0500_0001).unwrap();
        assert_eq!(rec.asn, 5384);
        assert_eq!(rec.country, "AE");
        assert!(db.lookup(0x0600_0000).is_none());
    }

    #[test]
    fn whois_line_format() {
        let db = db();
        assert_eq!(
            db.whois_line(0x0500_0401),
            "12486 | 5.0.4.1 | YE | YEMENNET"
        );
        assert_eq!(db.whois_line(0x0900_0000), "NA | 9.0.0.0 | NA | NA");
    }

    #[test]
    fn counters() {
        assert_eq!(db().len(), 2);
        assert!(!db().is_empty());
        assert!(AsnDb::new().is_empty());
    }
}
