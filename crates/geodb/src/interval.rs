//! A sorted interval map over `u32` keys (IPv4 address space).

/// Maps disjoint inclusive `[start, end]` ranges to values, with
/// `O(log n)` point lookup.
#[derive(Debug, Clone)]
pub struct IntervalMap<V> {
    /// Ranges sorted by start; maintained disjoint by `insert`.
    ranges: Vec<(u32, u32, V)>,
    sorted: bool,
}

impl<V> Default for IntervalMap<V> {
    fn default() -> Self {
        IntervalMap {
            ranges: Vec::new(),
            sorted: true,
        }
    }
}

impl<V: Clone> IntervalMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        IntervalMap::default()
    }

    /// Insert an inclusive range.
    ///
    /// # Panics
    /// If `start > end` or the range overlaps an existing one.
    pub fn insert(&mut self, start: u32, end: u32, value: V) {
        assert!(start <= end, "inverted range {start}..={end}");
        for &(s, e, _) in &self.ranges {
            assert!(
                end < s || start > e,
                "range {start}..={end} overlaps existing {s}..={e}"
            );
        }
        self.ranges.push((start, end, value));
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.ranges.sort_by_key(|&(s, _, _)| s);
            self.sorted = true;
        }
    }

    /// Finalize construction (sorts the ranges). Called automatically by
    /// lookups via interior re-sorting during build phases in practice —
    /// call it once after bulk inserts for clarity.
    pub fn finish(&mut self) {
        self.ensure_sorted();
    }

    /// Look up the value covering `key`.
    pub fn get(&self, key: u32) -> Option<&V> {
        // Binary search requires sortedness; fall back to linear scan if
        // `finish` has not been called since the last insert.
        if self.sorted {
            let idx = self.ranges.partition_point(|&(s, _, _)| s <= key);
            if idx == 0 {
                return None;
            }
            let (s, e, ref v) = self.ranges[idx - 1];
            (s <= key && key <= e).then_some(v)
        } else {
            self.ranges
                .iter()
                .find(|&&(s, e, _)| s <= key && key <= e)
                .map(|(_, _, v)| v)
        }
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the map holds no ranges.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterate ranges as `(start, end, value)` (insertion order until
    /// `finish`, sorted after).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &V)> {
        self.ranges.iter().map(|(s, e, v)| (*s, *e, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_sorted_and_unsorted() {
        let mut m = IntervalMap::new();
        m.insert(100, 199, "b");
        m.insert(0, 99, "a");
        // Unsorted path.
        assert_eq!(m.get(150), Some(&"b"));
        m.finish();
        // Sorted path.
        assert_eq!(m.get(0), Some(&"a"));
        assert_eq!(m.get(99), Some(&"a"));
        assert_eq!(m.get(100), Some(&"b"));
        assert_eq!(m.get(199), Some(&"b"));
        assert_eq!(m.get(200), None);
    }

    #[test]
    fn empty_map() {
        let m: IntervalMap<u8> = IntervalMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_rejected() {
        let mut m = IntervalMap::new();
        m.insert(0, 10, ());
        m.insert(10, 20, ());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rejected() {
        let mut m = IntervalMap::new();
        m.insert(5, 4, ());
    }

    #[test]
    fn adjacent_ranges_ok() {
        let mut m = IntervalMap::new();
        m.insert(0, 9, 'a');
        m.insert(10, 19, 'b');
        m.finish();
        assert_eq!(m.get(9), Some(&'a'));
        assert_eq!(m.get(10), Some(&'b'));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn full_u32_boundaries() {
        let mut m = IntervalMap::new();
        m.insert(u32::MAX - 1, u32::MAX, 'z');
        m.finish();
        assert_eq!(m.get(u32::MAX), Some(&'z'));
        assert_eq!(m.get(0), None);
    }
}
