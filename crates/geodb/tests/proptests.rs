//! Property-based tests for the interval-map databases.

use filterwatch_geodb::{AsnDb, GeoDb, IntervalMap};
use proptest::prelude::*;

/// Generate a set of disjoint inclusive ranges out of sorted cut points.
fn disjoint_ranges(max_ranges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::btree_set(any::<u32>(), 2..max_ranges * 2 + 2).prop_map(|cuts| {
        let cuts: Vec<u32> = cuts.into_iter().collect();
        cuts.chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| (c[0], c[1]))
            .collect()
    })
}

proptest! {
    /// Every inserted range is fully retrievable; gaps return None.
    #[test]
    fn interval_map_lookup_correct(ranges in disjoint_ranges(8)) {
        let mut map = IntervalMap::new();
        for (i, &(s, e)) in ranges.iter().enumerate() {
            map.insert(s, e, i);
        }
        map.finish();
        for (i, &(s, e)) in ranges.iter().enumerate() {
            prop_assert_eq!(map.get(s), Some(&i));
            prop_assert_eq!(map.get(e), Some(&i));
            prop_assert_eq!(map.get(s + (e - s) / 2), Some(&i));
        }
        // Points just outside any range map to no other range's value
        // unless adjacent ranges touch.
        for &(s, _) in &ranges {
            if s > 0 && !ranges.iter().any(|&(s2, e2)| s2 < s && s - 1 <= e2) {
                prop_assert_eq!(map.get(s - 1), None);
            }
        }
    }

    /// Sorted and unsorted lookups agree.
    #[test]
    fn sorted_unsorted_agree(ranges in disjoint_ranges(6), probes in proptest::collection::vec(any::<u32>(), 20)) {
        let mut unsorted = IntervalMap::new();
        for (i, &(s, e)) in ranges.iter().enumerate() {
            unsorted.insert(s, e, i);
        }
        let mut sorted = unsorted.clone();
        sorted.finish();
        for p in probes {
            prop_assert_eq!(unsorted.get(p), sorted.get(p), "probe {}", p);
        }
    }

    /// GeoDb uppercases codes and round-trips lookups.
    #[test]
    fn geodb_normalizes(ranges in disjoint_ranges(5), code in "[a-zA-Z]{2}") {
        let mut db = GeoDb::new();
        for &(s, e) in &ranges {
            db.add_range(s, e, &code);
        }
        db.finish();
        let upper = code.to_ascii_uppercase();
        for &(s, _) in &ranges {
            prop_assert_eq!(db.lookup(s), Some(upper.as_str()));
        }
    }

    /// AsnDb whois lines are parseable pipe-separated rows.
    #[test]
    fn whois_line_format(ranges in disjoint_ranges(5), asn in 1u32..1_000_000, probe in any::<u32>()) {
        let mut db = AsnDb::new();
        for &(s, e) in &ranges {
            db.add_range(s, e, asn, "TEST-AS", "us");
        }
        db.finish();
        let line = db.whois_line(probe);
        let fields: Vec<&str> = line.split(" | ").collect();
        prop_assert_eq!(fields.len(), 4);
        // Field 2 is always the dotted-quad of the probe.
        let octets: Vec<&str> = fields[1].split('.').collect();
        prop_assert_eq!(octets.len(), 4);
        let asn_text = asn.to_string();
        if db.lookup(probe).is_some() {
            prop_assert_eq!(fields[0], asn_text.as_str());
            prop_assert_eq!(fields[2], "US");
        } else {
            prop_assert_eq!(fields[0], "NA");
        }
    }
}
