//! Property-based tests for the orchestrator wire formats.
//!
//! Adversarial round-trips for every wire pair the crate registers:
//! `StageState`, `CampaignDescriptor`, `CaseCkpt` fields and full
//! `CampaignCheckpoint` lines — plus digest tamper-detection: any
//! single-byte substitution anywhere in a checkpoint line must be
//! rejected at parse time, never silently accepted as a different
//! checkpoint.

use filterwatch_measure::MeasurementQuality;
use filterwatch_orchestrator::{
    CampaignCheckpoint, CampaignDescriptor, CampaignKind, CaseCkpt, StageState,
};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = CampaignKind> {
    prop_oneof![
        Just(CampaignKind::Standard),
        Just(CampaignKind::Demo),
        Just(CampaignKind::Generated),
    ]
}

fn any_descriptor() -> impl Strategy<Value = CampaignDescriptor> {
    (any_kind(), any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
        |(kind, seed, chaos, trace)| {
            let mut d = CampaignDescriptor::new(kind, seed);
            d.chaos = chaos;
            d.trace = trace;
            d
        },
    )
}

fn any_stage() -> impl Strategy<Value = StageState> {
    prop_oneof![
        Just(StageState::Identify),
        (0usize..32).prop_map(|case| StageState::Baseline { case }),
        (0usize..32).prop_map(|case| StageState::Submit { case }),
        (0usize..32, any::<u64>()).prop_map(|(case, deadline_secs)| StageState::Wait {
            case,
            deadline_secs
        }),
        (0usize..32).prop_map(|case| StageState::Retest { case }),
        Just(StageState::Characterize),
        Just(StageState::Done),
    ]
}

fn any_quality() -> impl Strategy<Value = MeasurementQuality> {
    (
        any::<u64>(),
        0u64..10_000,
        0u64..1_000,
        0u64..1_000,
        0u64..100_000,
        0u64..1_000,
        0u64..100_000,
    )
        .prop_map(
            |(
                fetch_attempts,
                retries,
                breaker_trips,
                breaker_skips,
                quorum_trials,
                inconclusive,
                verdicts,
            )| {
                MeasurementQuality {
                    fetch_attempts,
                    retries,
                    breaker_trips,
                    breaker_skips,
                    quorum_trials,
                    inconclusive,
                    verdicts,
                }
            },
        )
}

/// Attributed product slugs are wire tokens: lowercase, no commas or
/// whitespace (the field joins them with `,`).
fn any_attributed() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z][a-z0-9-]{0,10}".prop_map(|s: String| s), 0..4)
}

/// A case summary for a given index; the index itself is assigned by
/// the checkpoint strategy so case fields stay in spec order.
fn any_case_at(index: usize) -> impl Strategy<Value = CaseCkpt> {
    (
        proptest::option::of(0usize..1_000),
        0usize..1_000,
        0usize..1_000,
        0usize..1_000,
        0usize..1_000,
        any::<bool>(),
        any_attributed(),
        any_quality(),
    )
        .prop_map(
            move |(acc, ok, blk, hold, inc, confirmed, attributed, quality)| CaseCkpt {
                index,
                accessible_before: acc,
                submissions_accepted: ok,
                submitted_blocked: blk,
                holdout_blocked: hold,
                retest_inconclusive: inc,
                confirmed,
                attributed,
                quality,
            },
        )
}

fn any_checkpoint() -> impl Strategy<Value = CampaignCheckpoint> {
    (
        any_descriptor(),
        any_stage(),
        any::<u64>(),
        proptest::collection::vec(any_case_at(0), 0..4),
    )
        .prop_map(|(descriptor, stage, clock_secs, mut cases)| {
            for (i, case) in cases.iter_mut().enumerate() {
                case.index = i;
            }
            CampaignCheckpoint {
                descriptor,
                stage,
                clock_secs,
                cases,
            }
        })
}

proptest! {
    /// Stage lines round-trip byte-exact.
    #[test]
    fn stage_lines_round_trip(stage in any_stage()) {
        let line = stage.to_line();
        prop_assert_eq!(StageState::parse_line(&line), Ok(stage.clone()));
        prop_assert_eq!(
            StageState::parse_line(&line).expect("round trip").to_line(),
            line
        );
    }

    /// Descriptor lines round-trip byte-exact.
    #[test]
    fn descriptor_lines_round_trip(descriptor in any_descriptor()) {
        let line = descriptor.to_line();
        prop_assert_eq!(CampaignDescriptor::parse_line(&line), Ok(descriptor));
    }

    /// Case fields round-trip, whatever the counters and attributions.
    #[test]
    fn case_fields_round_trip(case in any_case_at(0), index in 0usize..64) {
        let case = CaseCkpt { index, ..case };
        let field = case.to_field();
        prop_assert!(!field.contains('\t'), "case field must be tab-free: {field:?}");
        prop_assert_eq!(CaseCkpt::parse_field(&field), Ok(case));
    }

    /// Full checkpoint lines round-trip byte-exact.
    #[test]
    fn checkpoint_lines_round_trip(ckpt in any_checkpoint()) {
        let line = ckpt.to_line();
        prop_assert!(!line.contains('\n'), "checkpoint must be one line: {line:?}");
        let back = CampaignCheckpoint::parse_line(&line)
            .unwrap_or_else(|e| panic!("parse_line({line:?}): {e}"));
        prop_assert_eq!(&back, &ckpt);
        prop_assert_eq!(back.to_line(), line);
    }

    /// Any single-byte substitution anywhere in the line — body, tabs,
    /// digest — is rejected. FNV-1a's per-byte step is a bijection, so
    /// an equal-length substitution can never collide.
    #[test]
    fn corrupted_checkpoint_lines_are_rejected(
        ckpt in any_checkpoint(),
        pos_pick in any::<u64>(),
        byte_pick in 0u8..95,
    ) {
        let line = ckpt.to_line();
        let mut bytes = line.clone().into_bytes();
        let pos = (pos_pick % bytes.len() as u64) as usize;
        // Substitute a printable ASCII byte (or a tab, to attack the
        // field structure) that differs from the original.
        let replacement = if byte_pick == 0 { b'\t' } else { byte_pick + 32 };
        if replacement != bytes[pos] {
            bytes[pos] = replacement;
            let corrupted = String::from_utf8(bytes).expect("ascii stays utf8");
            prop_assert!(
                CampaignCheckpoint::parse_line(&corrupted).is_err(),
                "corrupting byte {pos} of {line:?} into {corrupted:?} was accepted"
            );
        }
    }
}
