//! Scheduler and crash-recovery integration tests.
//!
//! The acceptance battery for the orchestrator: concurrent scheduling
//! and rate limits must never change what a campaign measures
//! (identify/confirm tables byte-identical to the linear
//! `Campaign::run`), a campaign killed at *every* checkpoint boundary
//! must resume to byte-identical tables, and a wedged vantage must
//! quarantine without stalling the campaigns scheduled around it.

use filterwatch_core::campaign::Campaign;
use filterwatch_orchestrator::{
    resume_paper_campaign, run_paper_campaign, CampaignCheckpoint, CampaignDescriptor,
    CampaignKind, CampaignStatus, CrashPlan, Orchestrator, Outcome, PaperDriver, StageState,
    StallPlan, StallingDriver, WatchdogConfig,
};
use filterwatch_trace::{render_profile, ProvenanceIndex, StepKind};

/// The workspace's default world seed.
const SEED: u64 = 5;

fn demo_descriptor(seed: u64) -> CampaignDescriptor {
    CampaignDescriptor::new(CampaignKind::Demo, seed)
}

fn sequential_tables(seed: u64) -> (String, String) {
    let report = Campaign::demo(seed).run();
    (report.identify_table(), report.confirm_table())
}

#[test]
fn concurrent_campaigns_match_sequential_runs() {
    let seeds = [5u64, 6, 7];
    let drivers: Vec<PaperDriver> = seeds
        .iter()
        .map(|&s| PaperDriver::new(demo_descriptor(s)).expect("demo driver"))
        .collect();
    let mut orch = Orchestrator::new(drivers);
    assert_eq!(orch.run(), Outcome::Complete);
    for (i, (driver, status)) in orch.into_drivers().into_iter().enumerate() {
        assert_eq!(status, CampaignStatus::Done, "campaign {i}");
        let report = driver.into_report();
        let (identify, confirm) = sequential_tables(seeds[i]);
        assert_eq!(report.identify_table(), identify, "seed {}", seeds[i]);
        assert_eq!(report.confirm_table(), confirm, "seed {}", seeds[i]);
    }
}

#[test]
fn rate_limits_defer_work_without_changing_tables() {
    // Demo campaigns at different seeds share their case-study ISPs,
    // so a per-vantage limit of one forces real deferrals.
    let seeds = [5u64, 6];
    let drivers: Vec<PaperDriver> = seeds
        .iter()
        .map(|&s| PaperDriver::new(demo_descriptor(s)).expect("demo driver"))
        .collect();
    let mut orch = Orchestrator::new(drivers).with_rate_limit(1);
    assert_eq!(orch.run(), Outcome::Complete);
    for (i, (driver, status)) in orch.into_drivers().into_iter().enumerate() {
        assert_eq!(status, CampaignStatus::Done, "campaign {i}");
        let report = driver.into_report();
        let (identify, confirm) = sequential_tables(seeds[i]);
        assert_eq!(report.identify_table(), identify, "seed {}", seeds[i]);
        assert_eq!(report.confirm_table(), confirm, "seed {}", seeds[i]);
    }
}

#[test]
fn wedged_campaign_quarantines_without_stalling_others() {
    let wedged = StallingDriver::new(
        PaperDriver::new(demo_descriptor(5)).expect("demo driver"),
        StallPlan::forever(StageState::Submit { case: 0 }),
    );
    let healthy = StallingDriver::new(
        PaperDriver::new(demo_descriptor(6)).expect("demo driver"),
        StallPlan::at_stage(StageState::Done, 0),
    );
    let mut orch = Orchestrator::with_stages(vec![
        (wedged, StageState::Identify),
        (healthy, StageState::Identify),
    ])
    .with_watchdog(WatchdogConfig { stall_budget: 3 });
    assert_eq!(orch.run(), Outcome::Complete);

    let statuses = orch.statuses();
    assert_eq!(
        statuses[0],
        CampaignStatus::Quarantined {
            stage: "submit:0".to_string()
        }
    );
    assert_eq!(statuses[1], CampaignStatus::Done);

    // The quarantined campaign's last checkpoint is the boundary it
    // wedged at — still resumable, e.g. from a healthier vantage.
    let last = orch
        .checkpoints(0)
        .last()
        .expect("quarantined campaign has checkpoints")
        .clone();
    let parsed = CampaignCheckpoint::parse_line(&last).expect("valid checkpoint");
    assert_eq!(parsed.stage, StageState::Submit { case: 0 });

    // The healthy campaign's tables are untouched by its neighbour.
    let (_, healthy_status) = orch.into_drivers().pop().expect("two campaigns");
    assert_eq!(healthy_status, CampaignStatus::Done);
    let rerun = resume_paper_campaign(&last).expect("resume quarantined campaign");
    let (identify, confirm) = sequential_tables(5);
    assert_eq!(rerun.identify_table(), identify);
    assert_eq!(rerun.confirm_table(), confirm);
}

#[test]
fn crash_at_every_checkpoint_resumes_byte_identical() {
    let descriptor = demo_descriptor(SEED);
    let (reference, checkpoints) =
        run_paper_campaign(descriptor.clone()).expect("uninterrupted run");
    let ref_identify = reference.identify_table();
    let ref_confirm = reference.confirm_table();

    // The orchestrated run itself must match the linear driver.
    let (identify, confirm) = sequential_tables(SEED);
    assert_eq!(ref_identify, identify);
    assert_eq!(ref_confirm, confirm);

    // A demo campaign (4 cases) visits 19 boundaries: the initial
    // Identify checkpoint, four per case, Characterize and Done.
    assert_eq!(checkpoints.len(), 19);
    assert!(checkpoints[0].contains("stage:identify"));
    assert!(checkpoints.iter().any(|c| c.contains("stage:wait:")));
    assert!(checkpoints
        .last()
        .expect("non-empty")
        .contains("stage:done"));

    for step in 0..checkpoints.len() as u64 {
        let driver = PaperDriver::new(descriptor.clone()).expect("demo driver");
        let mut orch = Orchestrator::new(vec![driver]).with_crash_plan(CrashPlan::at_step(step));
        assert_eq!(
            orch.run(),
            Outcome::Crashed {
                at_checkpoint: step
            }
        );
        let last = orch
            .checkpoints(0)
            .last()
            .expect("crashed campaign wrote checkpoints");
        assert_eq!(last, &checkpoints[step as usize]);
        let resumed = resume_paper_campaign(last)
            .unwrap_or_else(|e| panic!("resume after crash at step {step}: {e}"));
        assert_eq!(
            resumed.identify_table(),
            ref_identify,
            "identify table diverged resuming from step {step}"
        );
        assert_eq!(
            resumed.confirm_table(),
            ref_confirm,
            "confirm table diverged resuming from step {step}"
        );
    }
}

#[test]
fn tampered_checkpoint_never_resumes() {
    let (_, checkpoints) = run_paper_campaign(demo_descriptor(SEED)).expect("uninterrupted run");
    let line = &checkpoints[3];
    let tampered = line.replace("clock:", "clock:9");
    assert!(resume_paper_campaign(&tampered).is_err());
}

#[test]
fn resumed_campaign_traces_scheduler_ancestry() {
    let descriptor = demo_descriptor(SEED).with_trace();
    // Crash right after the first Wait checkpoint (boundary index 3:
    // identify, baseline:0, submit:0, wait:0).
    let driver = PaperDriver::new(descriptor.clone()).expect("demo driver");
    let mut orch = Orchestrator::new(vec![driver]).with_crash_plan(CrashPlan::at_step(3));
    assert_eq!(orch.run(), Outcome::Crashed { at_checkpoint: 3 });
    let last = orch
        .checkpoints(0)
        .last()
        .expect("crashed campaign wrote checkpoints")
        .clone();
    assert!(last.contains("stage:wait:0:"));

    let resumed = resume_paper_campaign(&last).expect("resume traced campaign");

    // The trace carries the scheduler's causal steps...
    let has = |kind: StepKind| resumed.trace.iter().any(|e| e.step == kind);
    assert!(has(StepKind::Resume), "trace lacks a resume span");
    assert!(has(StepKind::Checkpoint), "trace lacks checkpoint points");
    assert!(has(StepKind::SchedTimer), "trace lacks timer-fire points");

    // ...the profile rolls them up...
    let profile = render_profile(&resumed.trace);
    assert!(profile.contains("resume"), "profile: {profile}");
    assert!(profile.contains("sched-timer"), "profile: {profile}");
    assert!(profile.contains("checkpoint"), "profile: {profile}");

    // ...and `explain` shows the restore in some verdict's ancestry:
    // the resume span stays open under the case scope, so post-restore
    // retests nest beneath it.
    let index = ProvenanceIndex::build(&resumed.trace);
    let explained = index
        .urls()
        .iter()
        .filter_map(|url| index.explain(url))
        .any(|text| text.contains("resume"));
    assert!(explained, "no explain artifact shows the resume ancestry");

    // Telemetry mirrors the same story: wait spans and scheduler events.
    assert!(resumed
        .telemetry
        .spans
        .iter()
        .any(|s| s.stage == "sched.wait" && s.closed));
    assert!(resumed
        .telemetry
        .events
        .iter()
        .any(|e| e.kind == "sched.resume"));
    assert!(resumed
        .telemetry
        .events
        .iter()
        .any(|e| e.kind == "sched.checkpoint"));

    // And the tables still match the untraced, uninterrupted run.
    let (identify, confirm) = sequential_tables(SEED);
    assert_eq!(resumed.identify_table(), identify);
    assert_eq!(resumed.confirm_table(), confirm);
}
