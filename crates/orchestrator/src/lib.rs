//! Crash-safe resumable campaign state machines.
//!
//! The paper's confirm stage is inherently long-running: submit a URL
//! subset to the vendor, wait 3–5 days, retest (§5). The core crate
//! runs that as one linear in-memory loop, so an interruption loses
//! the whole campaign. This crate reifies a campaign as an explicit
//! state machine over typed stages —
//!
//! ```text
//! Identify → Baseline(c) → Submit(c) → Wait(c, deadline) → Retest(c) ─┐
//!               ↑ ───────────────── next case ──────────────────────── ┘
//!                                  → Characterize → Done
//! ```
//!
//! — driven by a virtual-time scheduler ([`Orchestrator`]) that runs
//! many campaigns concurrently, parking `Wait` stages on a
//! [`TimerWheel`](filterwatch_netsim::TimerWheel) instead of blocking.
//! Every stage transition writes a [`CampaignCheckpoint`] line in the
//! workspace's `to_line`/`parse_line` wire discipline; a campaign
//! killed at any boundary restores via [`replay`] to byte-identical
//! identify/confirm tables. Supervision handles the unreliable-vantage
//! reality: [`CrashPlan`] injects deterministic crashes for the
//! recovery battery, a watchdog quarantines campaigns wedged past
//! their stall budget as `Inconclusive` (reusing the measure crate's
//! [`CircuitBreaker`](filterwatch_measure::CircuitBreaker)), and
//! per-vantage rate limits spread concurrent campaigns' load without
//! ever touching their world clocks.

pub mod checkpoint;
pub mod driver;
pub mod resume;
pub mod scheduler;
pub mod stage;

pub use checkpoint::{CampaignCheckpoint, CaseCkpt};
pub use driver::{PaperDriver, StageDriver, StallPlan, StallingDriver, StepOutcome};
pub use resume::{replay, ResumeError};
pub use scheduler::{CampaignStatus, CrashPlan, Orchestrator, Outcome, WatchdogConfig};
pub use stage::{CampaignDescriptor, CampaignKind, StageState};

use filterwatch_core::campaign::CampaignReport;

/// Run one paper campaign (standard or demo) under the orchestrator,
/// uninterrupted, returning its report plus every checkpoint line the
/// run wrote. The tables in the report are byte-identical to
/// [`Campaign::run`](filterwatch_core::campaign::Campaign::run) at the
/// same descriptor — the orchestrator changes *when* stages run, never
/// what they measure.
pub fn run_paper_campaign(
    descriptor: CampaignDescriptor,
) -> Result<(CampaignReport, Vec<String>), String> {
    let driver = PaperDriver::new(descriptor)?;
    let mut orch = Orchestrator::new(vec![driver]);
    match orch.run() {
        Outcome::Complete => {}
        Outcome::Crashed { at_checkpoint } => {
            return Err(format!(
                "unexpected crash at checkpoint {at_checkpoint} with no crash plan"
            ))
        }
    }
    let checkpoints = orch.checkpoints(0).to_vec();
    let mut drivers = orch.into_drivers();
    match drivers.pop() {
        Some((driver, CampaignStatus::Done)) => Ok((driver.into_report(), checkpoints)),
        Some((_, status)) => Err(format!("campaign did not finish: {status:?}")),
        None => Err("no campaign scheduled".to_string()),
    }
}

/// Restore a paper campaign from a checkpoint line, run it to
/// completion, and return its report. The identify/confirm tables are
/// byte-identical to the uninterrupted run's.
pub fn resume_paper_campaign(checkpoint_line: &str) -> Result<CampaignReport, ResumeError> {
    let ckpt = CampaignCheckpoint::parse_line(checkpoint_line).map_err(ResumeError::Parse)?;
    let mut driver = PaperDriver::new(ckpt.descriptor.clone()).map_err(ResumeError::Parse)?;
    let stage = replay(&mut driver, &ckpt)?;
    let mut orch = Orchestrator::with_stages(vec![(driver, stage)]);
    match orch.run() {
        Outcome::Complete => {}
        Outcome::Crashed { at_checkpoint } => {
            return Err(ResumeError::Parse(format!(
                "unexpected crash at checkpoint {at_checkpoint} with no crash plan"
            )))
        }
    }
    let mut drivers = orch.into_drivers();
    match drivers.pop() {
        Some((driver, CampaignStatus::Done)) => Ok(driver.into_report()),
        Some((_, status)) => Err(ResumeError::Drift(format!(
            "resumed campaign did not finish: {status:?}"
        ))),
        None => Err(ResumeError::Drift("no campaign scheduled".to_string())),
    }
}
