//! The driver abstraction the scheduler executes.
//!
//! A [`StageDriver`] owns one campaign's world and knows how to execute
//! each [`StageState`]; the orchestrator owns the transitions, the
//! timer wheel and the checkpoints. [`PaperDriver`] adapts the core
//! crate's [`CampaignRun`] (the paper's standard/demo campaigns);
//! the testkit provides its own driver over generated worlds; and
//! [`StallingDriver`] wraps any driver with deterministic stall
//! injection so the watchdog path is testable without a genuinely
//! wedged vantage.

use filterwatch_core::campaign::{Campaign, CampaignReport, CampaignRun};
use filterwatch_measure::ResilienceConfig;
use filterwatch_telemetry::SpanId;
use filterwatch_trace::{StepKind, TraceMode};

use crate::checkpoint::CaseCkpt;
use crate::stage::{CampaignDescriptor, CampaignKind, StageState};

/// What one stage execution did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The stage ran to completion; transition to the next boundary.
    Complete,
    /// The stage made no progress this round (a wedged vantage, a hung
    /// submission channel). The watchdog counts these against the
    /// campaign's stall budget.
    Stalled,
}

/// One campaign's executable surface, as the scheduler sees it.
pub trait StageDriver {
    /// The descriptor a checkpoint carries to rebuild this campaign.
    fn descriptor(&self) -> &CampaignDescriptor;

    /// Number of confirmation case studies the campaign runs.
    fn case_count(&self) -> usize;

    /// Completed case studies so far.
    fn completed_cases(&self) -> usize;

    /// The campaign's virtual clock, in seconds.
    fn now_secs(&self) -> u64;

    /// Execute one stage. `Wait` and `Done` are never passed here —
    /// the scheduler services waits from the timer wheel.
    fn execute(&mut self, stage: &StageState) -> StepOutcome;

    /// Announce the wait after `case`'s submission and return the
    /// absolute virtual-clock deadline (seconds) to park until.
    fn wait_deadline_secs(&mut self, case: usize) -> u64;

    /// Advance the campaign's virtual clock to an absolute deadline.
    fn advance_to_secs(&mut self, deadline_secs: u64);

    /// The durable summary of a completed case study.
    fn case_checkpoint(&self, case: usize) -> CaseCkpt;

    /// The vantage a stage measures through, for per-vantage rate
    /// limits (`None` = not vantage-bound).
    fn stage_vantage(&self, stage: &StageState) -> Option<String>;

    /// Observer hook: a checkpoint was just written at `stage`.
    fn on_checkpoint(&mut self, _stage: &StageState) {}

    /// Observer hook: the campaign was restored from a checkpoint and
    /// will continue from `stage`.
    fn on_resume(&mut self, _stage: &StageState) {}

    /// Observer hook: the timer wheel fired `case`'s wait deadline.
    fn on_timer_fire(&mut self, _case: usize, _deadline_secs: u64) {}
}

/// [`StageDriver`] over the core crate's [`CampaignRun`]: the paper's
/// standard and demo campaigns, rebuilt from a descriptor.
pub struct PaperDriver {
    descriptor: CampaignDescriptor,
    run: CampaignRun,
    wait_span: SpanId,
}

impl PaperDriver {
    /// Rebuild the descriptor's campaign and open its scopes. Fails on
    /// [`CampaignKind::Generated`] — those descriptors belong to the
    /// testkit's driver factory.
    pub fn new(descriptor: CampaignDescriptor) -> Result<PaperDriver, String> {
        let mut campaign = match descriptor.kind {
            CampaignKind::Standard => Campaign::standard(descriptor.seed),
            CampaignKind::Demo => Campaign::demo(descriptor.seed),
            CampaignKind::Generated => {
                return Err(
                    "generated campaigns are built by the testkit driver factory".to_string(),
                )
            }
        };
        if descriptor.chaos {
            campaign = campaign.with_resilience(ResilienceConfig::chaos());
        }
        if descriptor.trace {
            campaign = campaign.with_trace(TraceMode::Full);
        }
        Ok(PaperDriver {
            descriptor,
            run: CampaignRun::begin(campaign),
            wait_span: SpanId::NONE,
        })
    }

    /// Finish the campaign and assemble its report. Call only once the
    /// orchestrator has driven the campaign to `Done`.
    pub fn into_report(self) -> CampaignReport {
        self.run.finish()
    }

    /// The underlying stepwise campaign (for assertions in tests).
    pub fn run(&self) -> &CampaignRun {
        &self.run
    }
}

impl StageDriver for PaperDriver {
    fn descriptor(&self) -> &CampaignDescriptor {
        &self.descriptor
    }

    fn case_count(&self) -> usize {
        self.run.case_count()
    }

    fn completed_cases(&self) -> usize {
        self.run.confirmations().len()
    }

    fn now_secs(&self) -> u64 {
        self.run.now_secs()
    }

    fn execute(&mut self, stage: &StageState) -> StepOutcome {
        match *stage {
            StageState::Identify => self.run.identify(),
            StageState::Baseline { case } => self.run.baseline(case),
            StageState::Submit { .. } => self.run.submit(),
            StageState::Retest { .. } => self.run.retest(),
            StageState::Characterize => self.run.characterize_confirmed(),
            // The scheduler never executes these; nothing to do.
            StageState::Wait { .. } | StageState::Done => {}
        }
        StepOutcome::Complete
    }

    fn wait_deadline_secs(&mut self, case: usize) -> u64 {
        let deadline = self.run.announce_wait();
        self.wait_span = self.run.telemetry().span_start(
            filterwatch_telemetry::stage::SCHED_WAIT,
            &format!("case {case}"),
            self.run.now_secs(),
        );
        deadline
    }

    fn advance_to_secs(&mut self, deadline_secs: u64) {
        self.run.advance_to(deadline_secs);
    }

    fn case_checkpoint(&self, case: usize) -> CaseCkpt {
        CaseCkpt::from_result(case, &self.run.confirmations()[case])
    }

    fn stage_vantage(&self, stage: &StageState) -> Option<String> {
        stage.case().map(|c| self.run.case_isp(c).to_string())
    }

    fn on_checkpoint(&mut self, stage: &StageState) {
        let now = self.run.now_secs();
        self.run
            .telemetry()
            .event(now, "sched.checkpoint", &[("stage", &stage.to_line())]);
        let tracer = self.run.tracer().clone();
        if tracer.recording() {
            tracer.point(StepKind::Checkpoint, now, &[("stage", &stage.to_line())]);
        }
    }

    fn on_resume(&mut self, stage: &StageState) {
        let now = self.run.now_secs();
        self.run
            .telemetry()
            .event(now, "sched.resume", &[("stage", &stage.to_line())]);
        let tracer = self.run.tracer().clone();
        if tracer.is_enabled() {
            // Opened and deliberately left open: the enclosing scope
            // (case or campaign) closes it when it ends, so every
            // verdict rendered after the restore carries this span in
            // its ancestry — `explain` shows the resume.
            tracer.open(
                StepKind::Resume,
                now,
                &[("stage", &stage.to_line()), ("clock", &now.to_string())],
            );
        }
    }

    fn on_timer_fire(&mut self, case: usize, deadline_secs: u64) {
        let now = self.run.now_secs();
        let tracer = self.run.tracer().clone();
        if tracer.recording() {
            tracer.point(
                StepKind::SchedTimer,
                now,
                &[
                    ("case", &case.to_string()),
                    ("deadline", &deadline_secs.to_string()),
                ],
            );
        }
        self.run.telemetry().span_end(self.wait_span, now);
        self.wait_span = SpanId::NONE;
    }
}

/// Deterministic stall injection: which stage wedges, and for how many
/// scheduler polls. Mirrors the `FaultProfile` style — a plan is data,
/// validated up front, applied by a wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallPlan {
    /// Stage at which to stall; matched on the boundary, ignoring any
    /// `Wait` deadline payload.
    pub stage: StageState,
    /// How many polls report [`StepOutcome::Stalled`] before the stage
    /// completes normally; `u64::MAX` wedges forever.
    pub stalls: u64,
}

impl StallPlan {
    /// Stall `stalls` polls at the given stage, then recover.
    pub fn at_stage(stage: StageState, stalls: u64) -> StallPlan {
        StallPlan { stage, stalls }
    }

    /// Wedge forever at the given stage (the watchdog must quarantine).
    pub fn forever(stage: StageState) -> StallPlan {
        StallPlan::at_stage(stage, u64::MAX)
    }
}

/// A [`StageDriver`] wrapper that injects the stalls a [`StallPlan`]
/// prescribes, delegating everything else to the inner driver.
pub struct StallingDriver<D> {
    inner: D,
    plan: StallPlan,
    stalled: u64,
}

impl<D: StageDriver> StallingDriver<D> {
    /// Wrap `inner` with the plan's stalls.
    pub fn new(inner: D, plan: StallPlan) -> StallingDriver<D> {
        StallingDriver {
            inner,
            plan,
            stalled: 0,
        }
    }

    /// Unwrap the inner driver.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: StageDriver> StageDriver for StallingDriver<D> {
    fn descriptor(&self) -> &CampaignDescriptor {
        self.inner.descriptor()
    }

    fn case_count(&self) -> usize {
        self.inner.case_count()
    }

    fn completed_cases(&self) -> usize {
        self.inner.completed_cases()
    }

    fn now_secs(&self) -> u64 {
        self.inner.now_secs()
    }

    fn execute(&mut self, stage: &StageState) -> StepOutcome {
        if self.plan.stage.same_boundary(stage) && self.stalled < self.plan.stalls {
            self.stalled += 1;
            return StepOutcome::Stalled;
        }
        self.inner.execute(stage)
    }

    fn wait_deadline_secs(&mut self, case: usize) -> u64 {
        self.inner.wait_deadline_secs(case)
    }

    fn advance_to_secs(&mut self, deadline_secs: u64) {
        self.inner.advance_to_secs(deadline_secs)
    }

    fn case_checkpoint(&self, case: usize) -> CaseCkpt {
        self.inner.case_checkpoint(case)
    }

    fn stage_vantage(&self, stage: &StageState) -> Option<String> {
        self.inner.stage_vantage(stage)
    }

    fn on_checkpoint(&mut self, stage: &StageState) {
        self.inner.on_checkpoint(stage)
    }

    fn on_resume(&mut self, stage: &StageState) {
        self.inner.on_resume(stage)
    }

    fn on_timer_fire(&mut self, case: usize, deadline_secs: u64) {
        self.inner.on_timer_fire(case, deadline_secs)
    }
}
