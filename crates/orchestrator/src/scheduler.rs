//! The virtual-time campaign scheduler.
//!
//! Many campaigns, one loop: each scheduler *round* visits every
//! runnable campaign in id order and executes at most one stage per
//! campaign, subject to per-vantage rate limits. A campaign whose
//! submission enters the vendor review period parks on a
//! [`TimerWheel`] keyed by its absolute virtual-clock deadline; when a
//! round finds nothing executable, the wheel fires the earliest
//! deadlines and the woken campaigns advance their own world clocks to
//! the fired deadline. Every stage transition writes a checkpoint
//! line; [`CrashPlan`] stops the scheduler right after a chosen
//! checkpoint, which is how the crash-recovery battery kills a
//! campaign at every boundary. A watchdog (a [`CircuitBreaker`] per
//! campaign counting stalled polls) quarantines wedged campaigns as
//! `Inconclusive` instead of letting them stall the loop.
//!
//! Everything is deterministic: campaigns are visited in id order,
//! timers fire in `(deadline, insertion)` order, and rate limits defer
//! work across rounds without ever touching a campaign's world clock —
//! so scheduling policy can change *when* a stage runs but never what
//! it measures.

use std::collections::BTreeMap;

use filterwatch_measure::{BreakerConfig, BreakerState, CircuitBreaker};
use filterwatch_netsim::{SimTime, TimerWheel};

use crate::checkpoint::CampaignCheckpoint;
use crate::driver::{StageDriver, StepOutcome};
use crate::stage::StageState;

/// Deterministic crash injection: stop the scheduler immediately after
/// writing the n-th checkpoint (counted across all campaigns,
/// 0-based). Mirrors the fault-plan style: a plan is plain data,
/// applied by the machinery it tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    crash_after: Option<u64>,
}

impl CrashPlan {
    /// Never crash.
    pub fn none() -> CrashPlan {
        CrashPlan { crash_after: None }
    }

    /// Crash right after the n-th checkpoint write (0-based).
    pub fn at_step(n: u64) -> CrashPlan {
        CrashPlan {
            crash_after: Some(n),
        }
    }
}

/// Watchdog tuning: how many stalled polls a campaign may accumulate
/// before it is quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Consecutive stalled polls before quarantine.
    pub stall_budget: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { stall_budget: 3 }
    }
}

/// Where a campaign ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Still has stages to execute.
    Running,
    /// Ran every stage to completion.
    Done,
    /// The watchdog gave up on it: the stage named here exhausted the
    /// stall budget, and the campaign's verdict is `Inconclusive`.
    Quarantined {
        /// The stage that wedged, as a wire line.
        stage: String,
    },
}

/// How a scheduler run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every campaign is `Done` or `Quarantined`.
    Complete,
    /// The [`CrashPlan`] fired after the given checkpoint index.
    Crashed {
        /// Global index of the last checkpoint written.
        at_checkpoint: u64,
    },
}

struct Slot<D> {
    driver: D,
    stage: StageState,
    status: CampaignStatus,
    /// Whether the current `Wait` stage is already on the wheel.
    parked: bool,
    breaker: CircuitBreaker,
    checkpoints: Vec<String>,
}

/// The scheduler over a fleet of campaign drivers.
pub struct Orchestrator<D> {
    slots: Vec<Slot<D>>,
    wheel: TimerWheel<usize>,
    crash: CrashPlan,
    watchdog: WatchdogConfig,
    /// Max stage executions per vantage per round (`None` = unlimited).
    rate_limit: Option<usize>,
    /// Scheduler rounds elapsed (the watchdog's clock).
    round: u64,
    /// Checkpoints written across all campaigns.
    checkpoint_seq: u64,
}

impl<D: StageDriver> Orchestrator<D> {
    /// Schedule fresh campaigns, all starting at `Identify`.
    pub fn new(drivers: Vec<D>) -> Orchestrator<D> {
        Orchestrator::with_stages(
            drivers
                .into_iter()
                .map(|d| (d, StageState::Identify))
                .collect(),
        )
    }

    /// Schedule campaigns at explicit stages — the resume entry point.
    pub fn with_stages(drivers: Vec<(D, StageState)>) -> Orchestrator<D> {
        let watchdog = WatchdogConfig::default();
        let slots = drivers
            .into_iter()
            .map(|(driver, stage)| Slot {
                status: if stage == StageState::Done {
                    CampaignStatus::Done
                } else {
                    CampaignStatus::Running
                },
                driver,
                stage,
                parked: false,
                breaker: CircuitBreaker::new(breaker_config(&watchdog)),
                checkpoints: Vec::new(),
            })
            .collect();
        Orchestrator {
            slots,
            wheel: TimerWheel::new(),
            crash: CrashPlan::none(),
            watchdog,
            rate_limit: None,
            round: 0,
            checkpoint_seq: 0,
        }
    }

    /// Builder-style: arm a crash plan.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash = plan;
        self
    }

    /// Builder-style: tune the watchdog stall budget.
    pub fn with_watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = config;
        for slot in &mut self.slots {
            slot.breaker = CircuitBreaker::new(breaker_config(&config));
        }
        self
    }

    /// Builder-style: cap stage executions per vantage per round.
    /// Limits only *defer* work to later rounds — they never touch a
    /// campaign's world clock, so verdict tables are unaffected.
    pub fn with_rate_limit(mut self, per_vantage_per_round: usize) -> Self {
        self.rate_limit = Some(per_vantage_per_round.max(1));
        self
    }

    /// Checkpoint lines written for campaign `id`, in write order.
    pub fn checkpoints(&self, id: usize) -> &[String] {
        &self.slots[id].checkpoints
    }

    /// Every campaign's current status, in id order.
    pub fn statuses(&self) -> Vec<CampaignStatus> {
        self.slots.iter().map(|s| s.status.clone()).collect()
    }

    /// Tear down into `(driver, status)` pairs, in id order.
    pub fn into_drivers(self) -> Vec<(D, CampaignStatus)> {
        self.slots
            .into_iter()
            .map(|s| (s.driver, s.status))
            .collect()
    }

    /// Drive every campaign to `Done` (or quarantine), or stop at the
    /// crash plan's checkpoint.
    pub fn run(&mut self) -> Outcome {
        // Every campaign's current boundary is durable before any
        // stage executes — a crash before the first transition must
        // still be resumable.
        for id in 0..self.slots.len() {
            if self.slots[id].status == CampaignStatus::Running
                && self.slots[id].checkpoints.is_empty()
            {
                if let Some(outcome) = self.write_checkpoint(id) {
                    return outcome;
                }
            }
        }
        loop {
            if self.settled() {
                return Outcome::Complete;
            }
            self.round += 1;
            let mut executed = false;
            let mut vantage_used: BTreeMap<String, usize> = BTreeMap::new();
            for id in 0..self.slots.len() {
                if self.slots[id].status != CampaignStatus::Running {
                    continue;
                }
                let stage = self.slots[id].stage.clone();
                match stage {
                    StageState::Wait { deadline_secs, .. } => {
                        if !self.slots[id].parked {
                            self.wheel.schedule(SimTime::from_secs(deadline_secs), id);
                            self.slots[id].parked = true;
                        }
                        continue;
                    }
                    StageState::Done => {
                        self.slots[id].status = CampaignStatus::Done;
                        continue;
                    }
                    _ => {}
                }
                if let Some(limit) = self.rate_limit {
                    if let Some(vantage) = self.slots[id].driver.stage_vantage(&stage) {
                        let used = vantage_used.entry(vantage).or_insert(0);
                        if *used >= limit {
                            // Deferred to a later round; the campaign's
                            // own clock does not move.
                            continue;
                        }
                        *used += 1;
                    }
                }
                executed = true;
                match self.slots[id].driver.execute(&stage) {
                    StepOutcome::Complete => {
                        self.slots[id].breaker.record_success();
                        let next = self.next_stage(id, &stage);
                        self.slots[id].stage = next;
                        if let Some(outcome) = self.write_checkpoint(id) {
                            return outcome;
                        }
                        if self.slots[id].stage == StageState::Done {
                            self.slots[id].status = CampaignStatus::Done;
                        }
                    }
                    StepOutcome::Stalled => {
                        // The watchdog's clock is the round counter —
                        // stalls are a scheduling phenomenon, not a
                        // virtual-time one.
                        let now = SimTime::from_secs(self.round);
                        self.slots[id].breaker.record_failure(now);
                        if self.slots[id].breaker.state() == BreakerState::Open {
                            self.slots[id].status = CampaignStatus::Quarantined {
                                stage: stage.to_line(),
                            };
                        }
                    }
                }
            }
            if !executed {
                // Nothing executable: wake the earliest deadline(s).
                if let Some(outcome) = self.fire_timers() {
                    return outcome;
                }
            }
        }
    }

    /// Fire the earliest deadline(s) on the wheel, advancing the woken
    /// campaigns' clocks. Returns a crash outcome if a checkpoint
    /// tripped the plan.
    fn fire_timers(&mut self) -> Option<Outcome> {
        let deadline = self.wheel.next_deadline()?;
        for id in self.wheel.pop_due(deadline) {
            // A quarantined campaign may still have a timer in flight;
            // its wake is dropped.
            if self.slots[id].status != CampaignStatus::Running {
                continue;
            }
            let stage = self.slots[id].stage.clone();
            if let StageState::Wait {
                case,
                deadline_secs,
            } = stage
            {
                self.slots[id].driver.advance_to_secs(deadline_secs);
                self.slots[id].driver.on_timer_fire(case, deadline_secs);
                self.slots[id].parked = false;
                self.slots[id].stage = StageState::Retest { case };
                if let Some(outcome) = self.write_checkpoint(id) {
                    return Some(outcome);
                }
            }
        }
        None
    }

    /// The stage after `completed` for campaign `id`.
    fn next_stage(&mut self, id: usize, completed: &StageState) -> StageState {
        let cases = self.slots[id].driver.case_count();
        match *completed {
            StageState::Identify => {
                if cases > 0 {
                    StageState::Baseline { case: 0 }
                } else {
                    StageState::Characterize
                }
            }
            StageState::Baseline { case } => StageState::Submit { case },
            StageState::Submit { case } => {
                let deadline_secs = self.slots[id].driver.wait_deadline_secs(case);
                StageState::Wait {
                    case,
                    deadline_secs,
                }
            }
            StageState::Wait { case, .. } => StageState::Retest { case },
            StageState::Retest { case } => {
                if case + 1 < cases {
                    StageState::Baseline { case: case + 1 }
                } else {
                    StageState::Characterize
                }
            }
            StageState::Characterize | StageState::Done => StageState::Done,
        }
    }

    /// Write campaign `id`'s current boundary as a checkpoint line.
    /// Returns the crash outcome when the plan fires on this write.
    fn write_checkpoint(&mut self, id: usize) -> Option<Outcome> {
        let slot = &mut self.slots[id];
        let ckpt = CampaignCheckpoint {
            descriptor: slot.driver.descriptor().clone(),
            stage: slot.stage.clone(),
            clock_secs: slot.driver.now_secs(),
            cases: (0..slot.driver.completed_cases())
                .map(|i| slot.driver.case_checkpoint(i))
                .collect(),
        };
        slot.checkpoints.push(ckpt.to_line());
        slot.driver.on_checkpoint(&ckpt.stage);
        let step = self.checkpoint_seq;
        self.checkpoint_seq += 1;
        if self.crash.crash_after == Some(step) {
            return Some(Outcome::Crashed {
                at_checkpoint: step,
            });
        }
        None
    }

    fn settled(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.status != CampaignStatus::Running)
    }
}

fn breaker_config(watchdog: &WatchdogConfig) -> BreakerConfig {
    BreakerConfig {
        failure_threshold: watchdog.stall_budget,
        // The watchdog never lets a quarantined campaign half-open:
        // the cooldown outlives any plausible run.
        cooldown_secs: u64::MAX / 2,
    }
}
