//! Typed campaign stages and the campaign descriptor.
//!
//! A campaign's position in the methodology is an explicit value: one
//! of the [`StageState`] variants, with the case-study cursor and any
//! pending wait deadline inside it. The orchestrator only ever holds a
//! campaign *between* stages, so a [`StageState`] plus the campaign's
//! [`CampaignDescriptor`] (which world to rebuild) is exactly what a
//! checkpoint needs to carry. Both render in the workspace's
//! `to_line`/`parse_line` wire discipline and are registered as
//! w1 wire pairs in `filterwatch-lint`.

/// Which campaign a descriptor rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// The paper's full campaign: ten Table 3 case studies.
    Standard,
    /// The reduced four-case demo campaign.
    Demo,
    /// A testkit generated-world campaign (the factory that owns the
    /// seed decides the topology).
    Generated,
}

impl CampaignKind {
    /// Stable wire token.
    pub fn to_token(&self) -> &'static str {
        match self {
            CampaignKind::Standard => "standard",
            CampaignKind::Demo => "demo",
            CampaignKind::Generated => "generated",
        }
    }

    /// Invert [`CampaignKind::to_token`].
    pub fn parse_token(token: &str) -> Result<CampaignKind, String> {
        match token {
            "standard" => Ok(CampaignKind::Standard),
            "demo" => Ok(CampaignKind::Demo),
            "generated" => Ok(CampaignKind::Generated),
            other => Err(format!("unknown campaign kind {other:?}")),
        }
    }
}

/// Everything needed to rebuild a campaign's world from scratch: the
/// campaign kind, its seed, and the chaos/trace toggles. Since worlds
/// are pure functions of the seed, this is the whole identity of a
/// campaign — a checkpoint carries a descriptor instead of any world
/// state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignDescriptor {
    /// Which campaign to rebuild.
    pub kind: CampaignKind,
    /// World seed.
    pub seed: u64,
    /// Arm measurement clients with the chaos resilience config.
    pub chaos: bool,
    /// Record a full causal trace.
    pub trace: bool,
}

impl CampaignDescriptor {
    /// A clean descriptor for the given kind and seed.
    pub fn new(kind: CampaignKind, seed: u64) -> CampaignDescriptor {
        CampaignDescriptor {
            kind,
            seed,
            chaos: false,
            trace: false,
        }
    }

    /// Builder-style: arm the chaos resilience config.
    pub fn with_chaos(mut self) -> CampaignDescriptor {
        self.chaos = true;
        self
    }

    /// Builder-style: record a full causal trace.
    pub fn with_trace(mut self) -> CampaignDescriptor {
        self.trace = true;
        self
    }

    /// Stable one-line rendering: `kind:seed` plus optional `:chaos`
    /// and `:trace` flags.
    pub fn to_line(&self) -> String {
        let mut line = format!("{}:{}", self.kind.to_token(), self.seed);
        if self.chaos {
            line.push_str(":chaos");
        }
        if self.trace {
            line.push_str(":trace");
        }
        line
    }

    /// Invert [`CampaignDescriptor::to_line`].
    pub fn parse_line(line: &str) -> Result<CampaignDescriptor, String> {
        let mut parts = line.split(':');
        let kind = CampaignKind::parse_token(parts.next().unwrap_or_default())?;
        let seed = parts
            .next()
            .ok_or_else(|| format!("missing seed in {line:?}"))?
            .parse()
            .map_err(|e| format!("bad seed in {line:?}: {e}"))?;
        let mut descriptor = CampaignDescriptor::new(kind, seed);
        for flag in parts {
            match flag {
                "chaos" => descriptor.chaos = true,
                "trace" => descriptor.trace = true,
                other => return Err(format!("unknown descriptor flag {other:?} in {line:?}")),
            }
        }
        Ok(descriptor)
    }
}

/// Where a campaign stands in the methodology. The per-case stages
/// carry the case-study cursor; `Wait` additionally carries the
/// absolute virtual-clock deadline the timer wheel fires at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageState {
    /// Stage 1: identify installations across the simulated Internet.
    Identify,
    /// Stage 2a: open case scopes, create controlled sites, pre-verify.
    Baseline {
        /// Case-study index (spec order).
        case: usize,
    },
    /// Stage 2b: submit the chosen subset to the vendor channel.
    Submit {
        /// Case-study index (spec order).
        case: usize,
    },
    /// Stage 2c: parked until the vendor review period elapses.
    Wait {
        /// Case-study index (spec order).
        case: usize,
        /// Absolute virtual-clock deadline in seconds.
        deadline_secs: u64,
    },
    /// Stage 2d: retest every site and render the case verdict.
    Retest {
        /// Case-study index (spec order).
        case: usize,
    },
    /// Stage 3: characterize every ISP where some product confirmed.
    Characterize,
    /// Nothing left to execute.
    Done,
}

impl StageState {
    /// Stable one-line rendering: the stage token, the case cursor for
    /// per-case stages, and the deadline for `Wait`.
    pub fn to_line(&self) -> String {
        match self {
            StageState::Identify => "identify".to_string(),
            StageState::Baseline { case } => format!("baseline:{case}"),
            StageState::Submit { case } => format!("submit:{case}"),
            StageState::Wait {
                case,
                deadline_secs,
            } => format!("wait:{case}:{deadline_secs}"),
            StageState::Retest { case } => format!("retest:{case}"),
            StageState::Characterize => "characterize".to_string(),
            StageState::Done => "done".to_string(),
        }
    }

    /// Invert [`StageState::to_line`].
    pub fn parse_line(line: &str) -> Result<StageState, String> {
        let mut parts = line.split(':');
        let head = parts.next().unwrap_or_default();
        let mut case_of = |what: &str| -> Result<usize, String> {
            parts
                .next()
                .ok_or_else(|| format!("missing {what} in {line:?}"))?
                .parse()
                .map_err(|e| format!("bad {what} in {line:?}: {e}"))
        };
        let stage = match head {
            "identify" => StageState::Identify,
            "baseline" => StageState::Baseline {
                case: case_of("case index")?,
            },
            "submit" => StageState::Submit {
                case: case_of("case index")?,
            },
            "wait" => StageState::Wait {
                case: case_of("case index")?,
                deadline_secs: case_of("deadline secs")? as u64,
            },
            "retest" => StageState::Retest {
                case: case_of("case index")?,
            },
            "characterize" => StageState::Characterize,
            "done" => StageState::Done,
            other => return Err(format!("unknown stage token {other:?}")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing fields in stage line {line:?}"));
        }
        Ok(stage)
    }

    /// The case-study cursor, for the per-case stages.
    pub fn case(&self) -> Option<usize> {
        match self {
            StageState::Baseline { case }
            | StageState::Submit { case }
            | StageState::Wait { case, .. }
            | StageState::Retest { case } => Some(*case),
            _ => None,
        }
    }

    /// Whether two stages are the same boundary, ignoring the `Wait`
    /// deadline payload (which replay recomputes and cross-checks).
    pub fn same_boundary(&self, other: &StageState) -> bool {
        match (self, other) {
            (StageState::Wait { case: a, .. }, StageState::Wait { case: b, .. }) => a == b,
            _ => self == other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_lines_round_trip() {
        let stages = [
            StageState::Identify,
            StageState::Baseline { case: 0 },
            StageState::Submit { case: 3 },
            StageState::Wait {
                case: 2,
                deadline_secs: 3_456_000,
            },
            StageState::Retest { case: 9 },
            StageState::Characterize,
            StageState::Done,
        ];
        for stage in &stages {
            assert_eq!(StageState::parse_line(&stage.to_line()), Ok(stage.clone()));
        }
        assert!(StageState::parse_line("").is_err());
        assert!(StageState::parse_line("baseline").is_err());
        assert!(StageState::parse_line("wait:1").is_err());
        assert!(StageState::parse_line("identify:0").is_err());
        assert!(StageState::parse_line("quarantine:1").is_err());
    }

    #[test]
    fn descriptor_lines_round_trip() {
        let descriptors = [
            CampaignDescriptor::new(CampaignKind::Standard, 5),
            CampaignDescriptor::new(CampaignKind::Demo, 19).with_trace(),
            CampaignDescriptor::new(CampaignKind::Generated, 7).with_chaos(),
            CampaignDescriptor::new(CampaignKind::Demo, u64::MAX)
                .with_chaos()
                .with_trace(),
        ];
        for d in &descriptors {
            assert_eq!(CampaignDescriptor::parse_line(&d.to_line()), Ok(d.clone()));
        }
        assert!(CampaignDescriptor::parse_line("demo").is_err());
        assert!(CampaignDescriptor::parse_line("demo:x").is_err());
        assert!(CampaignDescriptor::parse_line("demo:5:loud").is_err());
        assert!(CampaignDescriptor::parse_line("paper:5").is_err());
    }

    #[test]
    fn same_boundary_ignores_wait_deadline() {
        let a = StageState::Wait {
            case: 1,
            deadline_secs: 100,
        };
        let b = StageState::Wait {
            case: 1,
            deadline_secs: 999,
        };
        assert!(a.same_boundary(&b));
        assert!(!a.same_boundary(&StageState::Wait {
            case: 2,
            deadline_secs: 100
        }));
        assert!(!a.same_boundary(&StageState::Retest { case: 1 }));
    }
}
