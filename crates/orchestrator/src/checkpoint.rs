//! Checkpoint wire format.
//!
//! Every stage transition writes one tab-separated line: a version
//! token, the campaign descriptor, the stage cursor to resume at, the
//! virtual clock, one field per completed case study, and a trailing
//! FNV-1a digest so a truncated or hand-edited line is rejected at
//! parse time. Restores are replay-based — the world is a pure
//! function of the descriptor, so re-executing the stages before the
//! cursor reproduces the exact world state — which makes the completed
//! case fields *cross-checks*: if a replayed case disagrees with what
//! the checkpoint recorded, the code (or the checkpoint) drifted, and
//! resume fails loudly instead of silently producing different tables.

use filterwatch_core::confirm::CaseStudyResult;
use filterwatch_measure::MeasurementQuality;

use crate::stage::{CampaignDescriptor, StageState};

/// Version token leading every checkpoint line.
const VERSION: &str = "ckpt:v1";

/// FNV-1a 64-bit, the workspace's standard small digest.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The durable summary of one completed case study: every counter the
/// confirm table renders from, plus the measurement-quality line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseCkpt {
    /// Case-study index (spec order).
    pub index: usize,
    /// Sites accessible before submission (`None` when pre-verification
    /// was skipped).
    pub accessible_before: Option<usize>,
    /// Submissions the vendor channel accepted.
    pub submissions_accepted: usize,
    /// Submitted sites found blocked at retest.
    pub submitted_blocked: usize,
    /// Held-out sites found blocked at retest.
    pub holdout_blocked: usize,
    /// Retest verdicts the machinery declined to render.
    pub retest_inconclusive: usize,
    /// The §4.2 confirmation verdict.
    pub confirmed: bool,
    /// Block-page product attributions (deduplicated, in first-seen
    /// order).
    pub attributed: Vec<String>,
    /// The case client's measurement-quality counters.
    pub quality: MeasurementQuality,
}

impl CaseCkpt {
    /// Capture a completed [`CaseStudyResult`].
    pub fn from_result(index: usize, result: &CaseStudyResult) -> CaseCkpt {
        CaseCkpt {
            index,
            accessible_before: result.accessible_before,
            submissions_accepted: result.submissions_accepted,
            submitted_blocked: result.submitted_blocked,
            holdout_blocked: result.holdout_blocked,
            retest_inconclusive: result.retest_inconclusive,
            confirmed: result.confirmed,
            attributed: result.attributed_products.clone(),
            quality: result.quality,
        }
    }

    /// Render as one checkpoint field (no tabs; sub-fields are
    /// space-separated, with the quality line trailing after `q:`).
    pub fn to_field(&self) -> String {
        format!(
            "case:{} acc:{} ok:{} blk:{} hold:{} inc:{} conf:{} attr:{} q:{}",
            self.index,
            self.accessible_before
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".to_string()),
            self.submissions_accepted,
            self.submitted_blocked,
            self.holdout_blocked,
            self.retest_inconclusive,
            if self.confirmed { "yes" } else { "no" },
            if self.attributed.is_empty() {
                "-".to_string()
            } else {
                self.attributed.join(",")
            },
            self.quality.to_line(),
        )
    }

    /// Invert [`CaseCkpt::to_field`].
    pub fn parse_field(field: &str) -> Result<CaseCkpt, String> {
        let (head, quality_line) = field
            .split_once(" q:")
            .ok_or_else(|| format!("missing quality in case field {field:?}"))?;
        let quality = MeasurementQuality::parse_line(quality_line)?;
        let mut index = None;
        let mut accessible_before = None;
        let mut submissions_accepted = None;
        let mut submitted_blocked = None;
        let mut holdout_blocked = None;
        let mut retest_inconclusive = None;
        let mut confirmed = None;
        let mut attributed = None;
        for part in head.split_ascii_whitespace() {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("bad sub-field {part:?} in case field"))?;
            let parse_n = |v: &str| -> Result<usize, String> {
                v.parse()
                    .map_err(|e| format!("bad {key} in {field:?}: {e}"))
            };
            match key {
                "case" => index = Some(parse_n(value)?),
                "acc" => {
                    accessible_before = Some(if value == "-" {
                        None
                    } else {
                        Some(parse_n(value)?)
                    })
                }
                "ok" => submissions_accepted = Some(parse_n(value)?),
                "blk" => submitted_blocked = Some(parse_n(value)?),
                "hold" => holdout_blocked = Some(parse_n(value)?),
                "inc" => retest_inconclusive = Some(parse_n(value)?),
                "conf" => {
                    confirmed = Some(match value {
                        "yes" => true,
                        "no" => false,
                        other => return Err(format!("bad conf value {other:?}")),
                    })
                }
                "attr" => {
                    attributed = Some(if value == "-" {
                        Vec::new()
                    } else {
                        value.split(',').map(str::to_string).collect()
                    })
                }
                other => return Err(format!("unknown case sub-field {other:?}")),
            }
        }
        let missing = |what: &str| format!("missing {what} in case field {field:?}");
        Ok(CaseCkpt {
            index: index.ok_or_else(|| missing("case"))?,
            accessible_before: accessible_before.ok_or_else(|| missing("acc"))?,
            submissions_accepted: submissions_accepted.ok_or_else(|| missing("ok"))?,
            submitted_blocked: submitted_blocked.ok_or_else(|| missing("blk"))?,
            holdout_blocked: holdout_blocked.ok_or_else(|| missing("hold"))?,
            retest_inconclusive: retest_inconclusive.ok_or_else(|| missing("inc"))?,
            confirmed: confirmed.ok_or_else(|| missing("conf"))?,
            attributed: attributed.ok_or_else(|| missing("attr"))?,
            quality,
        })
    }
}

/// One campaign checkpoint: everything needed to resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignCheckpoint {
    /// Which campaign to rebuild (the world is a pure function of it).
    pub descriptor: CampaignDescriptor,
    /// The stage to resume at (everything before it is replayed).
    pub stage: StageState,
    /// The campaign's virtual clock at this boundary, in seconds —
    /// cross-checked against the replayed clock on resume.
    pub clock_secs: u64,
    /// Completed case studies, in spec order — cross-checked against
    /// the replayed results on resume.
    pub cases: Vec<CaseCkpt>,
}

impl CampaignCheckpoint {
    /// Render as one tab-separated line ending in a self-integrity
    /// digest.
    pub fn to_line(&self) -> String {
        let mut line = String::from(VERSION);
        line.push('\t');
        line.push_str(&format!("campaign:{}", self.descriptor.to_line()));
        line.push('\t');
        line.push_str(&format!("stage:{}", self.stage.to_line()));
        line.push('\t');
        line.push_str(&format!("clock:{}", self.clock_secs));
        for case in &self.cases {
            line.push('\t');
            line.push_str(&case.to_field());
        }
        let digest = fnv1a64(line.as_bytes());
        line.push('\t');
        line.push_str(&format!("digest:{digest:016x}"));
        line
    }

    /// Invert [`CampaignCheckpoint::to_line`], validating the digest.
    pub fn parse_line(line: &str) -> Result<CampaignCheckpoint, String> {
        let (body, digest_field) = line
            .rsplit_once('\t')
            .ok_or_else(|| format!("checkpoint line has no fields: {line:?}"))?;
        let hex = digest_field
            .strip_prefix("digest:")
            .ok_or_else(|| format!("checkpoint line missing digest: {line:?}"))?;
        let want = u64::from_str_radix(hex, 16).map_err(|e| format!("bad digest: {e}"))?;
        let got = fnv1a64(body.as_bytes());
        if got != want {
            return Err(format!(
                "checkpoint digest mismatch: line says {want:016x}, content hashes to {got:016x}"
            ));
        }
        let mut fields = body.split('\t');
        match fields.next() {
            Some(v) if v == VERSION => {}
            other => return Err(format!("unsupported checkpoint version {other:?}")),
        }
        let descriptor = fields
            .next()
            .and_then(|f| f.strip_prefix("campaign:"))
            .ok_or_else(|| "missing campaign field".to_string())
            .and_then(CampaignDescriptor::parse_line)?;
        let stage = fields
            .next()
            .and_then(|f| f.strip_prefix("stage:"))
            .ok_or_else(|| "missing stage field".to_string())
            .and_then(StageState::parse_line)?;
        let clock_secs = fields
            .next()
            .and_then(|f| f.strip_prefix("clock:"))
            .ok_or_else(|| "missing clock field".to_string())?
            .parse()
            .map_err(|e| format!("bad clock: {e}"))?;
        let mut cases = Vec::new();
        for field in fields {
            cases.push(CaseCkpt::parse_field(field)?);
        }
        for (i, case) in cases.iter().enumerate() {
            if case.index != i {
                return Err(format!(
                    "case fields out of order: position {i} holds case {}",
                    case.index
                ));
            }
        }
        Ok(CampaignCheckpoint {
            descriptor,
            stage,
            clock_secs,
            cases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::CampaignKind;

    fn sample_case(index: usize) -> CaseCkpt {
        CaseCkpt {
            index,
            accessible_before: if index % 2 == 0 { Some(10) } else { None },
            submissions_accepted: 5,
            submitted_blocked: 5,
            holdout_blocked: 0,
            retest_inconclusive: 1,
            confirmed: true,
            attributed: vec!["smartfilter".to_string(), "netsweeper".to_string()],
            quality: MeasurementQuality {
                fetch_attempts: 40,
                retries: 3,
                breaker_trips: 1,
                breaker_skips: 2,
                quorum_trials: 30,
                inconclusive: 1,
                verdicts: 20,
            },
        }
    }

    #[test]
    fn case_fields_round_trip() {
        for index in 0..4 {
            let case = sample_case(index);
            assert_eq!(CaseCkpt::parse_field(&case.to_field()), Ok(case));
        }
        let empty_attr = CaseCkpt {
            attributed: Vec::new(),
            ..sample_case(0)
        };
        assert_eq!(
            CaseCkpt::parse_field(&empty_attr.to_field()),
            Ok(empty_attr)
        );
        assert!(CaseCkpt::parse_field("").is_err());
        assert!(CaseCkpt::parse_field("case:0 acc:-").is_err());
    }

    #[test]
    fn checkpoint_lines_round_trip() {
        let ckpt = CampaignCheckpoint {
            descriptor: CampaignDescriptor::new(CampaignKind::Demo, 5).with_trace(),
            stage: StageState::Wait {
                case: 2,
                deadline_secs: 4_060_800,
            },
            clock_secs: 3_715_200,
            cases: vec![sample_case(0), sample_case(1)],
        };
        let line = ckpt.to_line();
        assert_eq!(CampaignCheckpoint::parse_line(&line), Ok(ckpt));
    }

    #[test]
    fn tampered_lines_are_rejected() {
        let ckpt = CampaignCheckpoint {
            descriptor: CampaignDescriptor::new(CampaignKind::Standard, 5),
            stage: StageState::Identify,
            clock_secs: 0,
            cases: Vec::new(),
        };
        let line = ckpt.to_line();
        let tampered = line.replace("clock:0", "clock:1");
        assert!(CampaignCheckpoint::parse_line(&tampered)
            .unwrap_err()
            .contains("digest mismatch"));
        assert!(CampaignCheckpoint::parse_line("").is_err());
        assert!(CampaignCheckpoint::parse_line("ckpt:v1").is_err());
        // Truncation drops the digest field.
        let (body, _) = line.rsplit_once('\t').expect("has digest");
        assert!(CampaignCheckpoint::parse_line(body).is_err());
    }

    #[test]
    fn out_of_order_cases_are_rejected() {
        let good = CampaignCheckpoint {
            descriptor: CampaignDescriptor::new(CampaignKind::Demo, 1),
            stage: StageState::Characterize,
            clock_secs: 100,
            cases: vec![sample_case(1)],
        };
        assert!(CampaignCheckpoint::parse_line(&good.to_line())
            .unwrap_err()
            .contains("out of order"));
    }
}
