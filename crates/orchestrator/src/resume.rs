//! Replay-based checkpoint restore.
//!
//! The worlds these campaigns run in are pure functions of their seed,
//! and every stage draws all state from the world — so a checkpoint
//! does not need to serialize RNG cursors, site registries or vendor
//! queues. Restoring is: rebuild the campaign from its descriptor,
//! re-execute every stage before the checkpoint's cursor (which lands
//! the world, clock and RNG in exactly the state the original run had
//! at that boundary), then continue live. The checkpoint's recorded
//! case results and clock become *cross-checks*: any disagreement
//! between replay and record means the code or the checkpoint drifted,
//! and the resume fails with [`ResumeError::Drift`] instead of quietly
//! producing different tables. Byte-identical identify/confirm tables
//! versus the uninterrupted run follow by construction — the
//! crash-recovery battery enforces exactly that, at every boundary.

use crate::checkpoint::CampaignCheckpoint;
use crate::driver::{StageDriver, StepOutcome};
use crate::stage::StageState;

/// Why a resume failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The checkpoint line did not parse (bad digest, unknown stage…).
    Parse(String),
    /// Replay disagreed with the checkpoint's recorded state: the code
    /// changed since the checkpoint was written, or the checkpoint was
    /// corrupted in a way the digest cannot see (it protects the line,
    /// not the world).
    Drift(String),
    /// A stage stalled during replay (replay runs without the
    /// scheduler, so a stall cannot be serviced).
    Stalled(String),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            ResumeError::Drift(e) => write!(f, "replay drift: {e}"),
            ResumeError::Stalled(e) => write!(f, "stage stalled during replay: {e}"),
        }
    }
}

/// Re-execute every stage before `ckpt.stage` on a freshly built
/// driver, cross-check the replayed state against the checkpoint, and
/// return the stage to continue from (hand it to
/// [`Orchestrator::with_stages`](crate::Orchestrator::with_stages)).
///
/// The driver must be freshly built from `ckpt.descriptor` — replaying
/// on a driver that has already executed stages would double-run them.
pub fn replay<D: StageDriver>(
    driver: &mut D,
    ckpt: &CampaignCheckpoint,
) -> Result<StageState, ResumeError> {
    let target = &ckpt.stage;
    let cases = driver.case_count();
    if let Some(case) = target.case() {
        if case >= cases {
            return Err(ResumeError::Drift(format!(
                "checkpoint cursor {} is out of range: campaign has {cases} cases",
                target.to_line()
            )));
        }
    }
    let mut resume_at = target.clone();
    'replay: {
        for stage in boundary_sequence(cases) {
            if stage.same_boundary(target) {
                // Stopping at a Wait boundary: the deadline was
                // announced before the checkpoint was written, so
                // announce it here too, and cross-check it.
                if let StageState::Wait {
                    case,
                    deadline_secs: recorded,
                } = *target
                {
                    let deadline = driver.wait_deadline_secs(case);
                    if deadline != recorded {
                        return Err(ResumeError::Drift(format!(
                            "replayed wait deadline {deadline} != checkpointed {recorded}"
                        )));
                    }
                    resume_at = StageState::Wait {
                        case,
                        deadline_secs: deadline,
                    };
                }
                break 'replay;
            }
            match stage {
                StageState::Wait { case, .. } => {
                    // Mid-replay wait: announce, then advance inline —
                    // the same arithmetic the timer wheel performs.
                    let deadline = driver.wait_deadline_secs(case);
                    driver.advance_to_secs(deadline);
                    driver.on_timer_fire(case, deadline);
                }
                StageState::Done => {
                    // `Done` is the last boundary; the loop always
                    // breaks at or before it.
                }
                ref executable => {
                    if driver.execute(executable) == StepOutcome::Stalled {
                        return Err(ResumeError::Stalled(executable.to_line()));
                    }
                }
            }
        }
    }
    // Cross-check every recorded case result against the replay.
    for recorded in &ckpt.cases {
        if recorded.index >= driver.completed_cases() {
            return Err(ResumeError::Drift(format!(
                "checkpoint records case {} but replay completed only {}",
                recorded.index,
                driver.completed_cases()
            )));
        }
        let replayed = driver.case_checkpoint(recorded.index);
        if replayed != *recorded {
            return Err(ResumeError::Drift(format!(
                "case {} replayed as {:?} but checkpoint recorded {:?}",
                recorded.index,
                replayed.to_field(),
                recorded.to_field()
            )));
        }
    }
    if driver.completed_cases() != ckpt.cases.len() {
        return Err(ResumeError::Drift(format!(
            "replay completed {} cases but checkpoint recorded {}",
            driver.completed_cases(),
            ckpt.cases.len()
        )));
    }
    // Cross-check the clock.
    let now = driver.now_secs();
    if now != ckpt.clock_secs {
        return Err(ResumeError::Drift(format!(
            "replayed clock {now} != checkpointed clock {}",
            ckpt.clock_secs
        )));
    }
    driver.on_resume(&resume_at);
    Ok(resume_at)
}

/// The canonical boundary sequence for a campaign with `cases` case
/// studies: the order every uninterrupted run visits stages in.
fn boundary_sequence(cases: usize) -> Vec<StageState> {
    let mut seq = vec![StageState::Identify];
    for case in 0..cases {
        seq.push(StageState::Baseline { case });
        seq.push(StageState::Submit { case });
        seq.push(StageState::Wait {
            case,
            deadline_secs: 0,
        });
        seq.push(StageState::Retest { case });
    }
    seq.push(StageState::Characterize);
    seq.push(StageState::Done);
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_sequence_is_canonical() {
        let seq = boundary_sequence(2);
        assert_eq!(seq.first(), Some(&StageState::Identify));
        assert_eq!(seq.last(), Some(&StageState::Done));
        assert_eq!(seq.len(), 1 + 2 * 4 + 2);
        assert!(seq.contains(&StageState::Retest { case: 1 }));
    }
}
