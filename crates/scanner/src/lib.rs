//! Internet-wide scanning and the keyword-searchable scan index.
//!
//! §3.1: "The Shodan search engine indexes the IP addresses of externally
//! visible devices on the Internet. Entries in Shodan consist of an IP
//! address, along with meta-data and HTTP headers observed when the IP
//! address was accessed by the search engine. ... We search for these
//! keywords, in combination with each of the two letter country-code
//! top-level domains, to maximize the set of results we obtain."
//!
//! This crate is the Shodan analog for the simulated Internet:
//!
//! * [`ScanEngine`] — a parallel banner-grab crawler that walks every
//!   allocated prefix, probing the HTTP ports (and the `/webadmin/` path
//!   on 8080, as crawlers that follow links would record) and capturing
//!   status line + headers + a body snippet per responsive endpoint;
//! * [`ScanIndex`] — the resulting keyword-searchable index, with
//!   country/ccTLD-scoped queries;
//! * [`keywords`] — the Table 2 keyword table per product.
//!
//! Snapshots serialize via [`dump`] for longitudinal comparison (what
//! appeared/disappeared between campaigns — the §2.2 vendor-withdrawal
//! stories are diffs of exactly this kind).
//!
//! Like the real thing, the index only ever sees **externally visible**
//! services — a filter whose console binds to internal address space
//! never appears, which is exactly the §6.1 limitation.

pub mod census;
pub mod dump;
pub mod engine;
pub mod index;
pub mod keywords;
mod record;

pub use census::{enrich, CensusRecord, CensusSweep};
pub use dump::{diff, IndexDiff};
pub use engine::ScanEngine;
pub use index::{IndexStats, ProductHits, ScanIndex};
pub use record::ScanRecord;
