//! Internet-wide scanning and the keyword-searchable scan index.
//!
//! §3.1: "The Shodan search engine indexes the IP addresses of externally
//! visible devices on the Internet. Entries in Shodan consist of an IP
//! address, along with meta-data and HTTP headers observed when the IP
//! address was accessed by the search engine. ... We search for these
//! keywords, in combination with each of the two letter country-code
//! top-level domains, to maximize the set of results we obtain."
//!
//! This crate is the Shodan analog for the simulated Internet:
//!
//! * [`ScanEngine`] — a parallel banner-grab crawler that walks every
//!   allocated prefix, probing the HTTP ports (and the `/webadmin/` path
//!   on 8080, as crawlers that follow links would record) and capturing
//!   status line + headers + a body snippet per responsive endpoint;
//! * [`ScanIndex`] — the resulting keyword-searchable index: sharded
//!   ([`shard`]), interned ([`intern`]), bitset-posted ([`bitset`]),
//!   incrementally ingestable via [`ScanIndex::apply_delta`], with
//!   country/ccTLD-scoped queries and a cached per-epoch sweep plan;
//! * [`keywords`] — the Table 2 keyword table per product;
//! * [`synth`] — a deterministic synthetic banner generator for
//!   exercising shard boundaries at 10⁴–10⁶ records.
//!
//! Snapshots serialize via [`dump`] for longitudinal comparison (what
//! appeared/disappeared between campaigns — the §2.2 vendor-withdrawal
//! stories are diffs of exactly this kind).
//!
//! Like the real thing, the index only ever sees **externally visible**
//! services — a filter whose console binds to internal address space
//! never appears, which is exactly the §6.1 limitation.

pub mod bitset;
pub mod census;
pub mod dump;
pub mod engine;
pub mod index;
pub mod intern;
pub mod keywords;
pub mod merge;
mod record;
pub mod shard;
pub mod synth;

pub use bitset::DenseBitSet;
pub use census::{enrich, CensusRecord, CensusSweep};
pub use dump::{diff, IndexDiff};
pub use engine::ScanEngine;
pub use index::{DeltaStats, IndexStats, ProductHits, ScanIndex};
pub use intern::{Interner, Sym};
pub use merge::{ordered_flatten, ordered_merge_by_key};
pub use record::ScanRecord;
pub use shard::{IndexShard, ShardConfig, ShardEpoch};
pub use synth::{synth_churn, synth_records, synth_records_with, SYNTH_COUNTRIES};
