//! Index shards: the unit of locality for incremental ingest.
//!
//! The sharded index partitions records by a stable hash of their
//! country (falling back to the first hostname) so a re-crawl delta for
//! one country touches one shard's postings and bumps one shard epoch,
//! leaving every other shard — and any cached per-epoch query plan that
//! only depends on untouched shards — bitwise identical. Shards do not
//! own record storage; the record arena and lowercased corpus stay
//! global (arena ids are global, so cross-shard merges are just bitset
//! iteration in ascending id order). What a shard owns is its *slice of
//! the posting space*: membership, per-country and per-suffix posting
//! bitsets, a tombstone count, and the epoch of the last delta that
//! touched it.

use crate::bitset::DenseBitSet;
use crate::intern::Sym;
use std::collections::BTreeMap;

/// How to shard a [`crate::ScanIndex`](crate::ScanIndex).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards (clamped to at least 1).
    pub shards: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 8 }
    }
}

/// One shard's epoch/occupancy summary, with a one-line wire form used
/// by dumps and the `index` CLI artifact:
/// `shard-epoch: <shard> <epoch> <live> <tombstones>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEpoch {
    /// Shard id (position in the index's shard table).
    pub shard: u16,
    /// Epoch of the last delta that touched this shard (0 = untouched
    /// since the initial build).
    pub epoch: u64,
    /// Live records currently in the shard.
    pub live: usize,
    /// Arena slots retired from this shard and not yet compacted.
    pub tombstones: usize,
}

impl ShardEpoch {
    /// Render the one-line wire form.
    pub fn to_line(&self) -> String {
        format!(
            "shard-epoch: {} {} {} {}",
            self.shard, self.epoch, self.live, self.tombstones
        )
    }

    /// Parse a line produced by [`ShardEpoch::to_line`].
    pub fn parse_line(line: &str) -> Option<ShardEpoch> {
        let rest = line.strip_prefix("shard-epoch: ")?;
        let mut fields = rest.split_whitespace();
        let shard = fields.next()?.parse().ok()?;
        let epoch = fields.next()?.parse().ok()?;
        let live = fields.next()?.parse().ok()?;
        let tombstones = fields.next()?.parse().ok()?;
        fields.next().is_none().then_some(ShardEpoch {
            shard,
            epoch,
            live,
            tombstones,
        })
    }
}

/// One shard: membership plus country/suffix posting bitsets over
/// global arena ids.
#[derive(Debug, Clone, Default)]
pub struct IndexShard {
    /// Live arena ids assigned to this shard.
    members: DenseBitSet,
    /// Country label (interned, verbatim record value) → posting.
    by_country: BTreeMap<Sym, DenseBitSet>,
    /// Lowercased hostname dot-suffix (interned) → posting. Every
    /// suffix level is posted, so `gw.isp.example.com.tr` appears under
    /// `isp.example.com.tr`, `example.com.tr`, `com.tr` and `tr` —
    /// multi-label ccTLDs need no special casing at query time.
    by_suffix: BTreeMap<Sym, DenseBitSet>,
    /// Epoch of the last delta that touched this shard.
    epoch: u64,
    /// Retired-but-uncompacted arena slots attributed to this shard.
    tombstones: usize,
}

impl IndexShard {
    /// Post a live record into the shard.
    pub(crate) fn insert(&mut self, id: usize, country: Option<Sym>, suffixes: &[Sym]) {
        self.members.insert(id);
        if let Some(c) = country {
            self.by_country.entry(c).or_default().insert(id);
        }
        for &s in suffixes {
            self.by_suffix.entry(s).or_default().insert(id);
        }
    }

    /// Retire a record: clear its postings and count a tombstone. The
    /// arena slot itself is only reclaimed by compaction.
    pub(crate) fn retire(&mut self, id: usize, country: Option<Sym>, suffixes: &[Sym]) {
        if !self.members.remove(id) {
            return;
        }
        if let Some(c) = country {
            if let Some(p) = self.by_country.get_mut(&c) {
                p.remove(id);
            }
        }
        for &s in suffixes {
            if let Some(p) = self.by_suffix.get_mut(&s) {
                p.remove(id);
            }
        }
        self.tombstones += 1;
    }

    /// Record that `epoch` touched this shard.
    pub(crate) fn touch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Live membership bitset (ascending arena-id iteration).
    pub fn members(&self) -> &DenseBitSet {
        &self.members
    }

    /// Posting for a country label, if any record in this shard has it.
    pub fn country_posting(&self, country: Sym) -> Option<&DenseBitSet> {
        self.by_country.get(&country)
    }

    /// Posting for a hostname suffix, if present in this shard.
    pub fn suffix_posting(&self, suffix: Sym) -> Option<&DenseBitSet> {
        self.by_suffix.get(&suffix)
    }

    /// Live record count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the shard holds no live records.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Epoch/occupancy summary for shard id `shard`.
    pub fn epoch_of(&self, shard: u16) -> ShardEpoch {
        ShardEpoch {
            shard,
            epoch: self.epoch,
            live: self.members.len(),
            tombstones: self.tombstones,
        }
    }

    /// Approximate heap bytes held by this shard's postings.
    pub fn posting_bytes(&self) -> usize {
        self.members.heap_bytes()
            + self
                .by_country
                .values()
                .chain(self.by_suffix.values())
                .map(DenseBitSet::heap_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_retire_round_trip() {
        let mut shard = IndexShard::default();
        let qa = Sym(0);
        let isp_qa = Sym(1);
        shard.insert(5, Some(qa), &[isp_qa]);
        shard.insert(9, Some(qa), &[]);
        assert_eq!(shard.len(), 2);
        assert_eq!(
            shard.country_posting(qa).map(|p| p.to_vec()),
            Some(vec![5, 9])
        );
        assert_eq!(
            shard.suffix_posting(isp_qa).map(|p| p.to_vec()),
            Some(vec![5])
        );

        shard.retire(5, Some(qa), &[isp_qa]);
        assert_eq!(shard.len(), 1);
        assert_eq!(shard.epoch_of(3).tombstones, 1);
        assert_eq!(shard.country_posting(qa).map(|p| p.to_vec()), Some(vec![9]));
        // Retiring an id that is not a member is a no-op.
        shard.retire(5, Some(qa), &[isp_qa]);
        assert_eq!(shard.epoch_of(3).tombstones, 1);
    }

    #[test]
    fn shard_epoch_wire_round_trip() {
        let e = ShardEpoch {
            shard: 7,
            epoch: 42,
            live: 1003,
            tombstones: 12,
        };
        let line = e.to_line();
        assert_eq!(line, "shard-epoch: 7 42 1003 12");
        assert_eq!(ShardEpoch::parse_line(&line), Some(e));
    }

    #[test]
    fn shard_epoch_parse_rejects_malformed() {
        assert!(ShardEpoch::parse_line("shard: 1 2 3 4").is_none());
        assert!(ShardEpoch::parse_line("shard-epoch: 1 2 3").is_none());
        assert!(ShardEpoch::parse_line("shard-epoch: 1 2 3 4 5").is_none());
        assert!(ShardEpoch::parse_line("shard-epoch: a 2 3 4").is_none());
    }

    #[test]
    fn default_config_is_nonzero() {
        assert!(ShardConfig::default().shards >= 1);
    }
}
