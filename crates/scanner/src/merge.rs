//! Sanctioned deterministic merge helpers for threaded scans.
//!
//! Every parallel stage in the scanner fans work out over shard groups
//! and must put the pieces back together in an order that is a pure
//! function of the input — never of thread completion. These helpers
//! are the registered merge points the `c1-spawn-merge` lint requires
//! spawning functions to reach: routing a join through one of them is
//! machine-checkable proof the merge is ordered, where a comment is
//! only a claim.

/// Concatenate per-worker result groups in group order. Workers are
/// handed contiguous chunks of an ordered work list, so group-order
/// concatenation reproduces the serial scan exactly.
pub fn ordered_flatten<T>(groups: Vec<Vec<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(groups.iter().map(Vec::len).sum());
    for group in groups {
        out.extend(group);
    }
    out
}

/// Concatenate per-worker result groups, then impose a total order by
/// `key`. For stages whose workers do not partition an ordered list
/// (e.g. striped work-stealing), group order is meaningless and the
/// sort supplies determinism instead. The sort is stable, so items
/// with equal keys keep group order as a tiebreak.
pub fn ordered_merge_by_key<T, K: Ord, F: FnMut(&T) -> K>(groups: Vec<Vec<T>>, key: F) -> Vec<T> {
    let mut out = ordered_flatten(groups);
    out.sort_by_key(key);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_preserves_group_then_item_order() {
        let groups = vec![vec![3, 1], vec![], vec![2]];
        assert_eq!(ordered_flatten(groups), vec![3, 1, 2]);
    }

    #[test]
    fn merge_by_key_totally_orders_across_groups() {
        let groups = vec![vec![(2, 'a')], vec![(1, 'b'), (2, 'c')]];
        let merged = ordered_merge_by_key(groups, |&(k, _)| k);
        assert_eq!(merged, vec![(1, 'b'), (2, 'a'), (2, 'c')]);
    }
}
