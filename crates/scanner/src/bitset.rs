//! Compact posting lists: a dense bitset over record indexes.
//!
//! The index's posting lists used to be `Vec<u32>` of record indexes —
//! fine at paper scale, wasteful at Shodan scale where a country's
//! posting holds a large fraction of the corpus. [`DenseBitSet`] stores
//! one bit per record index (64 per word), supports the sorted-merge
//! iteration the scoped queries rely on ([`DenseBitSet::iter`] yields
//! ascending indexes), and makes scope unions word-wise OR instead of
//! list merges.

/// A growable bitset over `usize` indexes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
    /// Number of set bits (maintained by `insert`/`remove`/`clear`).
    len: usize,
}

impl DenseBitSet {
    /// An empty set.
    pub fn new() -> Self {
        DenseBitSet::default()
    }

    /// An empty set with room for indexes `0..bits` pre-allocated.
    pub fn with_bits(bits: usize) -> Self {
        DenseBitSet {
            words: vec![0; bits.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set `bit`; returns whether it was newly set.
    pub fn insert(&mut self, bit: usize) -> bool {
        let word = bit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (bit % 64);
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += usize::from(newly);
        newly
    }

    /// Clear `bit`; returns whether it was set.
    pub fn remove(&mut self, bit: usize) -> bool {
        let word = bit / 64;
        let Some(w) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << (bit % 64);
        let was = *w & mask != 0;
        *w &= !mask;
        self.len -= usize::from(was);
        was
    }

    /// Whether `bit` is set.
    pub fn contains(&self, bit: usize) -> bool {
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Clear every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Word-wise OR of `other` into `self`.
    pub fn union_with(&mut self, other: &DenseBitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut len = 0usize;
        for (w, o) in self
            .words
            .iter_mut()
            .zip(other.words.iter().copied().chain(std::iter::repeat(0)))
        {
            *w |= o;
            len += w.count_ones() as usize;
        }
        // Words beyond other's length were untouched but still counted
        // above only up to zip's end (self's length), which covers all.
        self.len = len;
    }

    /// Set bits in ascending order — the sorted-merge iteration scoped
    /// queries build on (bit order is record-index order).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * 64;
            std::iter::successors((w != 0).then_some(w), |&rest| {
                let next = rest & (rest - 1);
                (next != 0).then_some(next)
            })
            .map(move |rest| base + rest.trailing_zeros() as usize)
        })
    }

    /// The set as an ascending `Vec<u32>` (posting-list export form).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().map(|b| b as u32).collect()
    }

    /// Build from any iterator of indexes.
    pub fn from_indexes<I: IntoIterator<Item = usize>>(indexes: I) -> Self {
        let mut set = DenseBitSet::new();
        for bit in indexes {
            set.insert(bit);
        }
        set
    }

    /// Heap bytes used by the word store.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(200));
        assert!(s.contains(3));
        assert!(s.contains(200));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.remove(100_000));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_ascending() {
        let s = DenseBitSet::from_indexes([300usize, 0, 64, 63, 65, 1]);
        assert_eq!(s.to_vec(), vec![0, 1, 63, 64, 65, 300]);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn union_counts_correctly() {
        let mut a = DenseBitSet::from_indexes([1usize, 70]);
        let b = DenseBitSet::from_indexes([1usize, 2, 300]);
        a.union_with(&b);
        assert_eq!(a.to_vec(), vec![1, 2, 70, 300]);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn union_with_shorter_set_preserves_tail() {
        let mut a = DenseBitSet::from_indexes([500usize]);
        let b = DenseBitSet::from_indexes([1usize]);
        a.union_with(&b);
        assert_eq!(a.to_vec(), vec![1, 500]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = DenseBitSet::from_indexes([1000usize]);
        let bytes = s.heap_bytes();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.heap_bytes(), bytes);
        assert!(!s.contains(1000));
    }

    #[test]
    fn with_bits_preallocates() {
        let s = DenseBitSet::with_bits(129);
        assert_eq!(s.heap_bytes(), 3 * 8);
        assert!(s.is_empty());
    }
}
