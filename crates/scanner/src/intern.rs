//! Deterministic string interning for index labels.
//!
//! Hostnames, country codes and ccTLD suffixes repeat heavily across a
//! banner corpus; the sharded index stores each distinct label once and
//! refers to it by a dense [`Sym`]. Determinism contract: ids are
//! assigned in insertion order (first-seen wins), so two indexes built
//! from the same record stream intern identically, and all rendering
//! paths sort by string — never by id or map order — before emitting.
//!
//! The table is a hand-rolled FNV-1a open-addressing map (no std
//! `HashMap`, whose iteration order is seeded per-process and would
//! trip the determinism lint if it ever leaked into a render path).

/// Dense id for an interned string. Ids are assigned in insertion
/// order starting at 0 and are stable for the life of the interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The id as a usize (arena offset).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const EMPTY_SLOT: u32 = u32::MAX;

/// FNV-1a over the label bytes — stable across runs and platforms.
/// Also used for shard assignment and sweep-plan fingerprints.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Insertion-ordered string interner with open-addressing lookup.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Arena: id → string, in insertion order.
    arena: Vec<String>,
    /// Open-addressing slots holding arena ids (or `EMPTY_SLOT`).
    slots: Vec<u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            arena: Vec::new(),
            slots: vec![EMPTY_SLOT; 16],
        }
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Intern `s`, returning its dense id (existing id if seen before).
    pub fn intern(&mut self, s: &str) -> Sym {
        if self.slots.is_empty() {
            self.slots = vec![EMPTY_SLOT; 16];
        }
        if (self.arena.len() + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = fnv1a(s.as_bytes()) as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                let id = self.arena.len() as u32;
                self.arena.push(s.to_string());
                self.slots[i] = id;
                return Sym(id);
            }
            if self.arena[slot as usize] == s {
                return Sym(slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Sym> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = fnv1a(s.as_bytes()) as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                return None;
            }
            if self.arena[slot as usize] == s {
                return Some(Sym(slot));
            }
            i = (i + 1) & mask;
        }
    }

    /// The string for `sym`, if the id is in range.
    pub fn resolve(&self, sym: Sym) -> Option<&str> {
        self.arena.get(sym.index()).map(String::as_str)
    }

    /// All interned strings in insertion (id) order.
    pub fn strings(&self) -> impl Iterator<Item = &str> {
        self.arena.iter().map(String::as_str)
    }

    /// All interned strings sorted lexicographically — the only order
    /// render paths may use.
    pub fn sorted_strings(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.strings().collect();
        v.sort_unstable();
        v
    }

    /// Double the slot table and rehash every arena entry.
    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(16);
        let mut slots = vec![EMPTY_SLOT; new_len];
        let mask = new_len - 1;
        for (id, s) in self.arena.iter().enumerate() {
            let mut i = fnv1a(s.as_bytes()) as usize & mask;
            while slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = id as u32;
        }
        self.slots = slots;
    }

    /// Render the interner as one wire line:
    /// `interner: <count> <label,label,...>` with labels in id order
    /// (insertion order), tab-escaped. The id-order listing *is* the
    /// id assignment, so `parse_line` reconstructs identical symbols.
    pub fn to_line(&self) -> String {
        let labels: Vec<String> = self.arena.iter().map(|s| escape(s)).collect();
        format!("interner: {} {}", self.arena.len(), labels.join(","))
    }

    /// Parse a line produced by [`Interner::to_line`].
    pub fn parse_line(line: &str) -> Option<Interner> {
        let rest = line.strip_prefix("interner: ")?;
        let (count, labels) = match rest.split_once(' ') {
            Some((c, l)) => (c, l),
            None => (rest, ""),
        };
        let count: usize = count.parse().ok()?;
        let mut interner = Interner::new();
        if count > 0 {
            for label in labels.split(',') {
                interner.intern(&unescape(label)?);
            }
        }
        (interner.len() == count).then_some(interner)
    }
}

/// Escape `,` / `\` / control characters for the one-line wire form.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ',' => out.push_str("\\c"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a dangling or unknown escape.
fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'c' => out.push(','),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_ids() {
        let mut i = Interner::new();
        assert_eq!(i.intern("qa"), Sym(0));
        assert_eq!(i.intern("com.tr"), Sym(1));
        assert_eq!(i.intern("qa"), Sym(0));
        assert_eq!(i.resolve(Sym(1)), Some("com.tr"));
        assert_eq!(i.get("com.tr"), Some(Sym(1)));
        assert_eq!(i.get("absent"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn grows_past_slot_capacity() {
        let mut i = Interner::new();
        for n in 0..1000 {
            assert_eq!(i.intern(&format!("host-{n}.example")), Sym(n));
        }
        for n in 0..1000 {
            assert_eq!(i.get(&format!("host-{n}.example")), Some(Sym(n)));
        }
        assert_eq!(i.len(), 1000);
    }

    #[test]
    fn sorted_rendering_ignores_id_order() {
        let mut i = Interner::new();
        i.intern("zz");
        i.intern("aa");
        i.intern("mm");
        assert_eq!(i.sorted_strings(), vec!["aa", "mm", "zz"]);
        let in_order: Vec<&str> = i.strings().collect();
        assert_eq!(in_order, vec!["zz", "aa", "mm"]);
    }

    #[test]
    fn wire_round_trip_preserves_ids() {
        let mut i = Interner::new();
        i.intern("gw.isp.qa");
        i.intern("QA");
        i.intern("com,tr\\weird");
        let line = i.to_line();
        let back = Interner::parse_line(&line).expect("parse back");
        assert_eq!(back.len(), i.len());
        for (id, s) in i.strings().enumerate() {
            assert_eq!(back.resolve(Sym(id as u32)), Some(s));
        }
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn wire_round_trip_empty() {
        let i = Interner::new();
        let line = i.to_line();
        let back = Interner::parse_line(&line).expect("parse back");
        assert!(back.is_empty());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Interner::parse_line("not-a-line").is_none());
        assert!(Interner::parse_line("interner: x a,b").is_none());
        assert!(Interner::parse_line("interner: 3 a,b").is_none());
        assert!(Interner::parse_line("interner: 1 bad\\q").is_none());
    }
}
