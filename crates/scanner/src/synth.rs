//! Deterministic synthetic banner corpus for scale testing.
//!
//! The paper-world corpus tops out around 260 records — fine for the
//! pinned-seed tables, useless for exercising shard boundaries or for
//! benchmarking the sweep at Shodan-like sizes. This generator produces
//! 10⁴/10⁵/10⁶-record corpora that are:
//!
//! * **deterministic by seed** — a SplitMix64 stream keyed only by the
//!   caller's seed, no process entropy;
//! * **adversarial for substring search** — banners are dense in
//!   near-miss tokens (`proxyserver`, `netgear`, `webadmission`,
//!   `mcafee-agent`, …) that share prefixes with Table-2 keywords, so a
//!   per-keyword `contains` scan pays for restarts that the fused
//!   automaton does not;
//! * **shard-shaped** — countries cycle through a pool that includes
//!   multi-label ccTLDs (`com.tr`, `co.uk`, …) with a bounded ISP label
//!   set, so suffix postings stay compact while covering every suffix
//!   level.
//!
//! Roughly one record in 97 gets a real Table-2 keyword planted, so
//! identify-style sweeps over a synthetic corpus return non-trivial,
//! seed-stable hit sets.

use crate::record::ScanRecord;
use filterwatch_netsim::{IpAddr, SimTime};

/// Country pool used by [`synth_records`]: `(country code, ccTLD)`,
/// including multi-label suffixes.
pub const SYNTH_COUNTRIES: &[(&str, &str)] = &[
    ("QA", "qa"),
    ("YE", "ye"),
    ("SA", "sa"),
    ("AE", "ae"),
    ("BH", "bh"),
    ("KW", "kw"),
    ("TR", "com.tr"),
    ("UK", "co.uk"),
    ("LB", "com.lb"),
    ("PK", "net.pk"),
];

/// Banner vocabulary: near-misses for the Table-2 keyword set. None of
/// these contain an actual keyword, but most share a prefix or first
/// byte with one, which keeps naive per-keyword scans honest.
const WORDS: &[&str] = &[
    "internet",
    "network-appliance",
    "web-cache",
    "proxyserver",
    "proxy-arp",
    "url-rewriter",
    "urlencoded",
    "netgear",
    "netflow",
    "net-snmp",
    "websocket",
    "webmail",
    "webadmission",
    "webmaster",
    "mcafee-agent",
    "gatekeeper",
    "gateway-link",
    "blockchain",
    "blocklistd",
    "pagecache",
    "cachemgr",
    "content-meter",
    "categorizer",
    "cfparse",
    "squid-cache",
    "nginx",
    "deny-log",
    "smartcard",
];

/// Table-2 keywords planted (sparsely) so sweeps return hits. Kept in
/// sync with [`crate::keywords::KEYWORD_TABLE`] by a test below.
const PLANTS: &[&str] = &[
    "proxysg",
    "cfru=",
    "mcafee web gateway",
    "url blocked",
    "netsweeper",
    "webadmin",
    "webadmin/deny",
    "blockpage.cgi",
    "gateway websense",
];

/// One record in `PLANT_EVERY` carries a planted keyword.
const PLANT_EVERY: usize = 97;

/// SplitMix64: tiny, seedable, platform-stable. Good enough for corpus
/// shaping; never used where statistical quality matters.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn word(&mut self) -> &'static str {
        WORDS[self.below(WORDS.len())]
    }
}

/// Generate `count` deterministic synthetic records for `seed`, using
/// the default [`SYNTH_COUNTRIES`] pool. Records are emitted in
/// ascending `(ip, port, path)` order (ips are unique and increasing),
/// matching the sort contract of crawler output.
pub fn synth_records(count: usize, seed: u64) -> Vec<ScanRecord> {
    synth_records_with(count, seed, 0x0a00_0000, SYNTH_COUNTRIES)
}

/// Generate `count` records starting at ip `ip_base`, drawing countries
/// from `countries`.
pub fn synth_records_with(
    count: usize,
    seed: u64,
    ip_base: u32,
    countries: &[(&str, &str)],
) -> Vec<ScanRecord> {
    let mut rng = SplitMix64(seed ^ 0x5371_7468_2d63_6f72); // corpus stream
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(synth_record(i, ip_base, countries, &mut rng));
    }
    out
}

fn synth_record(
    i: usize,
    ip_base: u32,
    countries: &[(&str, &str)],
    rng: &mut SplitMix64,
) -> ScanRecord {
    let (cc, cctld) = countries[i % countries.len().max(1)];
    let planted = i % PLANT_EVERY == 0;
    let (port, path) = if planted && i % (2 * PLANT_EVERY) == 0 {
        // Half the plants take the port/path form `8080/webadmin/` that
        // the Netsweeper keywords key on.
        (8080, "/webadmin/".to_string())
    } else {
        ([80u16, 8080, 443, 3128][rng.below(4)], "/".to_string())
    };
    let isp = rng.below(8);
    let hostnames = vec![format!("h{i}.isp{isp}.{cctld}")];
    let server = rng.word();
    let via = rng.word();
    let mut banner = format!(
        "HTTP/1.1 {} {}\r\nServer: {}/{}.{}\r\nVia: 1.1 {}\r\nX-Cache: {} from {}\r\n",
        [200u16, 302, 401, 403][rng.below(4)],
        ["OK", "Found", "Unauthorized", "Forbidden"][rng.below(4)],
        server,
        1 + rng.below(9),
        rng.below(10),
        via,
        ["HIT", "MISS"][rng.below(2)],
        rng.word(),
    );
    if planted {
        banner.push_str("X-Notice: ");
        banner.push_str(PLANTS[(i / PLANT_EVERY) % PLANTS.len()]);
        banner.push_str("\r\n");
    }
    let words = 8 + rng.below(8);
    let mut body = String::with_capacity(words * 14);
    for w in 0..words {
        if w > 0 {
            body.push(' ');
        }
        body.push_str(rng.word());
    }
    ScanRecord {
        ip: IpAddr(ip_base.wrapping_add(i as u32)),
        port,
        path,
        banner,
        body_snippet: body,
        hostnames,
        country: Some(cc.to_string()),
        asn: Some(64_496 + (i as u32 % 32)),
        captured_at: SimTime::from_secs(i as u64 * 37),
    }
}

/// A deterministic re-crawl delta against `base`: `appear` brand-new
/// endpoints (ips disjoint from [`synth_records`]' range) plus
/// `disappear` retirements of existing endpoints, both keyed by `seed`.
/// Returns `(adds, retirements)` in `apply_delta` argument order.
pub fn synth_churn(
    base: &[ScanRecord],
    appear: usize,
    disappear: usize,
    seed: u64,
) -> (Vec<ScanRecord>, Vec<(IpAddr, u16, String)>) {
    let adds = synth_records_with(
        appear,
        seed ^ 0x0063_6875_726e,
        0x0b00_0000,
        SYNTH_COUNTRIES,
    );
    let mut rng = SplitMix64(seed ^ 0x7265_7469_7265);
    let mut retirements = Vec::with_capacity(disappear.min(base.len()));
    let mut taken = crate::bitset::DenseBitSet::with_bits(base.len());
    while retirements.len() < disappear.min(base.len()) {
        let i = rng.below(base.len());
        if taken.insert(i) {
            let r = &base[i];
            retirements.push((r.ip, r.port, r.path.clone()));
        }
    }
    (adds, retirements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::KEYWORD_TABLE;

    #[test]
    fn deterministic_by_seed() {
        let a = synth_records(500, 7);
        let b = synth_records(500, 7);
        let c = synth_records(500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn ips_unique_and_sorted() {
        let records = synth_records(1000, 3);
        for w in records.windows(2) {
            assert!(w[0].ip < w[1].ip);
        }
    }

    #[test]
    fn plants_cover_keyword_table() {
        // Every planted token must be a real Table-2 keyword, so the
        // synthetic corpus produces legitimate product hits.
        let known: Vec<&str> = KEYWORD_TABLE
            .iter()
            .flat_map(|p| p.keywords.iter().copied())
            .collect();
        for p in PLANTS {
            assert!(known.contains(p), "{p} is not a Table-2 keyword");
        }
    }

    #[test]
    fn near_misses_contain_no_keywords() {
        let known: Vec<&str> = KEYWORD_TABLE
            .iter()
            .flat_map(|p| p.keywords.iter().copied())
            .collect();
        for w in WORDS {
            for k in &known {
                assert!(!w.contains(k), "near-miss {w} contains keyword {k}");
            }
        }
    }

    #[test]
    fn unplanted_records_do_not_match() {
        let records = synth_records(2000, 11);
        let known: Vec<&str> = KEYWORD_TABLE
            .iter()
            .flat_map(|p| p.keywords.iter().copied())
            .collect();
        for (i, r) in records.iter().enumerate() {
            if i % PLANT_EVERY != 0 {
                let text = format!(
                    "{} {}{} {} {}",
                    r.ip, r.port, r.path, r.banner, r.body_snippet
                )
                .to_ascii_lowercase();
                for k in &known {
                    assert!(!text.contains(k), "record {i} accidentally matches {k}");
                }
            }
        }
    }

    #[test]
    fn churn_is_disjoint_and_deterministic() {
        let base = synth_records(1000, 5);
        let (adds, retires) = synth_churn(&base, 50, 50, 9);
        let (adds2, retires2) = synth_churn(&base, 50, 50, 9);
        assert_eq!(adds, adds2);
        assert_eq!(retires, retires2);
        assert_eq!(adds.len(), 50);
        assert_eq!(retires.len(), 50);
        // New endpoints never collide with the base ip range.
        for a in &adds {
            assert!(base.iter().all(|b| b.ip != a.ip));
        }
        // Retirements are distinct endpoints drawn from the base.
        let mut seen = retires.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), retires.len());
    }

    #[test]
    fn multi_label_cctlds_present() {
        let records = synth_records(40, 1);
        assert!(records
            .iter()
            .any(|r| r.hostnames.iter().any(|h| h.ends_with(".com.tr"))));
        assert!(records
            .iter()
            .any(|r| r.hostnames.iter().any(|h| h.ends_with(".co.uk"))));
    }
}
