//! The Table 2 Shodan keyword table.
//!
//! "By manually analyzing results from the ONI tests, we were able to
//! identify commonly appearing keywords and headers for the products we
//! consider." The table below is the left column of Table 2, verbatim.

/// Shodan keywords for one product, as in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductKeywords {
    /// Product slug (matches `ProductKind::slug` in the products crate).
    pub product: &'static str,
    /// The keywords searched, combined with every ccTLD.
    pub keywords: &'static [&'static str],
}

/// The full Table 2 keyword table.
pub const KEYWORD_TABLE: &[ProductKeywords] = &[
    ProductKeywords {
        product: "bluecoat",
        keywords: &["proxysg", "cfru="],
    },
    ProductKeywords {
        product: "smartfilter",
        keywords: &["mcafee web gateway", "url blocked"],
    },
    ProductKeywords {
        product: "netsweeper",
        keywords: &["netsweeper", "webadmin", "webadmin/deny", "8080/webadmin/"],
    },
    ProductKeywords {
        product: "websense",
        keywords: &["blockpage.cgi", "gateway websense"],
    },
];

/// Keywords for one product slug.
pub fn keywords_for(product_slug: &str) -> Option<&'static [&'static str]> {
    KEYWORD_TABLE
        .iter()
        .find(|p| p.product == product_slug)
        .map(|p| p.keywords)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_products_in_table() {
        assert_eq!(KEYWORD_TABLE.len(), 4);
    }

    #[test]
    fn table2_contents() {
        assert_eq!(keywords_for("bluecoat"), Some(&["proxysg", "cfru="][..]));
        assert!(keywords_for("netsweeper")
            .unwrap()
            .contains(&"8080/webadmin/"));
        assert!(keywords_for("websense").unwrap().contains(&"blockpage.cgi"));
        assert!(keywords_for("smartfilter")
            .unwrap()
            .contains(&"mcafee web gateway"));
        assert_eq!(keywords_for("unknown"), None);
    }

    #[test]
    fn keywords_are_lowercase() {
        for entry in KEYWORD_TABLE {
            for kw in entry.keywords {
                assert_eq!(*kw, kw.to_ascii_lowercase(), "{kw}");
            }
        }
    }
}
