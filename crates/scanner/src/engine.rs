//! The banner-grab crawler.

use filterwatch_http::{Request, Url};
use filterwatch_netsim::{Internet, IpAddr};
use parking_lot::Mutex;

use crate::index::ScanIndex;
use crate::record::ScanRecord;

/// Probe targets: `(port, path)` pairs the crawler requests on every
/// address. Port 8080's `/webadmin/` is probed because crawlers record
/// well-known management-console paths (and Table 2's `8080/webadmin/`
/// keyword needs them in the index).
pub const DEFAULT_PROBES: &[(u16, &str)] =
    &[(80, "/"), (8080, "/"), (8080, "/webadmin/"), (15871, "/")];

/// How many bytes of body the index keeps per record.
const SNIPPET_LEN: usize = 400;

/// A parallel scan engine over the simulated address space.
pub struct ScanEngine {
    probes: Vec<(u16, String)>,
    threads: usize,
}

impl Default for ScanEngine {
    fn default() -> Self {
        ScanEngine::new()
    }
}

impl ScanEngine {
    /// An engine with the default probe set and parallelism.
    pub fn new() -> Self {
        ScanEngine {
            probes: DEFAULT_PROBES
                .iter()
                .map(|&(port, path)| (port, path.to_string()))
                .collect(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        }
    }

    /// Override the probe set.
    pub fn with_probes(mut self, probes: &[(u16, &str)]) -> Self {
        self.probes = probes
            .iter()
            .map(|&(port, path)| (port, path.to_string()))
            .collect();
        self
    }

    /// Use exactly `n` scanning threads (1 = sequential).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Scan every allocated prefix of the simulated Internet and build
    /// the index. Country/ASN metadata comes from the registry ground
    /// truth (as Shodan's geolocation feed would supply).
    pub fn scan(&self, net: &Internet) -> ScanIndex {
        let telemetry = net.telemetry().clone();
        let span = telemetry.span_start(
            filterwatch_telemetry::stage::SCAN,
            "address-space sweep",
            net.now().secs(),
        );
        let ips: Vec<IpAddr> = net
            .registry()
            .prefixes()
            .iter()
            .flat_map(|(cidr, _)| cidr.iter())
            .collect();
        telemetry.event(
            net.now().secs(),
            "scan.start",
            &[("ips", &ips.len().to_string())],
        );
        let records = Mutex::new(Vec::new());

        let chunk = ips.len().div_ceil(self.threads).max(1);
        {
            let records = &records;
            let telemetry = &telemetry;
            crossbeam::thread::scope(|scope| {
                for slice in ips.chunks(chunk) {
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        for &ip in slice {
                            self.probe_ip(net, ip, &mut local);
                        }
                        telemetry.counter_add(
                            "scan.probes",
                            "",
                            (slice.len() * self.probes.len()) as u64,
                        );
                        telemetry.counter_add("scan.banners", "", local.len() as u64);
                        for r in &local {
                            telemetry.observe("scan.banner_bytes", "", r.body_snippet.len() as f64);
                        }
                        records.lock().extend(local);
                    });
                }
            })
            .expect("scan worker panicked");
        }

        let mut records = records.into_inner();
        records.sort_by(|a, b| (a.ip, a.port, &a.path).cmp(&(b.ip, b.port, &b.path)));
        telemetry.event(
            net.now().secs(),
            "scan.done",
            &[("records", &records.len().to_string())],
        );
        telemetry.span_end(span, net.now().secs());
        ScanIndex::build(records)
    }

    fn probe_ip(&self, net: &Internet, ip: IpAddr, out: &mut Vec<ScanRecord>) {
        for (port, path) in &self.probes {
            let url = Url::http_at(&ip.to_string(), *port, path);
            let req = Request::get(url);
            let Some(resp) = net.probe(ip, *port, &req).into_response() else {
                continue;
            };
            // Crawlers index live endpoints, not error paths: a 404 on a
            // probed path leaves no record (this is what keeps a
            // deny-only console invisible, §6.1).
            if resp.status.code() == 404 {
                continue;
            }
            let body = resp.body_text();
            let snippet: String = body.chars().take(SNIPPET_LEN).collect();
            out.push(ScanRecord {
                ip,
                port: *port,
                path: path.clone(),
                banner: resp.banner(),
                body_snippet: snippet,
                hostnames: net
                    .host(ip)
                    .map(|h| h.hostnames.clone())
                    .unwrap_or_default(),
                country: net.registry().country_of(ip).map(|c| c.to_string()),
                asn: net.registry().asn_of(ip).map(|a| a.0),
                captured_at: net.now(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_netsim::service::StaticSite;
    use filterwatch_netsim::NetworkSpec;

    fn world() -> Internet {
        let mut net = Internet::new(11);
        net.registry_mut().register_country("QA", "Qatar", "qa");
        let asn = net.registry_mut().register_as(42298, "OOREDOO", "QA");
        let prefix = net.registry_mut().allocate_prefix(asn, 1).unwrap();
        let isp = net.add_network(NetworkSpec::new("ooredoo", asn, "QA").with_cidr(prefix));
        let ip = net.alloc_ip(isp).unwrap();
        net.add_host(ip, isp, &["gw.ooredoo.qa"]);
        net.add_service(
            ip,
            8080,
            Box::new(
                StaticSite::new("Netsweeper WebAdmin", "<p>login</p>")
                    .with_server("netsweeper/5.1"),
            ),
        );
        let web_ip = net.alloc_ip(isp).unwrap();
        net.add_host(web_ip, isp, &["www.ooredoo.qa"]);
        net.add_service(
            web_ip,
            80,
            Box::new(StaticSite::new("Ooredoo", "<p>portal</p>")),
        );
        net
    }

    #[test]
    fn scan_finds_only_bound_endpoints() {
        let net = world();
        let index = ScanEngine::new().with_threads(2).scan(&net);
        // Console answers on 8080 for both "/" and "/webadmin/", portal on 80.
        assert_eq!(index.len(), 3);
        let texts = index.corpus();
        assert!(texts.iter().any(|t| t.contains("8080/webadmin/")));
        assert!(texts.iter().any(|t| t.contains("ooredoo")));
    }

    #[test]
    fn records_carry_geo_metadata() {
        let net = world();
        let index = ScanEngine::new().with_threads(1).scan(&net);
        for r in index.records() {
            assert_eq!(r.country.as_deref(), Some("QA"));
            assert_eq!(r.asn, Some(42298));
        }
    }

    #[test]
    fn sequential_and_parallel_scans_agree() {
        let net = world();
        let a = ScanEngine::new().with_threads(1).scan(&net);
        let b = ScanEngine::new().with_threads(4).scan(&net);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn custom_probe_set() {
        let net = world();
        let index = ScanEngine::new().with_probes(&[(80, "/")]).scan(&net);
        assert_eq!(index.len(), 1);
        assert_eq!(index.records()[0].port, 80);
    }
}
