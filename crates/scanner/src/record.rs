//! One scan-index entry.

use filterwatch_netsim::{IpAddr, SimTime};

/// What the crawler recorded for one responsive `ip:port/path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRecord {
    /// The probed address.
    pub ip: IpAddr,
    /// The probed port.
    pub port: u16,
    /// The request path the banner was captured from (`/` for plain
    /// banner grabs; crawlers also record well-known console paths).
    pub path: String,
    /// Status line + raw header block, as received.
    pub banner: String,
    /// Leading slice of the body (Shodan keeps a snippet, not the page).
    pub body_snippet: String,
    /// Hostnames known for the address (reverse-DNS analog).
    pub hostnames: Vec<String>,
    /// Country meta-data (from the crawler's geolocation feed).
    pub country: Option<String>,
    /// Origin AS meta-data.
    pub asn: Option<u32>,
    /// When the banner was captured.
    pub captured_at: SimTime,
}

impl ScanRecord {
    /// The searchable text of the record: everything a keyword query is
    /// matched against, including the `port/path` form (`8080/webadmin/`)
    /// that Table 2's Netsweeper keywords rely on.
    ///
    /// Building this string is the cost `ScanIndex` amortizes: the
    /// index caches `searchable_text().to_ascii_lowercase()` per record
    /// at construction, so queries never call this.
    pub(crate) fn searchable_text(&self) -> String {
        format!(
            "{} {}{} {} {} {}",
            self.ip,
            self.port,
            self.path,
            self.hostnames.join(" "),
            self.banner,
            self.body_snippet
        )
    }

    /// The searchable text of the record, rebuilt on every call.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a fresh String per call; use the corpus cached at \
                index build time (`ScanIndex::corpus_of` / `ScanIndex::corpus`)"
    )]
    pub fn text(&self) -> String {
        self.searchable_text()
    }
}

impl std::fmt::Display for ScanRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}{} [{}] {}",
            self.ip,
            self.port,
            self.path,
            self.country.as_deref().unwrap_or("??"),
            self.banner.lines().next().unwrap_or("")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ScanRecord {
        ScanRecord {
            ip: "5.0.0.1".parse().unwrap(),
            port: 8080,
            path: "/webadmin/".into(),
            banner: "HTTP/1.1 401 Unauthorized\r\nServer: netsweeper/5.1\r\n".into(),
            body_snippet: "<title>Netsweeper WebAdmin</title>".into(),
            hostnames: vec!["gw.isp.qa".into()],
            country: Some("QA".into()),
            asn: Some(42298),
            captured_at: SimTime::ZERO,
        }
    }

    #[test]
    fn text_includes_port_path_form() {
        let text = record().searchable_text();
        assert!(text.contains("8080/webadmin/"));
        assert!(text.contains("netsweeper/5.1"));
        assert!(text.contains("gw.isp.qa"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_text_matches_searchable_text() {
        let r = record();
        assert_eq!(r.text(), r.searchable_text());
    }

    #[test]
    fn display_is_compact() {
        let s = record().to_string();
        assert!(s.starts_with("5.0.0.1:8080/webadmin/ [QA]"));
        assert!(s.contains("401"));
    }
}
