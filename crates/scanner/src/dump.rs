//! Scan-index serialization and longitudinal diffing.
//!
//! The paper's scans are point-in-time snapshots; its §2.2 history
//! (Websense leaving Yemen, Blue Coat withdrawing Syrian updates) is a
//! *longitudinal* story. This module makes that measurable:
//!
//! * [`ScanIndex::to_dump`] / [`ScanIndex::from_dump`] — a line-based,
//!   versioned dump format (in the spirit of Shodan's data exports), so
//!   snapshots can be archived and compared across campaigns;
//! * [`diff`] — what appeared, disappeared, or changed banner between
//!   two snapshots.

use std::collections::BTreeMap;

use filterwatch_netsim::SimTime;

use crate::index::ScanIndex;
use crate::record::ScanRecord;

/// Format marker written as the first line of every dump.
const MAGIC: &str = "filterwatch-scan-dump v1";

/// Escape tabs/newlines/backslashes so any banner fits on one line.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl ScanIndex {
    /// Serialize the index to the dump format. Only live records are
    /// dumped, in arena order — tombstoned slots awaiting compaction
    /// never reach a snapshot.
    pub fn to_dump(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        for r in self.live_records() {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                r.ip,
                r.port,
                escape(&r.path),
                r.country.as_deref().unwrap_or("-"),
                r.asn.map(|a| a.to_string()).unwrap_or_else(|| "-".into()),
                escape(&r.hostnames.join(",")),
                r.captured_at.secs(),
                escape(&r.banner),
                escape(&r.body_snippet),
            ));
        }
        out
    }

    /// Parse a dump back into an index.
    pub fn from_dump(text: &str) -> Result<ScanIndex, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(line) if line == MAGIC => {}
            other => return Err(format!("bad dump header: {other:?}")),
        }
        let mut records = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 9 {
                return Err(format!(
                    "line {}: expected 9 fields, got {}",
                    lineno + 2,
                    fields.len()
                ));
            }
            records.push(ScanRecord {
                ip: fields[0]
                    .parse()
                    .map_err(|e| format!("line {}: {e}", lineno + 2))?,
                port: fields[1]
                    .parse()
                    .map_err(|_| format!("line {}: bad port", lineno + 2))?,
                path: unescape(fields[2]),
                country: (fields[3] != "-").then(|| fields[3].to_string()),
                asn: (fields[4] != "-")
                    .then(|| fields[4].parse())
                    .transpose()
                    .map_err(|_| format!("line {}: bad asn", lineno + 2))?,
                hostnames: {
                    let h = unescape(fields[5]);
                    if h.is_empty() {
                        Vec::new()
                    } else {
                        h.split(',').map(String::from).collect()
                    }
                },
                captured_at: SimTime::from_secs(
                    fields[6]
                        .parse()
                        .map_err(|_| format!("line {}: bad timestamp", lineno + 2))?,
                ),
                banner: unescape(fields[7]),
                body_snippet: unescape(fields[8]),
            });
        }
        Ok(ScanIndex::build(records))
    }
}

/// What changed between two scan snapshots.
#[derive(Debug, Clone, Default)]
pub struct IndexDiff {
    /// Endpoints present only in the newer snapshot.
    pub appeared: Vec<String>,
    /// Endpoints present only in the older snapshot.
    pub disappeared: Vec<String>,
    /// Endpoints present in both but with a different banner.
    pub changed: Vec<String>,
}

impl IndexDiff {
    /// Whether the two snapshots were identical.
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty() && self.disappeared.is_empty() && self.changed.is_empty()
    }
}

/// Compare two snapshots by `(ip, port, path)` endpoint key.
pub fn diff(older: &ScanIndex, newer: &ScanIndex) -> IndexDiff {
    let key = |r: &ScanRecord| format!("{}:{}{}", r.ip, r.port, r.path);
    let old: BTreeMap<String, &ScanRecord> = older.live_records().map(|r| (key(r), r)).collect();
    let new: BTreeMap<String, &ScanRecord> = newer.live_records().map(|r| (key(r), r)).collect();

    let mut out = IndexDiff::default();
    for (k, rec) in &new {
        match old.get(k) {
            None => out.appeared.push(k.clone()),
            Some(old_rec) if old_rec.banner != rec.banner => out.changed.push(k.clone()),
            Some(_) => {}
        }
    }
    for k in old.keys() {
        if !new.contains_key(k) {
            out.disappeared.push(k.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ip: &str, port: u16, banner: &str) -> ScanRecord {
        ScanRecord {
            ip: ip.parse().unwrap(),
            port,
            path: "/".into(),
            banner: banner.into(),
            body_snippet: "<title>x</title>\nline2\twith tab".into(),
            hostnames: vec!["a.example".into(), "b.example".into()],
            country: Some("QA".into()),
            asn: Some(42298),
            captured_at: SimTime::from_days(3),
        }
    }

    #[test]
    fn dump_round_trip() {
        let index = ScanIndex::build(vec![
            rec("5.0.0.1", 80, "HTTP/1.1 200 OK\r\nServer: x\r\n"),
            rec(
                "5.0.0.2",
                8080,
                "HTTP/1.1 401 Unauthorized\r\nServer: netsweeper\r\n",
            ),
        ]);
        let dump = index.to_dump();
        let restored = ScanIndex::from_dump(&dump).unwrap();
        assert_eq!(index.records(), restored.records());
    }

    #[test]
    fn dump_rejects_garbage() {
        assert!(ScanIndex::from_dump("").is_err());
        assert!(ScanIndex::from_dump("not a dump\n").is_err());
        let bad = format!("{MAGIC}\nonly\tthree\tfields\n");
        assert!(ScanIndex::from_dump(&bad).is_err());
    }

    #[test]
    fn diff_classifies_changes() {
        let old = ScanIndex::build(vec![
            rec("5.0.0.1", 80, "banner-a"),
            rec("5.0.0.2", 80, "banner-b"),
        ]);
        let new = ScanIndex::build(vec![
            rec("5.0.0.2", 80, "banner-b2"),
            rec("5.0.0.3", 80, "banner-c"),
        ]);
        let d = diff(&old, &new);
        assert_eq!(d.appeared, vec!["5.0.0.3:80/"]);
        assert_eq!(d.disappeared, vec!["5.0.0.1:80/"]);
        assert_eq!(d.changed, vec!["5.0.0.2:80/"]);
        assert!(!d.is_empty());
        assert!(diff(&old, &old).is_empty());
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["plain", "tab\there", "nl\nhere", "bs\\here", "\r\n\t\\"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }
}
