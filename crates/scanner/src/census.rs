//! Internet-Census-style raw sweeps.
//!
//! §3.1: "As a proof of concept, we demonstrate our techniques using the
//! Shodan search engine to locate IP addresses, but are working towards
//! applying it on a larger scale with the Internet Census data in
//! ongoing work." The Census differs from Shodan in what a record
//! carries: raw `(ip, port, response)` observations with **no metadata**
//! — no country tags, no hostnames, no ASN. Consumers must enrich the
//! raw data with their own geolocation, which is exactly the MaxMind /
//! Team Cymru step of the identification pipeline.
//!
//! [`CensusSweep`] produces such raw records; [`enrich`] turns them into
//! a [`ScanIndex`] using caller-supplied databases — including
//! deliberately wrong ones, which is how the geolocation-error ablation
//! measures the cost of bad enrichment.

use filterwatch_geodb::{AsnDb, GeoDb};
use filterwatch_http::{Request, Url};
use filterwatch_netsim::{Internet, IpAddr};

use crate::engine::DEFAULT_PROBES;
use crate::index::ScanIndex;
use crate::record::ScanRecord;

/// One raw census observation: no metadata, just bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusRecord {
    /// Probed address.
    pub ip: IpAddr,
    /// Probed port.
    pub port: u16,
    /// Probed path.
    pub path: String,
    /// Raw response head.
    pub banner: String,
    /// Leading body bytes.
    pub body_snippet: String,
}

/// A raw, metadata-free sweep of the allocated address space.
#[derive(Debug, Clone, Default)]
pub struct CensusSweep {
    probes: Vec<(u16, String)>,
}

impl CensusSweep {
    /// A sweep with the standard probe set.
    pub fn new() -> Self {
        CensusSweep {
            probes: DEFAULT_PROBES
                .iter()
                .map(|&(port, path)| (port, path.to_string()))
                .collect(),
        }
    }

    /// Run the sweep.
    pub fn run(&self, net: &Internet) -> Vec<CensusRecord> {
        let mut out = Vec::new();
        for &(cidr, _) in net.registry().prefixes() {
            for ip in cidr.iter() {
                for (port, path) in &self.probes {
                    let url = Url::http_at(&ip.to_string(), *port, path);
                    let Some(resp) = net.probe(ip, *port, &Request::get(url)).into_response()
                    else {
                        continue;
                    };
                    if resp.status.code() == 404 {
                        continue;
                    }
                    let body = resp.body_text();
                    out.push(CensusRecord {
                        ip,
                        port: *port,
                        path: path.clone(),
                        banner: resp.banner(),
                        body_snippet: body.chars().take(400).collect(),
                    });
                }
            }
        }
        out.sort_by(|a, b| (a.ip, a.port, &a.path).cmp(&(b.ip, b.port, &b.path)));
        out
    }
}

/// Enrich raw census records into a searchable index using external
/// geolocation and whois databases (the consumer-side counterpart of
/// Shodan's built-in metadata).
pub fn enrich(
    records: Vec<CensusRecord>,
    geo: &GeoDb,
    asn: &AsnDb,
    captured_at: filterwatch_netsim::SimTime,
) -> ScanIndex {
    let enriched = records
        .into_iter()
        .map(|r| ScanRecord {
            country: geo.lookup(r.ip.value()).map(str::to_string),
            asn: asn.lookup(r.ip.value()).map(|rec| rec.asn),
            // The census has no reverse DNS; hostnames stay empty.
            hostnames: Vec::new(),
            ip: r.ip,
            port: r.port,
            path: r.path,
            banner: r.banner,
            body_snippet: r.body_snippet,
            captured_at,
        })
        .collect();
    ScanIndex::build(enriched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_netsim::service::StaticSite;
    use filterwatch_netsim::{NetworkSpec, SimTime};

    fn world() -> Internet {
        let mut net = Internet::new(2);
        net.registry_mut().register_country("QA", "Qatar", "qa");
        let asn = net.registry_mut().register_as(42298, "OOREDOO", "QA");
        let prefix = net.registry_mut().allocate_prefix(asn, 1).unwrap();
        let isp = net.add_network(NetworkSpec::new("ooredoo", asn, "QA").with_cidr(prefix));
        let ip = net.alloc_ip(isp).unwrap();
        net.add_host(ip, isp, &["gw.ooredoo.qa"]);
        net.add_service(
            ip,
            8080,
            Box::new(StaticSite::new("Netsweeper WebAdmin", "").with_server("netsweeper/5.1")),
        );
        net
    }

    #[test]
    fn raw_records_have_no_metadata() {
        let net = world();
        let records = CensusSweep::new().run(&net);
        assert!(!records.is_empty());
        for r in &records {
            assert!(r.banner.starts_with("HTTP/1.1"));
        }
    }

    #[test]
    fn enrichment_adds_geo_and_asn() {
        let net = world();
        let records = CensusSweep::new().run(&net);
        let mut geo = GeoDb::new();
        let mut asndb = AsnDb::new();
        for &(cidr, asn_id) in net.registry().prefixes() {
            let rec = net.registry().as_record(asn_id).unwrap();
            geo.add_range(
                cidr.first().value(),
                cidr.last().value(),
                rec.country.as_str(),
            );
            asndb.add_range(
                cidr.first().value(),
                cidr.last().value(),
                rec.asn.0,
                &rec.name,
                rec.country.as_str(),
            );
        }
        geo.finish();
        asndb.finish();
        let index = enrich(records, &geo, &asndb, SimTime::ZERO);
        assert!(!index.is_empty());
        for r in index.records() {
            assert_eq!(r.country.as_deref(), Some("QA"));
            assert_eq!(r.asn, Some(42298));
            assert!(r.hostnames.is_empty(), "census has no reverse DNS");
        }
        // Keyword search works on the enriched index.
        assert!(!index.search("netsweeper").is_empty());
    }

    #[test]
    fn census_and_shodan_agree_on_endpoints() {
        let net = world();
        let census = CensusSweep::new().run(&net);
        let shodan = crate::ScanEngine::new().with_threads(1).scan(&net);
        assert_eq!(census.len(), shodan.len());
        for (c, s) in census.iter().zip(shodan.records()) {
            assert_eq!((c.ip, c.port, &c.path), (s.ip, s.port, &s.path));
            assert_eq!(c.banner, s.banner);
        }
    }
}
