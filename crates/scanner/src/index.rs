//! The keyword-searchable scan index.
//!
//! The index is *query-compiled*: [`ScanIndex::from_records`] lowercases
//! each record's searchable text exactly once into a cached corpus and
//! builds per-country / per-ccTLD posting lists, so the paper's
//! keyword + ccTLD query form touches only in-scope records and never
//! rebuilds a record's text. The batched [`ScanIndex::search_products`]
//! goes further, fusing *every* Table 2 keyword into one Aho-Corasick
//! automaton and answering the whole keyword × ccTLD sweep in a single
//! (optionally parallel) pass over the corpus.

use std::collections::BTreeMap;

use filterwatch_netsim::IpAddr;
use filterwatch_pattern::Automaton;

use crate::keywords::ProductKeywords;
use crate::record::ScanRecord;

/// A built scan index (the Shodan analog).
#[derive(Debug, Clone, Default)]
pub struct ScanIndex {
    records: Vec<ScanRecord>,
    /// Lowercased searchable text per record, built once at
    /// construction — the cached corpus every query matches against.
    corpus: Vec<String>,
    /// Record indices per country metadata value (ascending).
    by_country: BTreeMap<String, Vec<u32>>,
    /// Record indices per hostname dot-suffix, lowercased (ascending):
    /// a record with hostname `gw.isp.qa` posts under `qa` and `isp.qa`.
    by_cctld: BTreeMap<String, Vec<u32>>,
}

/// Per-product hits of a batched keyword sweep: candidate address →
/// the keywords (in keyword-table order) that surfaced it.
pub type ProductHits = BTreeMap<IpAddr, Vec<String>>;

/// Aggregate statistics about an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of records (responsive `ip:port/path` endpoints).
    pub records: usize,
    /// Number of distinct addresses.
    pub addresses: usize,
    /// Records per country code.
    pub by_country: BTreeMap<String, usize>,
}

impl ScanIndex {
    /// Build an index from crawler records, caching each record's
    /// lowercased searchable text and the country/ccTLD posting lists.
    pub fn from_records(records: Vec<ScanRecord>) -> Self {
        let corpus: Vec<String> = records
            .iter()
            .map(|r| r.searchable_text().to_ascii_lowercase())
            .collect();
        let mut by_country: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        let mut by_cctld: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for (index, record) in records.iter().enumerate() {
            let index = index as u32;
            if let Some(country) = &record.country {
                by_country.entry(country.clone()).or_default().push(index);
            }
            for hostname in &record.hostnames {
                let lower = hostname.to_ascii_lowercase();
                for (pos, _) in lower.match_indices('.') {
                    let suffix = &lower[pos + 1..];
                    let posting = by_cctld.entry(suffix.to_string()).or_default();
                    if posting.last() != Some(&index) {
                        posting.push(index);
                    }
                }
            }
        }
        ScanIndex {
            records,
            corpus,
            by_country,
            by_cctld,
        }
    }

    /// All records, in `(ip, port, path)` order.
    pub fn records(&self) -> &[ScanRecord] {
        &self.records
    }

    /// A new index over the same records in a deterministically shuffled
    /// order (seeded Fisher–Yates), posting lists and corpus rebuilt to
    /// match. Identification is defined to be record-order-invariant;
    /// metamorphic tests permute an index with this and byte-compare the
    /// resulting reports.
    pub fn shuffled(&self, seed: u64) -> ScanIndex {
        use rand::Rng as _;
        use rand::SeedableRng as _;
        let mut records = self.records.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for i in (1..records.len()).rev() {
            let j = rng.gen_range(0..=i);
            records.swap(i, j);
        }
        ScanIndex::from_records(records)
    }

    /// The cached corpus: one lowercased searchable text per record,
    /// parallel to [`records`](Self::records).
    pub fn corpus(&self) -> &[String] {
        &self.corpus
    }

    /// The cached searchable text of one record.
    pub fn corpus_of(&self, index: usize) -> &str {
        &self.corpus[index]
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Keyword search: case-insensitive substring match over each
    /// record's cached searchable text (banner, body snippet, hostnames,
    /// `port/path`).
    pub fn search(&self, keyword: &str) -> Vec<&ScanRecord> {
        self.search_ids(keyword)
            .into_iter()
            .map(|i| &self.records[i])
            .collect()
    }

    /// Indices of the records matching `keyword`, ascending. Pair with
    /// [`corpus_of`](Self::corpus_of) / [`records`](Self::records).
    pub fn search_ids(&self, keyword: &str) -> Vec<usize> {
        let needle = keyword.to_ascii_lowercase();
        self.corpus
            .iter()
            .enumerate()
            .filter(|(_, text)| text.contains(&needle))
            .map(|(i, _)| i)
            .collect()
    }

    /// Record indices in scope for one `(country_code, cctld)` pair:
    /// the sorted union of the country and ccTLD posting lists.
    fn scope_ids(&self, country_code: &str, cctld: &str) -> Vec<u32> {
        let cc = country_code.to_ascii_uppercase();
        let tld = cctld.trim_start_matches('.').to_ascii_lowercase();
        let by_cc = self.by_country.get(&cc).map(Vec::as_slice).unwrap_or(&[]);
        let by_tld = self.by_cctld.get(&tld).map(Vec::as_slice).unwrap_or(&[]);
        let mut scope = Vec::with_capacity(by_cc.len() + by_tld.len());
        let (mut a, mut b) = (0, 0);
        while a < by_cc.len() || b < by_tld.len() {
            let next = match (by_cc.get(a), by_tld.get(b)) {
                (Some(&x), Some(&y)) if x == y => {
                    a += 1;
                    b += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    a += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    b += 1;
                    y
                }
                (Some(&x), None) => {
                    a += 1;
                    x
                }
                (None, Some(&y)) => {
                    b += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            scope.push(next);
        }
        scope
    }

    /// Keyword search restricted to one country's footprint — the
    /// paper's "keyword + ccTLD" query form. A record qualifies when the
    /// keyword matches *and* either a hostname carries the ccTLD or the
    /// crawler's country metadata matches `country_code`. Served from
    /// the posting lists: only in-scope records are scanned.
    pub fn search_in_country(
        &self,
        keyword: &str,
        country_code: &str,
        cctld: &str,
    ) -> Vec<&ScanRecord> {
        let needle = keyword.to_ascii_lowercase();
        self.scope_ids(country_code, cctld)
            .into_iter()
            .filter(|&i| self.corpus[i as usize].contains(&needle))
            .map(|i| &self.records[i as usize])
            .collect()
    }

    /// Union of `search_in_country` over a whole ccTLD table, as the
    /// paper runs each keyword against every country code. Returns
    /// distinct endpoints in first-seen order, deduplicated by record
    /// index (records are unique per `(ip, port, path)`).
    pub fn search_all_countries<'a, I>(&self, keyword: &str, cctlds: I) -> Vec<&ScanRecord>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let needle = keyword.to_ascii_lowercase();
        let mut seen = vec![false; self.records.len()];
        let mut out = Vec::new();
        for (cc, tld) in cctlds {
            for i in self.scope_ids(cc, tld) {
                let i = i as usize;
                if !seen[i] && self.corpus[i].contains(&needle) {
                    seen[i] = true;
                    out.push(&self.records[i]);
                }
            }
        }
        out
    }

    /// The batched query the identify stage runs: every product's
    /// keyword list crossed with every `(country_code, cctld)` pair, in
    /// one automaton sweep over the in-scope corpus, parallelized over
    /// record chunks. Returns, per product slug, the candidate
    /// addresses and the keywords (keyword-table order) that hit them.
    pub fn search_products<'a, I>(
        &self,
        table: &[ProductKeywords],
        cctlds: I,
    ) -> BTreeMap<String, ProductHits>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4);
        self.search_products_with_threads(table, cctlds, threads)
    }

    /// As [`search_products`](Self::search_products) with an explicit
    /// worker count (1 = serial). Parallel and serial sweeps return
    /// identical results: workers cover disjoint record chunks and the
    /// merge folds per-record hits back in index order — which is
    /// `(ip, port, path)` order for crawler-built indexes.
    pub fn search_products_with_threads<'a, I>(
        &self,
        table: &[ProductKeywords],
        cctlds: I,
        threads: usize,
    ) -> BTreeMap<String, ProductHits>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        // Compile every keyword of every product into one automaton;
        // needle id = position in the flattened (product, keyword) list.
        let mut needles: Vec<(usize, String)> = Vec::new();
        let mut id_to_entry: Vec<(usize, usize)> = Vec::new();
        for (pi, product) in table.iter().enumerate() {
            for (ki, kw) in product.keywords.iter().enumerate() {
                needles.push((id_to_entry.len(), kw.to_ascii_lowercase()));
                id_to_entry.push((pi, ki));
            }
        }
        let automaton = Automaton::new(needles, false); // corpus is pre-folded

        // Scope: the union of every (cc, tld) pair's posting lists.
        let mut in_scope = vec![false; self.records.len()];
        for (cc, tld) in cctlds {
            for i in self.scope_ids(cc, tld) {
                in_scope[i as usize] = true;
            }
        }
        let scoped: Vec<u32> = (0..self.records.len() as u32)
            .filter(|&i| in_scope[i as usize])
            .collect();

        // Sweep the scoped corpus, one automaton pass per record.
        let per_record = self.sweep(&automaton, &scoped, threads.max(1));

        // Fold per-record hits into per-product candidate maps. Keyword
        // lists are emitted in keyword-table order regardless of which
        // record matched first, so the fold order cannot matter.
        let mut matched: BTreeMap<(usize, IpAddr), Vec<bool>> = BTreeMap::new();
        for (record_index, ids) in per_record {
            let ip = self.records[record_index as usize].ip;
            for id in ids {
                let (pi, ki) = id_to_entry[id];
                matched
                    .entry((pi, ip))
                    .or_insert_with(|| vec![false; table[pi].keywords.len()])[ki] = true;
            }
        }
        let mut out: BTreeMap<String, ProductHits> = table
            .iter()
            .map(|p| (p.product.to_string(), ProductHits::new()))
            .collect();
        for ((pi, ip), kws) in matched {
            let product = &table[pi];
            let hit_kws: Vec<String> = product
                .keywords
                .iter()
                .zip(&kws)
                .filter(|(_, &hit)| hit)
                .map(|(kw, _)| kw.to_string())
                .collect();
            out.get_mut(product.product)
                .expect("product key inserted above")
                .insert(ip, hit_kws);
        }
        out
    }

    /// Run `automaton` over the scoped records, in parallel chunks.
    /// Returns `(record_index, matched needle ids)` for every record
    /// with at least one hit, in ascending record order — per-chunk
    /// results are concatenated in chunk order, and chunks partition
    /// the (ascending) scope list.
    fn sweep(
        &self,
        automaton: &Automaton,
        scoped: &[u32],
        threads: usize,
    ) -> Vec<(u32, Vec<usize>)> {
        let scan_chunk = |chunk: &[u32]| -> Vec<(u32, Vec<usize>)> {
            chunk
                .iter()
                .filter_map(|&i| {
                    let ids = automaton.matched_ids(&self.corpus[i as usize]);
                    (!ids.is_empty()).then_some((i, ids))
                })
                .collect()
        };
        if threads <= 1 || scoped.len() < 2 {
            return scan_chunk(scoped);
        }
        let chunk_size = scoped.len().div_ceil(threads).max(1);
        let chunks: Vec<&[u32]> = scoped.chunks(chunk_size).collect();
        let mut results: Vec<Vec<(u32, Vec<usize>)>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(move |_| scan_chunk(chunk)))
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect();
        })
        .expect("sweep scope panicked");
        // Ordered merge: chunk order is scope order is record order.
        results.into_iter().flatten().collect()
    }

    /// Distinct addresses matching `keyword`.
    pub fn matching_ips(&self, keyword: &str) -> Vec<IpAddr> {
        let mut out: Vec<IpAddr> = self.search(keyword).into_iter().map(|r| r.ip).collect();
        out.dedup();
        out
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> IndexStats {
        let mut by_country: BTreeMap<String, usize> = BTreeMap::new();
        let mut addresses = std::collections::BTreeSet::new();
        for r in &self.records {
            addresses.insert(r.ip);
            if let Some(c) = &r.country {
                *by_country.entry(c.clone()).or_default() += 1;
            }
        }
        IndexStats {
            records: self.records.len(),
            addresses: addresses.len(),
            by_country,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::KEYWORD_TABLE;
    use filterwatch_netsim::SimTime;

    fn rec(ip: &str, port: u16, banner: &str, host: &str, country: &str) -> ScanRecord {
        ScanRecord {
            ip: ip.parse().unwrap(),
            port,
            path: "/".into(),
            banner: banner.into(),
            body_snippet: String::new(),
            hostnames: vec![host.into()],
            country: Some(country.into()),
            asn: Some(1),
            captured_at: SimTime::ZERO,
        }
    }

    fn index() -> ScanIndex {
        ScanIndex::from_records(vec![
            rec("5.0.0.1", 80, "Server: ProxySG", "gw.example.sy", "SY"),
            rec("5.0.1.1", 8080, "Server: netsweeper/5.1", "gw.isp.qa", "QA"),
            rec("5.0.2.1", 80, "Server: Apache", "www.plain.se", "SE"),
            rec("5.0.3.1", 80, "Server: ProxySG", "proxy.corp.us", "US"),
        ])
    }

    #[test]
    fn keyword_search_is_case_insensitive() {
        let idx = index();
        assert_eq!(idx.search("proxysg").len(), 2);
        assert_eq!(idx.search("NETSWEEPER").len(), 1);
        assert_eq!(idx.search("nothing").len(), 0);
    }

    #[test]
    fn corpus_is_cached_and_lowercased() {
        let idx = index();
        assert_eq!(idx.corpus().len(), idx.len());
        assert!(idx.corpus_of(0).contains("server: proxysg"));
        assert!(idx.corpus_of(1).contains("gw.isp.qa"));
        for (i, text) in idx.corpus().iter().enumerate() {
            assert_eq!(text, &idx.corpus_of(i).to_string());
            assert_eq!(text.to_ascii_lowercase(), *text);
        }
    }

    #[test]
    fn country_scoped_search() {
        let idx = index();
        let sy = idx.search_in_country("proxysg", "SY", "sy");
        assert_eq!(sy.len(), 1);
        assert_eq!(sy[0].ip.to_string(), "5.0.0.1");
        // ccTLD match works even if metadata were missing: the .qa
        // hostname qualifies the record for QA.
        let qa = idx.search_in_country("netsweeper", "QA", "qa");
        assert_eq!(qa.len(), 1);
        assert!(idx.search_in_country("proxysg", "QA", "qa").is_empty());
    }

    #[test]
    fn cctld_postings_cover_multi_label_suffixes() {
        let idx = ScanIndex::from_records(vec![rec(
            "5.0.0.1",
            80,
            "Server: ProxySG",
            "gw.example.co.uk",
            "GB",
        )]);
        assert_eq!(idx.search_in_country("proxysg", "ZZ", "co.uk").len(), 1);
        assert_eq!(idx.search_in_country("proxysg", "ZZ", "uk").len(), 1);
        assert!(idx.search_in_country("proxysg", "ZZ", "o.uk").is_empty());
    }

    #[test]
    fn union_over_cctlds_deduplicates() {
        let idx = index();
        let hits = idx.search_all_countries("proxysg", [("SY", "sy"), ("US", "us"), ("SY", "sy")]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn batched_sweep_matches_per_keyword_queries() {
        let idx = index();
        let pairs = [("SY", "sy"), ("QA", "qa"), ("SE", "se"), ("US", "us")];
        let hits = idx.search_products(KEYWORD_TABLE, pairs);
        let bluecoat = &hits["bluecoat"];
        assert_eq!(bluecoat.len(), 2);
        assert_eq!(
            bluecoat[&"5.0.0.1".parse().unwrap()],
            vec!["proxysg".to_string()]
        );
        let netsweeper = &hits["netsweeper"];
        assert_eq!(netsweeper.len(), 1);
        assert_eq!(
            netsweeper[&"5.0.1.1".parse().unwrap()],
            vec!["netsweeper".to_string()]
        );
        assert!(hits["websense"].is_empty());
        assert!(hits["smartfilter"].is_empty());
    }

    #[test]
    fn batched_sweep_scope_excludes_unlisted_countries() {
        let idx = index();
        // Only Syria in scope: the US ProxySG must not surface.
        let hits = idx.search_products(KEYWORD_TABLE, [("SY", "sy")]);
        assert_eq!(hits["bluecoat"].len(), 1);
        assert!(hits["bluecoat"].contains_key(&"5.0.0.1".parse().unwrap()));
    }

    #[test]
    fn serial_and_parallel_sweeps_agree() {
        let idx = index();
        let pairs = [("SY", "sy"), ("QA", "qa"), ("SE", "se"), ("US", "us")];
        let serial = idx.search_products_with_threads(KEYWORD_TABLE, pairs, 1);
        let parallel = idx.search_products_with_threads(KEYWORD_TABLE, pairs, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn stats() {
        let s = index().stats();
        assert_eq!(s.records, 4);
        assert_eq!(s.addresses, 4);
        assert_eq!(s.by_country["SY"], 1);
        assert_eq!(s.by_country.len(), 4);
    }

    #[test]
    fn shuffled_preserves_records_and_search_results() {
        let idx = index();
        let shuffled = idx.shuffled(42);
        // Same record multiset (here: same sorted (ip, port) keys).
        let mut orig: Vec<_> = idx.records().iter().map(|r| (r.ip, r.port)).collect();
        let mut perm: Vec<_> = shuffled.records().iter().map(|r| (r.ip, r.port)).collect();
        orig.sort_unstable();
        perm.sort_unstable();
        assert_eq!(orig, perm);
        // Determinism: the same seed yields the same permutation.
        let again: Vec<_> = idx
            .shuffled(42)
            .records()
            .iter()
            .map(|r| (r.ip, r.port))
            .collect();
        let first: Vec<_> = shuffled.records().iter().map(|r| (r.ip, r.port)).collect();
        assert_eq!(first, again);
        // Query results are order-insensitive: the batched sweep over the
        // shuffled index equals the sweep over the original.
        let pairs = [("SY", "sy"), ("QA", "qa"), ("SE", "se"), ("US", "us")];
        assert_eq!(
            idx.search_products(KEYWORD_TABLE, pairs),
            shuffled.search_products(KEYWORD_TABLE, pairs)
        );
    }

    #[test]
    fn matching_ips_deduplicates_ports() {
        let mut records = vec![
            rec("5.0.0.1", 80, "x proxysg", "a.example.sy", "SY"),
            rec("5.0.0.1", 8080, "y proxysg", "a.example.sy", "SY"),
        ];
        records.sort_by_key(|a| (a.ip, a.port));
        let idx = ScanIndex::from_records(records);
        assert_eq!(idx.matching_ips("proxysg").len(), 1);
    }
}
