//! The keyword-searchable scan index.

use std::collections::BTreeMap;

use filterwatch_netsim::IpAddr;
use filterwatch_pattern::Pattern;

use crate::record::ScanRecord;

/// A built scan index (the Shodan analog).
#[derive(Debug, Clone, Default)]
pub struct ScanIndex {
    records: Vec<ScanRecord>,
}

/// Aggregate statistics about an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of records (responsive `ip:port/path` endpoints).
    pub records: usize,
    /// Number of distinct addresses.
    pub addresses: usize,
    /// Records per country code.
    pub by_country: BTreeMap<String, usize>,
}

impl ScanIndex {
    /// Build an index from crawler records.
    pub fn from_records(records: Vec<ScanRecord>) -> Self {
        ScanIndex { records }
    }

    /// All records, in `(ip, port, path)` order.
    pub fn records(&self) -> &[ScanRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Keyword search: case-insensitive substring match over each
    /// record's searchable text (banner, body snippet, hostnames,
    /// `port/path`).
    pub fn search(&self, keyword: &str) -> Vec<&ScanRecord> {
        let pattern = Pattern::literal(keyword);
        self.records
            .iter()
            .filter(|r| pattern.is_match(&r.text()))
            .collect()
    }

    /// Keyword search restricted to one country's footprint — the
    /// paper's "keyword + ccTLD" query form. A record qualifies when the
    /// keyword matches *and* either a hostname carries the ccTLD or the
    /// crawler's country metadata matches `country_code`.
    pub fn search_in_country(
        &self,
        keyword: &str,
        country_code: &str,
        cctld: &str,
    ) -> Vec<&ScanRecord> {
        let cc = country_code.to_ascii_uppercase();
        let suffix = format!(".{}", cctld.trim_start_matches('.').to_ascii_lowercase());
        self.search(keyword)
            .into_iter()
            .filter(|r| {
                r.country.as_deref() == Some(cc.as_str())
                    || r.hostnames
                        .iter()
                        .any(|h| h.to_ascii_lowercase().ends_with(&suffix))
            })
            .collect()
    }

    /// Union of `search_in_country` over a whole ccTLD table, as the
    /// paper runs each keyword against every country code. Returns
    /// distinct addresses in order.
    pub fn search_all_countries<'a, I>(&self, keyword: &str, cctlds: I) -> Vec<&ScanRecord>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for (cc, tld) in cctlds {
            for rec in self.search_in_country(keyword, cc, tld) {
                if seen.insert((rec.ip, rec.port, rec.path.clone())) {
                    out.push(rec);
                }
            }
        }
        out
    }

    /// Distinct addresses matching `keyword`.
    pub fn matching_ips(&self, keyword: &str) -> Vec<IpAddr> {
        let mut out: Vec<IpAddr> = self.search(keyword).into_iter().map(|r| r.ip).collect();
        out.dedup();
        out
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> IndexStats {
        let mut by_country: BTreeMap<String, usize> = BTreeMap::new();
        let mut addresses = std::collections::BTreeSet::new();
        for r in &self.records {
            addresses.insert(r.ip);
            if let Some(c) = &r.country {
                *by_country.entry(c.clone()).or_default() += 1;
            }
        }
        IndexStats {
            records: self.records.len(),
            addresses: addresses.len(),
            by_country,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterwatch_netsim::SimTime;

    fn rec(ip: &str, port: u16, banner: &str, host: &str, country: &str) -> ScanRecord {
        ScanRecord {
            ip: ip.parse().unwrap(),
            port,
            path: "/".into(),
            banner: banner.into(),
            body_snippet: String::new(),
            hostnames: vec![host.into()],
            country: Some(country.into()),
            asn: Some(1),
            captured_at: SimTime::ZERO,
        }
    }

    fn index() -> ScanIndex {
        ScanIndex::from_records(vec![
            rec("5.0.0.1", 80, "Server: ProxySG", "gw.example.sy", "SY"),
            rec("5.0.1.1", 8080, "Server: netsweeper/5.1", "gw.isp.qa", "QA"),
            rec("5.0.2.1", 80, "Server: Apache", "www.plain.se", "SE"),
            rec("5.0.3.1", 80, "Server: ProxySG", "proxy.corp.us", "US"),
        ])
    }

    #[test]
    fn keyword_search_is_case_insensitive() {
        let idx = index();
        assert_eq!(idx.search("proxysg").len(), 2);
        assert_eq!(idx.search("NETSWEEPER").len(), 1);
        assert_eq!(idx.search("nothing").len(), 0);
    }

    #[test]
    fn country_scoped_search() {
        let idx = index();
        let sy = idx.search_in_country("proxysg", "SY", "sy");
        assert_eq!(sy.len(), 1);
        assert_eq!(sy[0].ip.to_string(), "5.0.0.1");
        // ccTLD match works even if metadata were missing: the .qa
        // hostname qualifies the record for QA.
        let qa = idx.search_in_country("netsweeper", "QA", "qa");
        assert_eq!(qa.len(), 1);
        assert!(idx.search_in_country("proxysg", "QA", "qa").is_empty());
    }

    #[test]
    fn union_over_cctlds_deduplicates() {
        let idx = index();
        let hits = idx.search_all_countries("proxysg", [("SY", "sy"), ("US", "us"), ("SY", "sy")]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn stats() {
        let s = index().stats();
        assert_eq!(s.records, 4);
        assert_eq!(s.addresses, 4);
        assert_eq!(s.by_country["SY"], 1);
        assert_eq!(s.by_country.len(), 4);
    }

    #[test]
    fn matching_ips_deduplicates_ports() {
        let mut records = vec![
            rec("5.0.0.1", 80, "x proxysg", "a", "SY"),
            rec("5.0.0.1", 8080, "y proxysg", "a", "SY"),
        ];
        records.sort_by_key(|a| (a.ip, a.port));
        let idx = ScanIndex::from_records(records);
        assert_eq!(idx.matching_ips("proxysg").len(), 1);
    }
}
